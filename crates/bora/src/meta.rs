//! Container metadata (`.bora` file).
//!
//! Holds what the source bag's connection records held — topic names,
//! datatypes, md5sums, full message definitions — plus per-topic counts and
//! the bag's time range. Reading it is a single small sequential read;
//! BORA's open never scans message data.

use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

use crate::block::{BlockCodec, BlockParams};
use crate::error::{BoraError, BoraResult};

const META_MAGIC: u32 = 0x42_4F_52_41; // "BORA"
/// v1: raw per-topic `data` files. v2 appends the container's block
/// parameters (codec + block size); a container without block framing
/// still encodes as v1, so pre-block readers and byte-identity tests
/// keep working unchanged.
const META_VERSION: u32 = 1;
const META_VERSION_BLOCKS: u32 = 2;

/// Metadata for one topic stored in the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMeta {
    pub topic: String,
    pub datatype: String,
    pub md5sum: String,
    pub definition: String,
    pub message_count: u64,
    pub bytes: u64,
}

/// Container-level metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContainerMeta {
    pub topics: Vec<TopicMeta>,
    pub start_time: Time,
    pub end_time: Time,
    /// Coarse time-index window width used by every topic's `tindex`.
    pub window_ns: u64,
    /// Size of the source bag file, for reporting.
    pub source_bag_len: u64,
    /// Block framing of every topic's `data` file, when the container
    /// was written with compressed columnar blocks (metadata v2).
    /// `None` = plain v1 layout, read exactly as before.
    pub block: Option<BlockParams>,
}

impl ContainerMeta {
    pub fn message_count(&self) -> u64 {
        self.topics.iter().map(|t| t.message_count).sum()
    }

    pub fn data_bytes(&self) -> u64 {
        self.topics.iter().map(|t| t.bytes).sum()
    }

    pub fn topic(&self, name: &str) -> Option<&TopicMeta> {
        self.topics.iter().find(|t| t.topic == name)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(META_MAGIC);
        out.put_u32(if self.block.is_some() { META_VERSION_BLOCKS } else { META_VERSION });
        out.put_time(self.start_time);
        out.put_time(self.end_time);
        out.put_u64(self.window_ns);
        out.put_u64(self.source_bag_len);
        out.put_u32(self.topics.len() as u32);
        for t in &self.topics {
            out.put_string(&t.topic);
            out.put_string(&t.datatype);
            out.put_string(&t.md5sum);
            out.put_string(&t.definition);
            out.put_u64(t.message_count);
            out.put_u64(t.bytes);
        }
        if let Some(b) = self.block {
            out.push(b.codec.id());
            out.put_u32(b.block_size);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        let mut cur = bytes;
        if cur.get_u32()? != META_MAGIC {
            return Err(BoraError::Corrupt("metadata magic mismatch".into()));
        }
        let ver = cur.get_u32()?;
        if ver != META_VERSION && ver != META_VERSION_BLOCKS {
            return Err(BoraError::Corrupt(format!("unsupported metadata version {ver}")));
        }
        let start_time = cur.get_time()?;
        let end_time = cur.get_time()?;
        let window_ns = cur.get_u64()?;
        let source_bag_len = cur.get_u64()?;
        let n = cur.get_u32()? as usize;
        let mut topics = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            topics.push(TopicMeta {
                topic: cur.get_string()?,
                datatype: cur.get_string()?,
                md5sum: cur.get_string()?,
                definition: cur.get_string()?,
                message_count: cur.get_u64()?,
                bytes: cur.get_u64()?,
            });
        }
        let block = if ver >= META_VERSION_BLOCKS {
            let codec = BlockCodec::from_id(cur.get_u8()?)?;
            let block_size = cur.get_u32()?;
            if block_size == 0 {
                return Err(BoraError::Corrupt("metadata block size is zero".into()));
            }
            Some(BlockParams { codec, block_size })
        } else {
            None
        };
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in metadata".into()));
        }
        Ok(ContainerMeta { topics, start_time, end_time, window_ns, source_bag_len, block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContainerMeta {
        ContainerMeta {
            topics: vec![
                TopicMeta {
                    topic: "/imu".into(),
                    datatype: "sensor_msgs/Imu".into(),
                    md5sum: "ff".into(),
                    definition: "def".into(),
                    message_count: 24367,
                    bytes: 8_400_000,
                },
                TopicMeta {
                    topic: "/camera/depth/image".into(),
                    datatype: "sensor_msgs/Image".into(),
                    md5sum: "aa".into(),
                    definition: "def2".into(),
                    message_count: 1429,
                    bytes: 1_640_000_000,
                },
            ],
            start_time: Time::new(100, 0),
            end_time: Time::new(187, 500),
            window_ns: 5_000_000_000,
            source_bag_len: 2_900_000_000,
            block: None,
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(ContainerMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn aggregates() {
        let m = sample();
        assert_eq!(m.message_count(), 24367 + 1429);
        assert_eq!(m.data_bytes(), 8_400_000 + 1_640_000_000);
        assert!(m.topic("/imu").is_some());
        assert!(m.topic("/nope").is_none());
    }

    #[test]
    fn corrupt_rejected() {
        let m = sample();
        let mut bytes = m.encode();
        bytes[0] ^= 1;
        assert!(ContainerMeta::decode(&bytes).is_err());
        let mut bytes2 = m.encode();
        bytes2.push(0);
        assert!(ContainerMeta::decode(&bytes2).is_err());
    }

    #[test]
    fn empty_meta_round_trips() {
        let m = ContainerMeta::default();
        assert_eq!(ContainerMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn v2_block_params_round_trip_and_v1_stays_bit_identical() {
        let mut m = sample();
        let v1_bytes = m.encode();
        m.block = Some(BlockParams { codec: BlockCodec::Lzss, block_size: 64 * 1024 });
        let v2_bytes = m.encode();
        assert_eq!(ContainerMeta::decode(&v2_bytes).unwrap(), m);
        // v2 is v1 plus appended fields and a bumped version word —
        // nothing in the shared prefix moved.
        assert_eq!(v2_bytes.len(), v1_bytes.len() + 5);
        assert_eq!(&v2_bytes[8..v1_bytes.len()], &v1_bytes[8..]);
        // A truncated v2 (claims blocks, lacks the fields) is rejected.
        assert!(ContainerMeta::decode(&v2_bytes[..v1_bytes.len()]).is_err());
    }
}
