//! Container metadata (`.bora` file).
//!
//! Holds what the source bag's connection records held — topic names,
//! datatypes, md5sums, full message definitions — plus per-topic counts and
//! the bag's time range. Reading it is a single small sequential read;
//! BORA's open never scans message data.

use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

use crate::error::{BoraError, BoraResult};

const META_MAGIC: u32 = 0x42_4F_52_41; // "BORA"
const META_VERSION: u32 = 1;

/// Metadata for one topic stored in the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMeta {
    pub topic: String,
    pub datatype: String,
    pub md5sum: String,
    pub definition: String,
    pub message_count: u64,
    pub bytes: u64,
}

/// Container-level metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContainerMeta {
    pub topics: Vec<TopicMeta>,
    pub start_time: Time,
    pub end_time: Time,
    /// Coarse time-index window width used by every topic's `tindex`.
    pub window_ns: u64,
    /// Size of the source bag file, for reporting.
    pub source_bag_len: u64,
}

impl ContainerMeta {
    pub fn message_count(&self) -> u64 {
        self.topics.iter().map(|t| t.message_count).sum()
    }

    pub fn data_bytes(&self) -> u64 {
        self.topics.iter().map(|t| t.bytes).sum()
    }

    pub fn topic(&self, name: &str) -> Option<&TopicMeta> {
        self.topics.iter().find(|t| t.topic == name)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(META_MAGIC);
        out.put_u32(META_VERSION);
        out.put_time(self.start_time);
        out.put_time(self.end_time);
        out.put_u64(self.window_ns);
        out.put_u64(self.source_bag_len);
        out.put_u32(self.topics.len() as u32);
        for t in &self.topics {
            out.put_string(&t.topic);
            out.put_string(&t.datatype);
            out.put_string(&t.md5sum);
            out.put_string(&t.definition);
            out.put_u64(t.message_count);
            out.put_u64(t.bytes);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        let mut cur = bytes;
        if cur.get_u32()? != META_MAGIC {
            return Err(BoraError::Corrupt("metadata magic mismatch".into()));
        }
        let ver = cur.get_u32()?;
        if ver != META_VERSION {
            return Err(BoraError::Corrupt(format!("unsupported metadata version {ver}")));
        }
        let start_time = cur.get_time()?;
        let end_time = cur.get_time()?;
        let window_ns = cur.get_u64()?;
        let source_bag_len = cur.get_u64()?;
        let n = cur.get_u32()? as usize;
        let mut topics = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            topics.push(TopicMeta {
                topic: cur.get_string()?,
                datatype: cur.get_string()?,
                md5sum: cur.get_string()?,
                definition: cur.get_string()?,
                message_count: cur.get_u64()?,
                bytes: cur.get_u64()?,
            });
        }
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in metadata".into()));
        }
        Ok(ContainerMeta { topics, start_time, end_time, window_ns, source_bag_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContainerMeta {
        ContainerMeta {
            topics: vec![
                TopicMeta {
                    topic: "/imu".into(),
                    datatype: "sensor_msgs/Imu".into(),
                    md5sum: "ff".into(),
                    definition: "def".into(),
                    message_count: 24367,
                    bytes: 8_400_000,
                },
                TopicMeta {
                    topic: "/camera/depth/image".into(),
                    datatype: "sensor_msgs/Image".into(),
                    md5sum: "aa".into(),
                    definition: "def2".into(),
                    message_count: 1429,
                    bytes: 1_640_000_000,
                },
            ],
            start_time: Time::new(100, 0),
            end_time: Time::new(187, 500),
            window_ns: 5_000_000_000,
            source_bag_len: 2_900_000_000,
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(ContainerMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn aggregates() {
        let m = sample();
        assert_eq!(m.message_count(), 24367 + 1429);
        assert_eq!(m.data_bytes(), 8_400_000 + 1_640_000_000);
        assert!(m.topic("/imu").is_some());
        assert!(m.topic("/nope").is_none());
    }

    #[test]
    fn corrupt_rejected() {
        let m = sample();
        let mut bytes = m.encode();
        bytes[0] ^= 1;
        assert!(ContainerMeta::decode(&bytes).is_err());
        let mut bytes2 = m.encode();
        bytes2.push(0);
        assert!(ContainerMeta::decode(&bytes2).is_err());
    }

    #[test]
    fn empty_meta_round_trips() {
        let m = ContainerMeta::default();
        assert_eq!(ContainerMeta::decode(&m.encode()).unwrap(), m);
    }
}
