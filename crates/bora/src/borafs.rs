//! [`BoraFs`]: the front-end layer (the paper's FUSE mount point).
//!
//! The paper mounts BORA at a front-end directory; developers keep using
//! "bag is a file" paths while the back-end stores containers. Mounting
//! FUSE is not possible in this environment, so `BoraFs` reproduces the
//! interposition in-process (see DESIGN.md): logical bag files under
//! `front_root` map to containers under `back_root`, every front-end
//! operation pays a configurable per-op interposition overhead (the
//! "one-time FUSE overhead" of §IV.B), and non-bag files pass straight
//! through.
//!
//! Operations (paper §III.C):
//! * [`BoraFs::import_bag`] — **data duplication**: copying a bag into the
//!   mount triggers the data organizer.
//! * [`BoraFs::open_bag`] — BORA-assisted open returning a [`BoraBag`].
//! * [`BoraFs::export_bag`] — *rebagging*: reassemble an ordinary bag file
//!   from a container (chronological across topics), for sharing with
//!   non-BORA machines.
//! * [`BoraFs::copy_bag_to`] — BORA-to-BORA copy (plain tree copy, no
//!   reorganization — Fig. 9's "BORA to BORA" series).

use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, Storage};

use crate::container::BoraBag;
use crate::error::{BoraError, BoraResult};
use crate::organizer::{copy_container, duplicate, OrganizeReport, OrganizerOptions};

/// Front-end configuration.
#[derive(Debug, Clone, Copy)]
pub struct BoraFsOptions {
    /// Per-operation interposition cost (FUSE context switch + request
    /// marshalling). FUSE 2.x round trips cost a few microseconds.
    pub fuse_op_overhead_ns: u64,
    pub organizer: OrganizerOptions,
}

impl Default for BoraFsOptions {
    fn default() -> Self {
        BoraFsOptions { fuse_op_overhead_ns: 4_000, organizer: OrganizerOptions::default() }
    }
}

/// The mounted middleware: front-end logical paths, back-end containers.
pub struct BoraFs<S> {
    storage: S,
    front_root: String,
    back_root: String,
    opts: BoraFsOptions,
}

impl<S: Storage> BoraFs<S> {
    /// "Mount" BORA: logical bags appear under `front_root`, containers
    /// are stored under `back_root`.
    pub fn mount(
        storage: S,
        front_root: &str,
        back_root: &str,
        opts: BoraFsOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<Self> {
        storage.mkdir_all(front_root, ctx)?;
        storage.mkdir_all(back_root, ctx)?;
        Ok(BoraFs {
            storage,
            front_root: front_root.trim_end_matches('/').to_owned(),
            back_root: back_root.trim_end_matches('/').to_owned(),
            opts,
        })
    }

    pub fn front_root(&self) -> &str {
        &self.front_root
    }

    pub fn back_root(&self) -> &str {
        &self.back_root
    }

    fn charge_fuse(&self, ctx: &mut IoCtx) {
        ctx.charge_ns(self.opts.fuse_op_overhead_ns);
    }

    /// Container root for a logical bag name (`sample.bag` → back-end
    /// directory `<back_root>/sample`).
    pub fn container_root(&self, bag_name: &str) -> String {
        let stem = bag_name.strip_suffix(".bag").unwrap_or(bag_name);
        format!("{}/{stem}", self.back_root)
    }

    /// Import (duplicate) an ordinary bag into the mount: the paper's data
    /// duplication operation. The organizer reorganizes it into a
    /// container; the logical name becomes visible on the front-end.
    pub fn import_bag<SS: Storage>(
        &self,
        src: &SS,
        src_path: &str,
        bag_name: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<OrganizeReport> {
        self.charge_fuse(ctx);
        let root = self.container_root(bag_name);
        let report = duplicate(src, src_path, &self.storage, &root, &self.opts.organizer, ctx)?;
        // Front-end marker so directory listings show the logical file.
        self.storage.append(&format!("{}/{bag_name}", self.front_root), root.as_bytes(), ctx)?;
        Ok(report)
    }

    /// List logical bags visible on the front-end.
    pub fn list_bags(&self, ctx: &mut IoCtx) -> BoraResult<Vec<String>> {
        self.charge_fuse(ctx);
        let entries = self.storage.read_dir(&self.front_root, ctx)?;
        Ok(entries.into_iter().map(|e| e.name).collect())
    }

    /// BORA-assisted open of a logical bag.
    pub fn open_bag(&self, bag_name: &str, ctx: &mut IoCtx) -> BoraResult<BoraBag<&S>> {
        self.charge_fuse(ctx);
        BoraBag::open(&self.storage, &self.container_root(bag_name), ctx)
    }

    /// Rebagging: reassemble an ordinary `.bag` file from a container,
    /// chronological across all topics, so the data can be shared with a
    /// machine that does not run BORA.
    pub fn export_bag<DS: Storage>(
        &self,
        bag_name: &str,
        dst: &DS,
        dst_path: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<u64> {
        self.charge_fuse(ctx);
        let bag = self.open_bag(bag_name, ctx)?;
        let topics: Vec<String> = bag.topics().into_iter().map(str::to_owned).collect();
        let topic_refs: Vec<&str> = topics.iter().map(String::as_str).collect();
        let msgs = bag.read_topics(&topic_refs, ctx)?;

        let mut w = BagWriter::create(dst, dst_path, BagWriterOptions::default(), ctx)?;
        // Register connections with the original type metadata.
        let mut conn_ids = std::collections::HashMap::new();
        for tm in &bag.meta().topics {
            let desc = ros_msgs::MessageDescriptor {
                datatype: tm.datatype.clone(),
                md5sum: tm.md5sum.clone(),
                definition: tm.definition.clone(),
            };
            conn_ids.insert(tm.topic.clone(), w.add_connection(&tm.topic, &desc));
        }
        for m in &msgs {
            let conn =
                *conn_ids.get(&m.topic).ok_or_else(|| BoraError::UnknownTopic(m.topic.clone()))?;
            w.write_message(conn, m.time, &m.data, ctx)?;
        }
        let summary = w.close(ctx)?;
        Ok(summary.message_count)
    }

    /// BORA-to-BORA copy: the destination machine runs BORA, so the
    /// container tree is copied verbatim — no reorganization, which is why
    /// Fig. 9 shows this path matching native copy speed.
    pub fn copy_bag_to<DS: Storage>(
        &self,
        bag_name: &str,
        dst_fs: &BoraFs<DS>,
        ctx: &mut IoCtx,
    ) -> BoraResult<u64> {
        self.charge_fuse(ctx);
        let src_root = self.container_root(bag_name);
        let dst_root = dst_fs.container_root(bag_name);
        let bytes = copy_container(&self.storage, &src_root, &dst_fs.storage, &dst_root, ctx)?;
        dst_fs.storage.append(
            &format!("{}/{bag_name}", dst_fs.front_root),
            dst_root.as_bytes(),
            ctx,
        )?;
        Ok(bytes)
    }

    /// Front-end passthrough write for ordinary (non-bag) files: ROS-Lib
    /// traffic through the FUSE layer.
    pub fn write_file(&self, rel_path: &str, data: &[u8], ctx: &mut IoCtx) -> BoraResult<()> {
        self.charge_fuse(ctx);
        self.storage.append(&format!("{}/{rel_path}", self.front_root), data, ctx)?;
        Ok(())
    }

    /// Front-end passthrough read.
    pub fn read_file(&self, rel_path: &str, ctx: &mut IoCtx) -> BoraResult<Vec<u8>> {
        self.charge_fuse(ctx);
        Ok(self.storage.read_all(&format!("{}/{rel_path}", self.front_root), ctx)?)
    }

    /// Query by topics through the mount (intercepted by BORA-Lib).
    pub fn read_messages(
        &self,
        bag_name: &str,
        topics: &[&str],
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<rosbag::MessageRecord>> {
        let bag = self.open_bag(bag_name, ctx)?;
        bag.read_topics(topics, ctx)
    }

    /// Query by topics + time range through the mount.
    pub fn read_messages_time(
        &self,
        bag_name: &str,
        topics: &[&str],
        start: Time,
        end: Time,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<rosbag::MessageRecord>> {
        let bag = self.open_bag(bag_name, ctx)?;
        bag.read_topics_time(topics, start, end, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::RosMessage;
    use rosbag::BagReader;
    use simfs::MemStorage;

    fn build_bag(fs: &MemStorage, path: &str, n: u32) {
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            fs,
            path,
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        for tick in 0..n {
            let t = Time::new(tick, 0);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
    }

    #[test]
    fn import_then_query() {
        let fs = MemStorage::new();
        build_bag(&fs, "/ext/sample.bag", 120);
        let mut ctx = IoCtx::new();
        let bora = BoraFs::mount(&fs, "/mnt/bora", "/backend", BoraFsOptions::default(), &mut ctx)
            .unwrap();
        let report = bora.import_bag(&fs, "/ext/sample.bag", "sample.bag", &mut ctx).unwrap();
        assert_eq!(report.messages, 120);
        assert_eq!(bora.list_bags(&mut ctx).unwrap(), vec!["sample.bag"]);

        let msgs = bora.read_messages("sample.bag", &["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 120);
        let window = bora
            .read_messages_time(
                "sample.bag",
                &["/imu"],
                Time::new(10, 0),
                Time::new(20, 0),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(window.len(), 10);
    }

    #[test]
    fn export_round_trips_through_ordinary_bag() {
        let fs = MemStorage::new();
        build_bag(&fs, "/ext/s.bag", 60);
        let mut ctx = IoCtx::new();
        let bora = BoraFs::mount(&fs, "/mnt", "/back", BoraFsOptions::default(), &mut ctx).unwrap();
        bora.import_bag(&fs, "/ext/s.bag", "s.bag", &mut ctx).unwrap();
        let n = bora.export_bag("s.bag", &fs, "/ext/rebagged.bag", &mut ctx).unwrap();
        assert_eq!(n, 60);

        // The exported bag opens with the ordinary reader and replays the
        // same messages.
        let r = BagReader::open(&fs, "/ext/rebagged.bag", &mut ctx).unwrap();
        let msgs = r.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 60);
        let imu = Imu::from_bytes(&msgs[59].data).unwrap();
        assert_eq!(imu.header.seq, 59);
    }

    #[test]
    fn bora_to_bora_copy() {
        let fs = MemStorage::new();
        build_bag(&fs, "/ext/s.bag", 40);
        let mut ctx = IoCtx::new();
        let a =
            BoraFs::mount(&fs, "/a/front", "/a/back", BoraFsOptions::default(), &mut ctx).unwrap();
        let b =
            BoraFs::mount(&fs, "/b/front", "/b/back", BoraFsOptions::default(), &mut ctx).unwrap();
        a.import_bag(&fs, "/ext/s.bag", "s.bag", &mut ctx).unwrap();
        let bytes = a.copy_bag_to("s.bag", &b, &mut ctx).unwrap();
        assert!(bytes > 0);
        let msgs = b.read_messages("s.bag", &["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 40);
    }

    #[test]
    fn passthrough_files() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bora = BoraFs::mount(&fs, "/mnt", "/back", BoraFsOptions::default(), &mut ctx).unwrap();
        bora.write_file("notes.txt", b"calibration notes", &mut ctx).unwrap();
        assert_eq!(bora.read_file("notes.txt", &mut ctx).unwrap(), b"calibration notes");
    }

    #[test]
    fn fuse_overhead_is_charged() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bora = BoraFs::mount(&fs, "/mnt", "/back", BoraFsOptions::default(), &mut ctx).unwrap();
        let before = ctx.elapsed_ns();
        bora.write_file("x", b"1", &mut ctx).unwrap();
        assert!(ctx.elapsed_ns() >= before + BoraFsOptions::default().fuse_op_overhead_ns);
    }
}
