//! The container `MANIFEST`: the commit record of a duplication.
//!
//! Written as the *last* file inside the staging directory before the
//! atomic rename that commits a container, the MANIFEST lists every file
//! the organizer produced — path relative to the container root, length,
//! and CRC32C — and carries a CRC32C of its own encoding so a torn or
//! bit-flipped MANIFEST is itself detectable. Its presence distinguishes
//! "this tree is a committed container" from "this tree is whatever a
//! crash left behind"; its entries let [`crate::container::BoraBag`]
//! verify file contents lazily on read and let [`crate::fsck`] verify the
//! whole container without trusting any of it.
//!
//! Paths are stored relative to the container root so a committed
//! container can be tree-copied (BORA-to-BORA) without invalidating its
//! MANIFEST.

use ros_msgs::wire::{WireRead, WireWrite};
use simfs::{IoCtx, Storage};

use crate::checksum::crc32c;
use crate::error::{BoraError, BoraResult};
use crate::layout::manifest_path;

const MANIFEST_MAGIC: u32 = 0x42_4D_46_31; // "BMF1"
const MANIFEST_VERSION: u32 = 1;

/// One file's commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path relative to the container root, e.g. `imu/data` or `.bora`.
    pub path: String,
    pub len: u64,
    pub crc32c: u32,
}

/// The full commit record: every file in the container, sorted by path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Build from unordered entries; sorts by path and rejects duplicates.
    pub fn new(mut entries: Vec<ManifestEntry>) -> BoraResult<Self> {
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        for w in entries.windows(2) {
            if w[0].path == w[1].path {
                return Err(BoraError::Corrupt(format!("duplicate manifest entry {}", w[0].path)));
            }
        }
        Ok(Manifest { entries })
    }

    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Look up a file by its root-relative path.
    pub fn entry(&self, rel_path: &str) -> Option<&ManifestEntry> {
        self.entries
            .binary_search_by(|e| e.path.as_str().cmp(rel_path))
            .ok()
            .map(|i| &self.entries[i])
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(MANIFEST_MAGIC);
        out.put_u32(MANIFEST_VERSION);
        out.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            out.put_string(&e.path);
            out.put_u64(e.len);
            out.put_u32(e.crc32c);
        }
        // Self-checksum over everything above, so MANIFEST damage is
        // distinguishable from data damage.
        let self_crc = crc32c(&out);
        out.put_u32(self_crc);
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        if bytes.len() < 4 {
            return Err(BoraError::Corrupt("manifest truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32c(body) != stored_crc {
            return Err(BoraError::Corrupt("manifest self-checksum mismatch".into()));
        }
        let mut cur = body;
        if cur.get_u32()? != MANIFEST_MAGIC {
            return Err(BoraError::Corrupt("manifest magic mismatch".into()));
        }
        let ver = cur.get_u32()?;
        if ver != MANIFEST_VERSION {
            return Err(BoraError::Corrupt(format!("unsupported manifest version {ver}")));
        }
        let n = cur.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            entries.push(ManifestEntry {
                path: cur.get_string()?,
                len: cur.get_u64()?,
                crc32c: cur.get_u32()?,
            });
        }
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in manifest".into()));
        }
        Manifest::new(entries)
    }

    /// Load a container's MANIFEST. `Ok(None)` when the file is absent
    /// (a pre-manifest container — still readable, just unverifiable).
    pub fn load<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> BoraResult<Option<Self>> {
        let path = manifest_path(root);
        if !storage.exists(&path, ctx) {
            return Ok(None);
        }
        let bytes = storage.read_all(&path, ctx)?;
        Ok(Some(Manifest::decode(&bytes)?))
    }

    /// Write the MANIFEST into `root` (normally the staging root).
    pub fn store<S: Storage>(&self, storage: &S, root: &str, ctx: &mut IoCtx) -> BoraResult<()> {
        let path = manifest_path(root);
        storage.append(&path, &self.encode(), ctx)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;

    fn sample() -> Manifest {
        Manifest::new(vec![
            ManifestEntry { path: "imu/data".into(), len: 123, crc32c: 0xDEAD_BEEF },
            ManifestEntry { path: ".bora".into(), len: 42, crc32c: 7 },
            ManifestEntry { path: "imu/index".into(), len: 999, crc32c: 0 },
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_sorted() {
        let m = sample();
        let d = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.entries()[0].path, ".bora");
        assert_eq!(d.entry("imu/data").unwrap().len, 123);
        assert!(d.entry("nope").is_none());
    }

    #[test]
    fn duplicate_paths_rejected() {
        let r = Manifest::new(vec![
            ManifestEntry { path: "a".into(), len: 1, crc32c: 1 },
            ManifestEntry { path: "a".into(), len: 2, crc32c: 2 },
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn any_bit_flip_detected() {
        let bytes = sample().encode();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {pos} undetected");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        for keep in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..keep]).is_err(), "truncation to {keep} undetected");
        }
    }

    #[test]
    fn load_absent_is_none() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c", &mut ctx).unwrap();
        assert!(Manifest::load(&fs, "/c", &mut ctx).unwrap().is_none());
    }

    #[test]
    fn store_then_load() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c", &mut ctx).unwrap();
        let m = sample();
        m.store(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(Manifest::load(&fs, "/c", &mut ctx).unwrap().unwrap(), m);
    }
}
