//! [`BoraBag`]: BORA-Lib's query interface over a container.
//!
//! * `open` is the paper's Fig. 4b: list the container's sub-directories to
//!   build the tag manager's hash table, read the small metadata file, and
//!   return — no chunk-info iteration, no per-message index construction.
//! * `read_topics` is Fig. 7: hash-lookup each topic's back-end path and
//!   hand the underlying file system large contiguous reads.
//! * `read_topics_time` uses the coarse-grain time index: window arithmetic
//!   narrows each topic to a candidate entry range, one contiguous read
//!   covers the candidates, and a fine timestamp filter finishes the job.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use ros_msgs::Time;
use rosbag::reader::MessageRecord;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::block::{decode_frame, BlockMap, BlockParams};
use crate::bufpool::BufferPool;
use crate::checksum::{crc32c, Crc32c};
use crate::error::{BoraError, BoraResult};
use crate::layout::{meta_path, rel_path, TopicPaths};
use crate::manifest::Manifest;
use crate::meta::ContainerMeta;
use crate::stream::{MessageStream, StreamOptions, TailMessage};
use crate::tag::TagManager;
use crate::time_index::TimeIndex;
use crate::topic_index::{decode_entries, is_chronological, TopicIndexEntry};

/// Per-message delivery cost through the ROS-Lib/FUSE front end.
///
/// The paper's prototype keeps the ROS-Lib message API: applications still
/// receive messages one by one through the FUSE interposition layer, and a
/// FUSE 2.x read round trip costs tens of microseconds. This is why the
/// paper's measured wins are 1.5-11x rather than unbounded — BORA
/// eliminates the *seek and scan* work, not the per-message delivery. The
/// bulk [`BoraBag::read_topic_raw`] path bypasses ROS-Lib and does not pay
/// it.
pub const FUSE_DELIVERY_NS: u64 = 60_000;

/// An opened BORA container.
///
/// The tag table and metadata built by [`BoraBag::open`] are immutable for
/// the handle's lifetime and shared behind `Arc`s, so cloning a handle is
/// cheap (two reference bumps plus the storage handle's own clone). A
/// serving layer can therefore open a container once and hand concurrent
/// workers their own handles.
pub struct BoraBag<S> {
    pub(crate) storage: S,
    root: String,
    pub(crate) tags: Arc<TagManager>,
    meta: Arc<ContainerMeta>,
    /// Commit manifest, when the container has one. Full-file reads are
    /// verified against it lazily; pre-manifest containers get `None` and
    /// read unverified.
    manifest: Arc<Option<Manifest>>,
    /// topic → stable connection id, precomputed at open so per-message
    /// reporting is a hash lookup rather than a linear scan of the
    /// metadata topic list.
    conn_ids: Arc<HashMap<Arc<str>, u32>>,
    /// Topics whose files failed verification — populated up front by
    /// [`BoraBag::open_degraded`] and lazily whenever a read catches a
    /// checksum mismatch. Reads of a damaged topic short-circuit with
    /// [`BoraError::TopicDamaged`]; the other topics keep serving.
    damaged: Arc<Mutex<HashSet<String>>>,
    /// Shared buffer pool, when the embedding layer attached one
    /// ([`BoraBag::with_pool`]). Block-framed data files page through
    /// it; v1 files always read storage directly (the classic path,
    /// bit-for-bit unchanged — see [`DataSource`] for why).
    pool: Option<Arc<BufferPool>>,
    /// Lazily loaded per-topic block maps (block-framed containers).
    block_maps: Arc<Mutex<HashMap<String, Arc<BlockMap>>>>,
}

impl<S: Clone> Clone for BoraBag<S> {
    fn clone(&self) -> Self {
        BoraBag {
            storage: self.storage.clone(),
            root: self.root.clone(),
            tags: Arc::clone(&self.tags),
            meta: Arc::clone(&self.meta),
            manifest: Arc::clone(&self.manifest),
            conn_ids: Arc::clone(&self.conn_ids),
            damaged: Arc::clone(&self.damaged),
            pool: self.pool.clone(),
            block_maps: Arc::clone(&self.block_maps),
        }
    }
}

/// How a topic's `data` file is physically read — resolved once per
/// cursor/bulk read by [`BoraBag::data_source`].
pub(crate) enum DataSource {
    /// v1 file: direct `read_at`, exactly the pre-pool path. v1 data
    /// files are deliberately **never** pooled: their only integrity
    /// cover is the manifest's whole-file CRC, which the direct paths
    /// fold over actual storage bytes. Serving cached pages would make
    /// that check vacuously pass over memory while the medium rots.
    /// Block-framed files carry a per-frame CRC verified at every fill,
    /// so they pool safely.
    RawDirect,
    /// Block-framed file: frames decode per block, through the pool when
    /// one is attached.
    Blocked { map: Arc<BlockMap> },
}

impl DataSource {
    /// Total logical bytes the source exposes, when it tracks them.
    pub(crate) fn logical_len(&self) -> Option<u64> {
        match self {
            DataSource::RawDirect => None,
            DataSource::Blocked { map } => Some(map.logical_len),
        }
    }
}

impl<S: Storage> BoraBag<S> {
    /// BORA-assisted open (Fig. 4b): build the tag hash table from the
    /// directory listing and load the container metadata.
    pub fn open(storage: S, container_root: &str, ctx: &mut IoCtx) -> BoraResult<Self> {
        // The child spans partition the whole open: summing their virtual
        // charges reproduces the parent's (the paper's Fig. 4b
        // decomposition — directory-listing hash build + one small read —
        // plus the commit-manifest load the verification layer adds).
        let sp_open = bora_obs::span("bora.open");
        let virt_open = ctx.elapsed_ns();
        let tags = {
            let sp = bora_obs::span("bora.open.tag_rebuild");
            let v0 = ctx.elapsed_ns();
            let tags = TagManager::build(&storage, container_root, ctx)?;
            sp.end_virt(ctx.elapsed_ns() - v0);
            tags
        };
        let meta = {
            let sp = bora_obs::span("bora.open.meta_read");
            let v0 = ctx.elapsed_ns();
            let meta_bytes = storage
                .read_all(&meta_path(container_root), ctx)
                .map_err(|_| BoraError::NotAContainer(container_root.to_owned()))?;
            let meta = ContainerMeta::decode(&meta_bytes)?;
            sp.end_virt(ctx.elapsed_ns() - v0);
            meta
        };
        // The commit manifest, when present, arms lazy read verification.
        // A container written before the commit protocol has none and
        // reads unverified; a *damaged* manifest is a hard error — the
        // container claims to be verifiable but can't be.
        let manifest = {
            let sp = bora_obs::span("bora.open.manifest_load");
            let v0 = ctx.elapsed_ns();
            let manifest = Manifest::load(&storage, container_root, ctx)?;
            sp.end_virt(ctx.elapsed_ns() - v0);
            manifest
        };
        bora_obs::counter("bora.open.count").inc();
        sp_open.end_virt(ctx.elapsed_ns() - virt_open);
        let conn_ids = meta
            .topics
            .iter()
            .enumerate()
            .map(|(i, t)| (Arc::from(t.topic.as_str()), i as u32))
            .collect();
        Ok(BoraBag {
            storage,
            root: container_root.to_owned(),
            tags: Arc::new(tags),
            meta: Arc::new(meta),
            manifest: Arc::new(manifest),
            conn_ids: Arc::new(conn_ids),
            damaged: Arc::new(Mutex::new(HashSet::new())),
            pool: None,
            block_maps: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Attach a shared buffer pool: subsequent data-file reads (bulk and
    /// streaming) page through it, so hot topics are served from memory
    /// across handles, workers, and connections.
    pub fn with_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The attached buffer pool, if any.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Block parameters of a block-framed container (metadata v2).
    pub fn block_params(&self) -> Option<BlockParams> {
        self.meta.block
    }

    /// Degraded open: like [`BoraBag::open`], but instead of trusting the
    /// tree, pre-screens every topic's files against the manifest (cheap
    /// length checks; content checksums stay lazy) and quarantines the
    /// topics that fail. Reads of quarantined topics return
    /// [`BoraError::TopicDamaged`]; intact topics serve normally. Returns
    /// the quarantined topic names alongside the handle.
    pub fn open_degraded(
        storage: S,
        container_root: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<(Self, Vec<String>)> {
        let bag = Self::open(storage, container_root, ctx)?;
        let mut damaged_topics = Vec::new();
        if let Some(manifest) = bag.manifest.as_ref() {
            for topic in bag.topics().into_iter().map(str::to_owned).collect::<Vec<_>>() {
                let paths = bag.tags.lookup(&topic, ctx)?.clone();
                let intact =
                    [&paths.data, &paths.index, &paths.tindex, &paths.blocks].iter().all(|p| {
                        let rel = match rel_path(&bag.root, p) {
                            Some(r) => r,
                            None => return false,
                        };
                        match manifest.entry(rel) {
                            // Unlisted file: nothing to verify against.
                            None => true,
                            Some(e) => bag.storage.len(p, ctx).map(|l| l == e.len).unwrap_or(false),
                        }
                    });
                if !intact {
                    damaged_topics.push(topic);
                }
            }
            damaged_topics.sort();
            let mut set = bag.damaged.lock();
            for t in &damaged_topics {
                set.insert(t.clone());
            }
        }
        Ok((bag, damaged_topics))
    }

    /// Topics currently quarantined as damaged (degraded mode).
    pub fn damaged_topics(&self) -> Vec<String> {
        let mut v: Vec<String> = self.damaged.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Whether this container carries a commit manifest (and therefore
    /// verifies reads).
    pub fn has_manifest(&self) -> bool {
        self.manifest.is_some()
    }

    pub(crate) fn check_not_damaged(&self, topic: &str) -> BoraResult<()> {
        if self.damaged.lock().contains(topic) {
            return Err(BoraError::TopicDamaged(topic.to_owned()));
        }
        Ok(())
    }

    /// Quarantine a topic after a failed verification (streaming cursors
    /// detect mismatches off the open path and report back through this).
    pub(crate) fn quarantine(&self, topic: &str) {
        self.damaged.lock().insert(topic.to_owned());
    }

    /// What the commit manifest expects of `path`, as a ready-to-fold
    /// running CRC + (len, crc, rel-path) triple — `None` when the
    /// container has no manifest or doesn't list the file. The streaming
    /// read path uses this to verify a data file chunk-by-chunk without
    /// ever holding it whole.
    pub(crate) fn manifest_expectation(&self, path: &str) -> Option<(Crc32c, u64, u32, String)> {
        let manifest = self.manifest.as_ref().as_ref()?;
        let rel = rel_path(&self.root, path)?;
        let entry = manifest.entry(rel)?;
        Some((Crc32c::new(), entry.len, entry.crc32c, rel.to_owned()))
    }

    /// Full-file read with lazy manifest verification: length + CRC32C
    /// are checked when the container has a manifest entry for the file.
    /// On mismatch the owning topic is quarantined and the typed
    /// [`BoraError::ChecksumMismatch`] surfaces to the caller. Partial
    /// (`read_at`) paths skip content verification — the time-range read
    /// path trades verification for not touching the whole file, which is
    /// exactly the point of the coarse index.
    pub(crate) fn verified_read_all(
        &self,
        path: &str,
        topic: Option<&str>,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<u8>> {
        let bytes = self.storage.read_all(path, ctx)?;
        let (Some(manifest), Some(rel)) = (self.manifest.as_ref(), rel_path(&self.root, path))
        else {
            return Ok(bytes);
        };
        let Some(entry) = manifest.entry(rel) else {
            return Ok(bytes);
        };
        let t0 = Instant::now();
        let actual = crc32c(&bytes);
        bora_obs::histogram("verify.latency_ns").record(t0.elapsed().as_nanos() as u64);
        if bytes.len() as u64 != entry.len || actual != entry.crc32c {
            bora_obs::counter("verify.checksum_fail").inc();
            if let Some(t) = topic {
                self.damaged.lock().insert(t.to_owned());
            }
            return Err(BoraError::ChecksumMismatch {
                path: rel.to_owned(),
                expected: entry.crc32c,
                actual,
            });
        }
        Ok(bytes)
    }

    /// Load (and cache) one topic's block map.
    pub(crate) fn block_map(
        &self,
        topic: &str,
        paths: &TopicPaths,
        ctx: &mut IoCtx,
    ) -> BoraResult<Arc<BlockMap>> {
        if let Some(m) = self.block_maps.lock().get(topic) {
            return Ok(Arc::clone(m));
        }
        let bytes = self.verified_read_all(&paths.blocks, Some(topic), ctx)?;
        let map = Arc::new(BlockMap::decode(&bytes)?);
        self.block_maps.lock().insert(topic.to_owned(), Arc::clone(&map));
        Ok(map)
    }

    /// Resolve how `topic`'s data file is read: direct, pool-paged, or
    /// block-decoded — see [`DataSource`].
    pub(crate) fn data_source(
        &self,
        topic: &str,
        paths: &TopicPaths,
        ctx: &mut IoCtx,
    ) -> BoraResult<DataSource> {
        if self.meta.block.is_some() {
            return Ok(DataSource::Blocked { map: self.block_map(topic, paths, ctx)? });
        }
        // v1 stays direct even when a pool is attached — see [`DataSource`].
        Ok(DataSource::RawDirect)
    }

    /// One decoded page of a block-framed topic (logical block `page`),
    /// through the pool when attached: on a pool hit no storage read and
    /// no decompression runs at all.
    fn block_page(
        &self,
        paths: &TopicPaths,
        map: &BlockMap,
        page: usize,
        ctx: &mut IoCtx,
    ) -> BoraResult<Arc<[u8]>> {
        let e = map.entries[page];
        let rel = rel_path(&self.root, &paths.data).unwrap_or(&paths.data).to_owned();
        let storage = &self.storage;
        let data_path = &paths.data;
        let fill = move |ctx: &mut IoCtx| -> BoraResult<Vec<u8>> {
            let frame = storage.read_at(data_path, e.phys_off, e.frame_len as usize, ctx)?;
            let (logical, _) = decode_frame(&frame, &rel, ctx)?;
            // Every block decode is counted: `EXPLAIN ANALYZE` and the
            // pushdown experiments read the delta of this counter to
            // prove how many decodes a time-range restriction skipped.
            bora_obs::counter("block.decode").inc();
            bora_obs::counter("block.decode_bytes").add(logical.len() as u64);
            Ok(logical)
        };
        match &self.pool {
            Some(pool) => Ok(pool.get_or_fill(&paths.data, page as u64, || fill(ctx))?.0.bytes()),
            None => Ok(Arc::from(fill(ctx)?)),
        }
    }

    /// Fetch logical range `[start, start+len)` of a topic's data file
    /// through `src`. Pool hits cost no storage I/O and no decode.
    pub(crate) fn fetch_logical(
        &self,
        paths: &TopicPaths,
        src: &DataSource,
        start: u64,
        len: usize,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let page_size = match src {
            DataSource::RawDirect => {
                return Ok(self.storage.read_at(&paths.data, start, len, ctx)?)
            }
            DataSource::Blocked { map } => map.block_size as u64,
        };
        let mut out = Vec::with_capacity(len);
        let end = start + len as u64;
        let mut off = start;
        while off < end {
            let page = off / page_size;
            let page_start = page * page_size;
            let bytes = match src {
                DataSource::Blocked { map } => self.block_page(paths, map, page as usize, ctx)?,
                DataSource::RawDirect => unreachable!(),
            };
            let lo = (off - page_start) as usize;
            let hi = ((end - page_start) as usize).min(bytes.len());
            if hi <= lo {
                return Err(BoraError::Corrupt(format!(
                    "{}: read past end of page {page}",
                    paths.data
                )));
            }
            out.extend_from_slice(&bytes[lo..hi]);
            off = page_start + hi as u64;
        }
        Ok(out)
    }

    pub fn root(&self) -> &str {
        &self.root
    }

    pub fn meta(&self) -> &ContainerMeta {
        &self.meta
    }

    pub fn tags(&self) -> &TagManager {
        &self.tags
    }

    pub fn topics(&self) -> Vec<&str> {
        self.tags.topics()
    }

    /// Bag-level time range recorded in the metadata.
    pub fn time_range(&self) -> (Time, Time) {
        (self.meta.start_time, self.meta.end_time)
    }

    /// Load one topic's full fine-grain index.
    pub fn load_index(&self, topic: &str, ctx: &mut IoCtx) -> BoraResult<Vec<TopicIndexEntry>> {
        self.check_not_damaged(topic)?;
        let paths = self.tags.lookup(topic, ctx)?.clone();
        let bytes = self.verified_read_all(&paths.index, Some(topic), ctx)?;
        let entries = decode_entries(&bytes)?;
        ctx.charge_ns(entries.len() as u64 * cpu::INDEX_ENTRY_NS);
        Ok(entries)
    }

    /// Load one topic's coarse time index.
    pub fn load_time_index(&self, topic: &str, ctx: &mut IoCtx) -> BoraResult<TimeIndex> {
        self.check_not_damaged(topic)?;
        let sp = bora_obs::span("bora.tindex.load");
        let v0 = ctx.elapsed_ns();
        let paths = self.tags.lookup(topic, ctx)?.clone();
        let bytes = self.verified_read_all(&paths.tindex, Some(topic), ctx)?;
        let tindex = TimeIndex::decode(&bytes)?;
        sp.end_virt(ctx.elapsed_ns() - v0);
        Ok(tindex)
    }

    /// Bulk-read one topic: the whole `data` file in one sequential read
    /// plus its index. This is the raw form analytics pipelines want.
    pub fn read_topic_raw(
        &self,
        topic: &str,
        ctx: &mut IoCtx,
    ) -> BoraResult<(Vec<TopicIndexEntry>, Vec<u8>)> {
        self.check_not_damaged(topic)?;
        let paths = self.tags.lookup(topic, ctx)?.clone();
        let index = {
            let bytes = self.verified_read_all(&paths.index, Some(topic), ctx)?;
            decode_entries(&bytes)?
        };
        let src = self.data_source(topic, &paths, ctx)?;
        let data = match &src {
            DataSource::RawDirect => self.verified_read_all(&paths.data, Some(topic), ctx)?,
            _ => {
                let total = src.logical_len().unwrap_or(0);
                self.fetch_logical(&paths, &src, 0, total as usize, ctx).inspect_err(|e| {
                    if let BoraError::ChecksumMismatch { .. } = e {
                        self.quarantine(topic);
                    }
                })?
            }
        };
        Ok((index, data))
    }

    /// Stream every message of the selected topics in global time order:
    /// bounded readahead per topic, parallel prefetch, heap k-way merge,
    /// zero-copy payloads. This is the primary read path; the
    /// materializing `read_*` methods below are `collect()` wrappers over
    /// it.
    pub fn stream_topics<'a>(
        &'a self,
        topics: &[&str],
        opts: StreamOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<MessageStream<'a, S>> {
        MessageStream::new(self, topics, Vec::new(), None, opts, ctx)
    }

    /// Time-bounded stream over the selected topics, narrowed per topic
    /// by the coarse-grain time index before any data-file byte moves.
    pub fn stream_topics_time<'a>(
        &'a self,
        topics: &[&str],
        start: Time,
        end: Time,
        opts: StreamOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<MessageStream<'a, S>> {
        MessageStream::new(self, topics, Vec::new(), Some((start, end)), opts, ctx)
    }

    /// Stream `topics` with live-ingest tails merged in: `tails[i]` holds
    /// topic `i`'s in-memory messages (sealed segments + memtable, in
    /// append order) that are *newer* than the topic's container entries.
    /// The k-way merge treats a container entry and a tail message
    /// identically — same lanes, same `(time, lane)` tie-break — so the
    /// output is byte-identical whether a message has been compacted into
    /// the container yet or not. A topic the container doesn't know is
    /// accepted when its tail is non-empty (not yet compacted at all).
    pub fn stream_topics_with_tails<'a>(
        &'a self,
        topics: &[&str],
        tails: Vec<Vec<TailMessage>>,
        range: Option<(Time, Time)>,
        opts: StreamOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<MessageStream<'a, S>> {
        MessageStream::new(self, topics, tails, range, opts, ctx)
    }

    /// Read every message of one topic, in time order, delivered through
    /// the ROS-Lib front end (per-message FUSE round trip charged).
    pub fn read_topic(&self, topic: &str, ctx: &mut IoCtx) -> BoraResult<Vec<MessageRecord>> {
        self.stream_topics(&[topic], StreamOptions::default(), ctx)?.collect_records(ctx)
    }

    /// `bag.read_messages(topics=[...])`, BORA style (Fig. 7): one
    /// bounded sequential read stream per topic (prefetched in parallel),
    /// heap-merged into time order (O(N log k), not the baseline's
    /// O(N log N) over a scattered file).
    pub fn read_topics(&self, topics: &[&str], ctx: &mut IoCtx) -> BoraResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("bora.read_topics");
        let v0 = ctx.elapsed_ns();
        let out = self.stream_topics(topics, StreamOptions::default(), ctx)?.collect_records(ctx);
        sp.end_virt(ctx.elapsed_ns() - v0);
        out
    }

    /// `bag.read_messages(topics, start_time, end_time)` via the
    /// coarse-grain time index.
    pub fn read_topics_time(
        &self,
        topics: &[&str],
        start: Time,
        end: Time,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("bora.read_topics_time");
        let v0 = ctx.elapsed_ns();
        let out = self
            .stream_topics_time(topics, start, end, StreamOptions::default(), ctx)?
            .collect_records(ctx);
        sp.end_virt(ctx.elapsed_ns() - v0);
        out
    }

    /// Time-range read of one topic.
    pub fn read_topic_time(
        &self,
        topic: &str,
        start: Time,
        end: Time,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<MessageRecord>> {
        self.stream_topics_time(&[topic], start, end, StreamOptions::default(), ctx)?
            .collect_records(ctx)
    }

    /// Container self-check: per topic, the index must be chronological,
    /// entries must tile the data file, and the time index must cover all
    /// entries. Returns the number of messages verified.
    pub fn verify(&self, ctx: &mut IoCtx) -> BoraResult<u64> {
        let mut total = 0u64;
        for topic in self.topics().into_iter().map(str::to_owned).collect::<Vec<_>>() {
            let entries = self.load_index(&topic, ctx)?;
            if !is_chronological(&entries) {
                return Err(BoraError::Corrupt(format!("{topic}: index not chronological")));
            }
            let paths = self.tags.lookup(&topic, ctx)?.clone();
            let data_len = self.storage.len(&paths.data, ctx)?;
            let covered: u64 = entries.iter().map(|e| e.len as u64).sum();
            if self.meta.block.is_some() {
                // Block-framed topic: the index tiles the *logical*
                // stream the map describes; the physical file must match
                // the map's frame lengths.
                let map = self.block_map(&topic, &paths, ctx)?;
                if covered != map.logical_len {
                    return Err(BoraError::Corrupt(format!(
                        "{topic}: index covers {covered} bytes, block map logs {}",
                        map.logical_len
                    )));
                }
                if map.phys_len() != data_len {
                    return Err(BoraError::Corrupt(format!(
                        "{topic}: block map frames total {} bytes, data file has {data_len}",
                        map.phys_len()
                    )));
                }
            } else if covered != data_len {
                return Err(BoraError::Corrupt(format!(
                    "{topic}: index covers {covered} bytes, data file has {data_len}"
                )));
            }
            let tindex = self.load_time_index(&topic, ctx)?;
            let windowed: u64 = tindex.windows.iter().map(|w| w.count as u64).sum();
            if windowed != entries.len() as u64 {
                return Err(BoraError::Corrupt(format!(
                    "{topic}: time index covers {windowed} of {} entries",
                    entries.len()
                )));
            }
            if let Some(m) = self.meta.topic(&topic) {
                if m.message_count != entries.len() as u64 {
                    return Err(BoraError::Corrupt(format!(
                        "{topic}: metadata says {} messages, index has {}",
                        m.message_count,
                        entries.len()
                    )));
                }
            }
            total += entries.len() as u64;
        }
        Ok(total)
    }

    /// Stable connection id for reporting: position in the metadata topic
    /// list (containers have no wire-level connections). Hash lookup on a
    /// table built once at open.
    pub(crate) fn conn_id_of(&self, topic: &str) -> u32 {
        self.conn_ids.get(topic).copied().unwrap_or(u32::MAX)
    }
}

/// Slice one topic's materialized data buffer into owned records (the
/// bulk `read_topic_raw` consumers and the linear-merge reference path).
pub fn slice_messages(
    index: &[TopicIndexEntry],
    data: &[u8],
    topic: &str,
    conn_id: u32,
) -> Vec<MessageRecord> {
    index
        .iter()
        .map(|e| MessageRecord {
            conn_id,
            topic: topic.to_owned(),
            time: e.time,
            data: data[e.offset as usize..e.end() as usize].to_vec(),
        })
        .collect()
}

/// The retired linear-scan merge, kept as a reference implementation:
/// differential tests pin the streaming heap merge against it, and the
/// `ext_stream` experiment measures its O(N·k) pick (every output message
/// scans all k cursors) against the heap's O(N log k) — charged honestly
/// as N·k here, which the old in-line version understated as N·log k.
pub fn merge_streams_linear(
    mut streams: Vec<Vec<MessageRecord>>,
    ctx: &mut IoCtx,
) -> Vec<MessageRecord> {
    streams.retain(|s| !s.is_empty());
    match streams.len() {
        0 => Vec::new(),
        1 => streams.pop().unwrap(),
        k => {
            let total: usize = streams.iter().map(Vec::len).sum();
            ctx.charge_ns(total as u64 * k as u64 * cpu::SORT_ELEMENT_NS);
            let mut out = Vec::with_capacity(total);
            let mut cursors = vec![0usize; streams.len()];
            loop {
                let mut best: Option<(usize, Time)> = None;
                for (si, s) in streams.iter().enumerate() {
                    if let Some(m) = s.get(cursors[si]) {
                        if best.map(|(_, t)| m.time < t).unwrap_or(true) {
                            best = Some((si, m.time));
                        }
                    }
                }
                match best {
                    Some((si, _)) => {
                        out.push(streams[si][cursors[si]].clone());
                        cursors[si] += 1;
                    }
                    None => break,
                }
            }
            out
        }
    }
}

/// Binary-heap k-way merge over already-materialized streams, with the
/// same `(time, stream-position)` tie-break as [`MessageStream`]. Used by
/// the merge micro-benchmarks and differential tests; the streaming path
/// performs the identical merge incrementally over cursors.
pub fn merge_streams_heap(streams: Vec<Vec<MessageRecord>>, ctx: &mut IoCtx) -> Vec<MessageRecord> {
    let k = streams.iter().filter(|s| !s.is_empty()).count();
    let total: usize = streams.iter().map(Vec::len).sum();
    if k > 1 {
        let logk = (usize::BITS - (k - 1).leading_zeros()) as u64;
        ctx.charge_ns(total as u64 * logk * cpu::SORT_ELEMENT_NS);
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::with_capacity(streams.len());
    let mut cursors = vec![0usize; streams.len()];
    for (lane, s) in streams.iter().enumerate() {
        if let Some(m) = s.first() {
            heap.push(std::cmp::Reverse((m.time.as_nanos(), lane)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(std::cmp::Reverse((_, lane))) = heap.pop() {
        out.push(streams[lane][cursors[lane]].clone());
        cursors[lane] += 1;
        if let Some(m) = streams[lane].get(cursors[lane]) {
            heap.push(std::cmp::Reverse((m.time.as_nanos(), lane)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organizer::{duplicate, OrganizerOptions};
    use ros_msgs::sensor_msgs::{CameraInfo, Imu};
    use ros_msgs::RosMessage;
    use rosbag::{BagReader, BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    fn setup() -> (MemStorage, u64, u64) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            &fs,
            "/src.bag",
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        let (mut n_imu, mut n_cam) = (0u64, 0u64);
        for tick in 0..300u32 {
            let t = Time::from_nanos(tick as u64 * 100_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
            n_imu += 1;
            if tick % 6 == 0 {
                let mut cam = CameraInfo::default();
                cam.header.seq = tick;
                cam.header.stamp = t;
                w.write_ros_message("/camera/rgb/camera_info", t, &cam, &mut ctx).unwrap();
                n_cam += 1;
            }
        }
        w.close(&mut ctx).unwrap();
        duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        (fs, n_imu, n_cam)
    }

    #[test]
    fn open_lists_topics() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(bag.topics(), vec!["/camera/rgb/camera_info", "/imu"]);
        assert!(bag.meta().message_count() > 0);
    }

    #[test]
    fn read_topic_matches_baseline_reader() {
        let (fs, n_imu, _) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let bora_msgs = bag.read_topic("/imu", &mut ctx).unwrap();
        assert_eq!(bora_msgs.len() as u64, n_imu);

        let baseline = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        let base_msgs = baseline.read_messages(&["/imu"], &mut ctx).unwrap();
        assert_eq!(bora_msgs.len(), base_msgs.len());
        for (a, b) in bora_msgs.iter().zip(&base_msgs) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn multi_topic_merge_is_chronological_and_complete() {
        let (fs, n_imu, n_cam) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let msgs = bag.read_topics(&["/imu", "/camera/rgb/camera_info"], &mut ctx).unwrap();
        assert_eq!(msgs.len() as u64, n_imu + n_cam);
        for pair in msgs.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn time_query_matches_baseline() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let baseline = BagReader::open(&fs, "/src.bag", &mut ctx).unwrap();
        for (s, e) in [(0.0, 5.0), (7.3, 12.9), (29.9, 30.0), (0.0, 100.0)] {
            let (start, end) = (Time::from_sec_f64(s), Time::from_sec_f64(e));
            let ours = bag
                .read_topics_time(&["/imu", "/camera/rgb/camera_info"], start, end, &mut ctx)
                .unwrap();
            let theirs = baseline
                .read_messages_time(&["/imu", "/camera/rgb/camera_info"], start, end, &mut ctx)
                .unwrap();
            assert_eq!(ours.len(), theirs.len(), "range [{s}, {e})");
            for (a, b) in ours.iter().zip(&theirs) {
                assert_eq!(a.time, b.time);
                assert_eq!(a.data, b.data);
            }
        }
    }

    #[test]
    fn time_query_empty_range() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let msgs = bag
            .read_topics_time(&["/imu"], Time::new(900, 0), Time::new(901, 0), &mut ctx)
            .unwrap();
        assert!(msgs.is_empty());
    }

    #[test]
    fn unknown_topic_is_error() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert!(matches!(bag.read_topic("/gps", &mut ctx), Err(BoraError::UnknownTopic(_))));
    }

    #[test]
    fn verify_passes_on_fresh_container() {
        let (fs, n_imu, n_cam) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(bag.verify(&mut ctx).unwrap(), n_imu + n_cam);
    }

    #[test]
    fn verify_detects_truncated_data() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        // Corrupt: drop bytes from the data file.
        let data = fs.read_all("/c/imu/data", &mut ctx).unwrap();
        fs.remove_file("/c/imu/data", &mut ctx).unwrap();
        fs.append("/c/imu/data", &data[..data.len() - 10], &mut ctx).unwrap();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert!(matches!(bag.verify(&mut ctx), Err(BoraError::Corrupt(_))));
    }

    #[test]
    fn open_missing_container() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        assert!(BoraBag::open(&fs, "/nothing", &mut ctx).is_err());
    }

    #[test]
    fn checksum_mismatch_is_typed_and_quarantines_topic() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        // Flip one payload byte; lengths stay intact, so only the CRC
        // can catch it.
        let data = fs.read_all("/c/imu/data", &mut ctx).unwrap();
        let mut bad = data.clone();
        bad[data.len() / 2] ^= 0x40;
        fs.remove_file("/c/imu/data", &mut ctx).unwrap();
        fs.append("/c/imu/data", &bad, &mut ctx).unwrap();

        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert!(bag.has_manifest());
        assert!(matches!(
            bag.read_topic_raw("/imu", &mut ctx),
            Err(BoraError::ChecksumMismatch { .. })
        ));
        // The topic is now quarantined; the sibling topic still serves.
        assert!(matches!(bag.read_topic_raw("/imu", &mut ctx), Err(BoraError::TopicDamaged(_))));
        assert!(bag.read_topic_raw("/camera/rgb/camera_info", &mut ctx).is_ok());
        assert_eq!(bag.damaged_topics(), vec!["/imu".to_owned()]);
    }

    #[test]
    fn degraded_open_quarantines_truncated_topic() {
        let (fs, _, n_cam) = setup();
        let mut ctx = IoCtx::new();
        let data = fs.read_all("/c/imu/data", &mut ctx).unwrap();
        fs.remove_file("/c/imu/data", &mut ctx).unwrap();
        fs.append("/c/imu/data", &data[..data.len() - 10], &mut ctx).unwrap();

        let (bag, damaged) = BoraBag::open_degraded(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(damaged, vec!["/imu".to_owned()]);
        assert!(matches!(bag.read_topic("/imu", &mut ctx), Err(BoraError::TopicDamaged(_))));
        let cam = bag.read_topic("/camera/rgb/camera_info", &mut ctx).unwrap();
        assert_eq!(cam.len() as u64, n_cam);
    }

    #[test]
    fn degraded_open_on_clean_container_quarantines_nothing() {
        let (fs, n_imu, _) = setup();
        let mut ctx = IoCtx::new();
        let (bag, damaged) = BoraBag::open_degraded(&fs, "/c", &mut ctx).unwrap();
        assert!(damaged.is_empty());
        assert_eq!(bag.read_topic("/imu", &mut ctx).unwrap().len() as u64, n_imu);
    }

    #[test]
    fn payloads_decode_through_bora() {
        let (fs, ..) = setup();
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let msgs = bag
            .read_topic_time("/imu", Time::from_sec_f64(1.0), Time::from_sec_f64(2.0), &mut ctx)
            .unwrap();
        assert_eq!(msgs.len(), 10);
        for m in &msgs {
            let imu = Imu::from_bytes(&m.data).unwrap();
            assert_eq!(imu.header.stamp, m.time);
        }
    }
}
