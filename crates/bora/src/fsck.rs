//! `bora fsck` — container verification and repair.
//!
//! The commit protocol (see [`crate::organizer::duplicate`]) admits
//! exactly three observable states for a container root, and the checker
//! classifies into them:
//!
//! ```text
//!            ┌─ root missing, staging present ──────────▶ Torn
//!  check ────┼─ root present, every MANIFEST entry ok ──▶ Clean
//!            └─ root present, any entry mismatched ─────▶ Corrupt
//! ```
//!
//! Repair is the state machine's closure back to Clean:
//!
//! * **Torn** → roll *back* (delete the staging debris; the duplication
//!   never happened) or, when the source bag is available, roll *forward*
//!   (delete debris, re-run the duplication).
//! * **Corrupt** → re-duplicate only the damaged topics from the source
//!   bag, then re-verify against the original MANIFEST — repaired content
//!   must be byte-identical to what was committed, or the repair
//!   escalates to a full re-duplication.
//! * **Clean** → nothing to do (repair is idempotent); stale staging
//!   debris next to a committed container is swept either way.

use simfs::{EntryKind, IoCtx, Storage};

use crate::checksum::crc32c;
use crate::error::{BoraError, BoraResult};
use crate::layout::{decode_topic, meta_path, staging_path, TopicPaths, MANIFEST_FILE, META_FILE};
use crate::manifest::Manifest;
use crate::meta::ContainerMeta;
use crate::organizer::{duplicate, OrganizerOptions};
use crate::time_index::TimeIndex;
use crate::topic_index::{encode_entries, TopicIndexEntry};

/// Verdict for one container root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckState {
    /// Committed and every MANIFEST entry verifies.
    Clean,
    /// No committed container — only uncommitted staging debris.
    Torn,
    /// Committed, but files are missing, resized, or fail their CRC.
    Corrupt,
}

/// One damaged file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDamage {
    /// Container-relative path (`imu/data`, `.bora`, `MANIFEST`).
    pub rel_path: String,
    pub reason: String,
}

/// What [`check`] found.
#[derive(Debug, Clone)]
pub struct FsckReport {
    pub state: FsckState,
    /// Staging debris exists next to a committed container (a later
    /// duplication attempt crashed). Swept by [`repair`].
    pub stale_staging: bool,
    pub damages: Vec<FileDamage>,
    /// Root-relative paths present under the container root that the
    /// MANIFEST does not account for — stray `.wal`/`.seg` files from a
    /// crashed ingest next to the container, for example. Reported, never
    /// silently skipped, but they don't make a container Corrupt: the
    /// committed data itself is intact. Empty for pre-manifest containers
    /// (nothing to compare the tree against).
    pub unknown_files: Vec<String>,
    pub files_checked: usize,
    pub bytes_checked: u64,
    /// False for pre-manifest containers, which can only be checked
    /// structurally.
    pub has_manifest: bool,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.state == FsckState::Clean && !self.stale_staging
    }
}

/// What [`repair`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Already Clean (possibly after sweeping stale staging debris).
    AlreadyClean,
    /// Torn state rolled back: staging debris removed, no container.
    RolledBack,
    /// Re-duplicated from the source bag (torn roll-forward, or damage
    /// beyond per-topic repair).
    RolledForward,
    /// This many damaged topics rebuilt in place from the source bag,
    /// byte-identical to the committed MANIFEST.
    RepairedTopics(usize),
}

/// Classify `root`. Errors only when there is nothing to classify (no
/// container and no staging debris) or the storage itself fails on a
/// metadata op.
pub fn check<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> BoraResult<FsckReport> {
    let t0 = std::time::Instant::now();
    let stage = staging_path(root);
    let stale_staging = storage.exists(&stage, ctx);
    if !storage.exists(root, ctx) {
        if stale_staging {
            bora_obs::counter("fsck.torn").inc();
            return Ok(FsckReport {
                state: FsckState::Torn,
                stale_staging,
                damages: Vec::new(),
                unknown_files: Vec::new(),
                files_checked: 0,
                bytes_checked: 0,
                has_manifest: false,
            });
        }
        return Err(BoraError::NotAContainer(root.to_owned()));
    }
    if stale_staging {
        bora_obs::counter("fsck.torn").inc();
    }

    let mut damages = Vec::new();
    let mut unknown_files = Vec::new();
    let mut files_checked = 0usize;
    let mut bytes_checked = 0u64;
    let mut has_manifest = true;
    match Manifest::load(storage, root, ctx) {
        Ok(Some(manifest)) => {
            unknown_files = scan_unknown_files(storage, root, &manifest, ctx);
            for e in manifest.entries() {
                files_checked += 1;
                let path = format!("{}/{}", root.trim_end_matches('/'), e.path);
                if !storage.exists(&path, ctx) {
                    damages.push(FileDamage { rel_path: e.path.clone(), reason: "missing".into() });
                    continue;
                }
                match storage.read_all(&path, ctx) {
                    Err(err) => damages.push(FileDamage {
                        rel_path: e.path.clone(),
                        reason: format!("unreadable: {err}"),
                    }),
                    Ok(bytes) => {
                        bytes_checked += bytes.len() as u64;
                        if bytes.len() as u64 != e.len {
                            damages.push(FileDamage {
                                rel_path: e.path.clone(),
                                reason: format!("length {} != manifest {}", bytes.len(), e.len),
                            });
                        } else {
                            let actual = crc32c(&bytes);
                            if actual != e.crc32c {
                                bora_obs::counter("verify.checksum_fail").inc();
                                damages.push(FileDamage {
                                    rel_path: e.path.clone(),
                                    reason: format!(
                                        "crc {actual:#010x} != manifest {:#010x}",
                                        e.crc32c
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(None) => {
            // Pre-manifest container: the best available check is the
            // structural one (chronology, tiling, counts).
            has_manifest = false;
            let structural =
                crate::container::BoraBag::open(storage, root, ctx).and_then(|bag| bag.verify(ctx));
            if let Err(e) = structural {
                damages.push(FileDamage {
                    rel_path: String::new(),
                    reason: format!("structural verify failed: {e}"),
                });
            }
        }
        Err(e) => damages.push(FileDamage {
            rel_path: MANIFEST_FILE.to_owned(),
            reason: format!("manifest damaged: {e}"),
        }),
    }

    bora_obs::histogram("verify.latency_ns").record(t0.elapsed().as_nanos() as u64);
    let state = if damages.is_empty() { FsckState::Clean } else { FsckState::Corrupt };
    Ok(FsckReport {
        state,
        stale_staging,
        damages,
        unknown_files,
        files_checked,
        bytes_checked,
        has_manifest,
    })
}

/// Walk the container tree (root files + one level of topic-dir files)
/// and collect everything the MANIFEST doesn't list. The MANIFEST itself
/// is exempt (it cannot list its own checksum).
fn scan_unknown_files<S: Storage>(
    storage: &S,
    root: &str,
    manifest: &Manifest,
    ctx: &mut IoCtx,
) -> Vec<String> {
    let mut unknown = Vec::new();
    let Ok(entries) = storage.read_dir(root, ctx) else {
        return unknown;
    };
    let root = root.trim_end_matches('/');
    for e in entries {
        match e.kind {
            EntryKind::File => {
                if e.name != MANIFEST_FILE && manifest.entry(&e.name).is_none() {
                    unknown.push(e.name);
                }
            }
            EntryKind::Dir => {
                let Ok(children) = storage.read_dir(&format!("{root}/{}", e.name), ctx) else {
                    continue;
                };
                for c in children {
                    let rel = format!("{}/{}", e.name, c.name);
                    if c.kind != EntryKind::File || manifest.entry(&rel).is_none() {
                        unknown.push(rel);
                    }
                }
            }
        }
    }
    unknown.sort();
    unknown
}

/// Drive `root` back to Clean. `source` is the original bag the container
/// was duplicated from, needed for roll-forward and corruption repair;
/// without it only rollback (Torn) and debris sweeping are possible.
pub fn repair<S: Storage, B: Storage>(
    storage: &S,
    root: &str,
    source: Option<(&B, &str)>,
    opts: &OrganizerOptions,
    ctx: &mut IoCtx,
) -> BoraResult<RepairOutcome> {
    let report = check(storage, root, ctx)?;
    let stage = staging_path(root);
    if report.stale_staging {
        storage.remove_dir_all(&stage, ctx)?;
    }
    match report.state {
        FsckState::Clean => Ok(RepairOutcome::AlreadyClean),
        FsckState::Torn => match source {
            None => Ok(RepairOutcome::RolledBack),
            Some((src, src_path)) => {
                duplicate(src, src_path, storage, root, opts, ctx)?;
                ensure_clean(storage, root, ctx)?;
                bora_obs::counter("fsck.repaired").inc();
                Ok(RepairOutcome::RolledForward)
            }
        },
        FsckState::Corrupt => {
            let Some((src, src_path)) = source else {
                return Err(BoraError::Corrupt(format!(
                    "{root}: corrupt and no source bag to repair from"
                )));
            };
            let topics = match damaged_topics(&report) {
                Some(t) if report.has_manifest => t,
                // MANIFEST/meta damage, structural-only container, or an
                // undecodable path: per-topic repair can't be trusted.
                _ => {
                    return full_rebuild(storage, root, src, src_path, opts, ctx);
                }
            };
            let window_ns = match storage
                .read_all(&meta_path(root), ctx)
                .map_err(BoraError::from)
                .and_then(|b| ContainerMeta::decode(&b))
            {
                Ok(meta) => meta.window_ns,
                // Meta verified Clean would have landed here with it in
                // `topics`; unreadable meta forces the full path.
                Err(_) => return full_rebuild(storage, root, src, src_path, opts, ctx),
            };
            let n = topics.len();
            for topic in &topics {
                rebuild_topic(storage, root, src, src_path, topic, window_ns, ctx)?;
            }
            // Repaired content must match the committed MANIFEST byte for
            // byte; anything less and we re-duplicate the whole thing.
            let after = check(storage, root, ctx)?;
            if after.state != FsckState::Clean {
                return full_rebuild(storage, root, src, src_path, opts, ctx);
            }
            bora_obs::counter("fsck.repaired").add(n as u64);
            Ok(RepairOutcome::RepairedTopics(n))
        }
    }
}

/// Map a Corrupt report's damages to topic names; `None` when any damage
/// is outside a topic directory (`.bora`, `MANIFEST`, structural).
fn damaged_topics(report: &FsckReport) -> Option<Vec<String>> {
    let mut topics = Vec::new();
    for d in &report.damages {
        let (dir, _file) = d.rel_path.split_once('/')?;
        if dir.is_empty() || d.rel_path == META_FILE || d.rel_path == MANIFEST_FILE {
            return None;
        }
        let topic = decode_topic(dir);
        if !topics.contains(&topic) {
            topics.push(topic);
        }
    }
    if topics.is_empty() {
        None
    } else {
        Some(topics)
    }
}

fn full_rebuild<S: Storage, B: Storage>(
    storage: &S,
    root: &str,
    src: &B,
    src_path: &str,
    opts: &OrganizerOptions,
    ctx: &mut IoCtx,
) -> BoraResult<RepairOutcome> {
    storage.remove_dir_all(root, ctx)?;
    duplicate(src, src_path, storage, root, opts, ctx)?;
    ensure_clean(storage, root, ctx)?;
    bora_obs::counter("fsck.repaired").inc();
    Ok(RepairOutcome::RolledForward)
}

fn ensure_clean<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> BoraResult<()> {
    let report = check(storage, root, ctx)?;
    if report.state != FsckState::Clean {
        return Err(BoraError::Corrupt(format!("{root}: still {:?} after repair", report.state)));
    }
    Ok(())
}

/// Rebuild one topic's `data`/`index`/`tindex` from the source bag,
/// reproducing exactly what the organizer wrote for it.
fn rebuild_topic<S: Storage, B: Storage>(
    storage: &S,
    root: &str,
    src: &B,
    src_path: &str,
    topic: &str,
    window_ns: u64,
    ctx: &mut IoCtx,
) -> BoraResult<()> {
    let reader = rosbag::BagReader::open(src, src_path, ctx)?;
    let msgs = reader.read_messages(&[topic], ctx)?;
    let paths = TopicPaths::new(root, topic);
    storage.mkdir_all(&paths.dir, ctx)?;
    for f in [&paths.data, &paths.index, &paths.tindex] {
        if storage.exists(f, ctx) {
            storage.remove_file(f, ctx)?;
        }
    }
    let mut entries = Vec::with_capacity(msgs.len());
    let mut data = Vec::new();
    for m in &msgs {
        entries.push(TopicIndexEntry {
            time: m.time,
            offset: data.len() as u64,
            len: m.data.len() as u32,
        });
        data.extend_from_slice(&m.data);
    }
    storage.append(&paths.data, &data, ctx)?;
    storage.append(&paths.index, &encode_entries(&entries), ctx)?;
    storage.append(&paths.tindex, &TimeIndex::build(&entries, window_ns).encode(), ctx)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::Imu;
    use ros_msgs::Time;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    fn build_bag(fs: &MemStorage, path: &str) {
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            fs,
            path,
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        for tick in 0..120u32 {
            let t = Time::from_nanos(tick as u64 * 50_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
    }

    fn setup() -> MemStorage {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        fs
    }

    #[test]
    fn clean_container_checks_clean() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(r.state, FsckState::Clean);
        assert!(r.is_clean());
        assert!(r.has_manifest);
        assert!(r.files_checked >= 4); // 3 topic files + .bora
        assert!(r.bytes_checked > 0);
    }

    #[test]
    fn missing_root_and_staging_is_not_a_container() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        assert!(matches!(check(&fs, "/c", &mut ctx), Err(BoraError::NotAContainer(_))));
    }

    #[test]
    fn staging_without_root_is_torn_and_rolls_back() {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c.staging/imu", &mut ctx).unwrap();
        fs.append("/c.staging/imu/data", b"partial", &mut ctx).unwrap();

        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(r.state, FsckState::Torn);

        let out = repair::<_, MemStorage>(&fs, "/c", None, &OrganizerOptions::default(), &mut ctx)
            .unwrap();
        assert_eq!(out, RepairOutcome::RolledBack);
        assert!(!fs.exists("/c.staging", &mut ctx));
        assert!(!fs.exists("/c", &mut ctx));
    }

    #[test]
    fn torn_rolls_forward_with_source() {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c.staging/imu", &mut ctx).unwrap();
        fs.append("/c.staging/imu/data", b"partial", &mut ctx).unwrap();

        let out =
            repair(&fs, "/c", Some((&fs, "/src.bag")), &OrganizerOptions::default(), &mut ctx)
                .unwrap();
        assert_eq!(out, RepairOutcome::RolledForward);
        assert!(check(&fs, "/c", &mut ctx).unwrap().is_clean());
    }

    #[test]
    fn corruption_detected_and_repaired_byte_identical() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let good = fs.read_all("/c/imu/data", &mut ctx).unwrap();
        let mut bad = good.clone();
        bad[17] ^= 0x80;
        fs.remove_file("/c/imu/data", &mut ctx).unwrap();
        fs.append("/c/imu/data", &bad, &mut ctx).unwrap();

        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(r.state, FsckState::Corrupt);
        assert_eq!(r.damages.len(), 1);
        assert_eq!(r.damages[0].rel_path, "imu/data");

        let out =
            repair(&fs, "/c", Some((&fs, "/src.bag")), &OrganizerOptions::default(), &mut ctx)
                .unwrap();
        assert_eq!(out, RepairOutcome::RepairedTopics(1));
        assert_eq!(fs.read_all("/c/imu/data", &mut ctx).unwrap(), good);
        assert!(check(&fs, "/c", &mut ctx).unwrap().is_clean());
    }

    #[test]
    fn corrupt_without_source_is_an_error() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let good = fs.read_all("/c/imu/data", &mut ctx).unwrap();
        let mut bad = good;
        bad[0] ^= 1;
        fs.remove_file("/c/imu/data", &mut ctx).unwrap();
        fs.append("/c/imu/data", &bad, &mut ctx).unwrap();
        assert!(repair::<_, MemStorage>(&fs, "/c", None, &OrganizerOptions::default(), &mut ctx)
            .is_err());
    }

    #[test]
    fn damaged_manifest_escalates_to_full_rebuild() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let m = fs.read_all("/c/MANIFEST", &mut ctx).unwrap();
        let mut bad = m;
        bad[5] ^= 0xFF;
        fs.remove_file("/c/MANIFEST", &mut ctx).unwrap();
        fs.append("/c/MANIFEST", &bad, &mut ctx).unwrap();

        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(r.state, FsckState::Corrupt);
        assert_eq!(r.damages[0].rel_path, "MANIFEST");

        let out =
            repair(&fs, "/c", Some((&fs, "/src.bag")), &OrganizerOptions::default(), &mut ctx)
                .unwrap();
        assert_eq!(out, RepairOutcome::RolledForward);
        assert!(check(&fs, "/c", &mut ctx).unwrap().is_clean());
    }

    #[test]
    fn repair_is_idempotent() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let out =
            repair(&fs, "/c", Some((&fs, "/src.bag")), &OrganizerOptions::default(), &mut ctx)
                .unwrap();
        assert_eq!(out, RepairOutcome::AlreadyClean);
    }

    #[test]
    fn clean_container_reports_no_unknown_files() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert!(r.unknown_files.is_empty());
    }

    #[test]
    fn stray_ingest_files_are_reported_not_skipped() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        // A crashed ingest left WAL/segment droppings in and around the
        // committed tree.
        fs.append("/c/00000003.seal", b"stray", &mut ctx).unwrap();
        fs.append("/c/imu/00000003.seg", b"stray", &mut ctx).unwrap();
        fs.mkdir_all("/c/wal", &mut ctx).unwrap();
        fs.append("/c/wal/shard-0.wal", b"stray", &mut ctx).unwrap();

        let r = check(&fs, "/c", &mut ctx).unwrap();
        // The committed data is intact — strays are surfaced, not fatal.
        assert_eq!(r.state, FsckState::Clean);
        assert_eq!(
            r.unknown_files,
            vec![
                "00000003.seal".to_owned(),
                "imu/00000003.seg".to_owned(),
                "wal/shard-0.wal".to_owned(),
            ]
        );
    }

    #[test]
    fn stale_staging_next_to_clean_container_is_swept() {
        let fs = setup();
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c.staging", &mut ctx).unwrap();
        fs.append("/c.staging/junk", b"x", &mut ctx).unwrap();
        let r = check(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(r.state, FsckState::Clean);
        assert!(r.stale_staging);
        assert!(!r.is_clean());
        let out = repair::<_, MemStorage>(&fs, "/c", None, &OrganizerOptions::default(), &mut ctx)
            .unwrap();
        assert_eq!(out, RepairOutcome::AlreadyClean);
        assert!(!fs.exists("/c.staging", &mut ctx));
        assert!(check(&fs, "/c", &mut ctx).unwrap().is_clean());
    }
}
