//! The coarse-grain time index (paper Fig. 8).
//!
//! Each topic's messages are chronological in its `data`/`index` files, so
//! a fixed time window `W` maps to a *contiguous range* of index entries.
//! The time index stores, per non-empty window, the window's start slot and
//! the entry range `[first, first+count)`.
//!
//! A query `(start, end)` computes `⌊start/W⌋` and `⌈end/W⌉` — the paper's
//! arithmetic — selects the windows in that slot range, and hands back the
//! covered entry range. The caller then fine-filters the (few) candidate
//! entries by exact timestamp, instead of merge-sorting every message of
//! the topic as the baseline does.

use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

use crate::error::{BoraError, BoraResult};
use crate::topic_index::TopicIndexEntry;

/// Default window width: 5 seconds, the paper's example granularity
/// (Fig. 8 uses 5 time units; §III.C notes the value is configurable).
pub const DEFAULT_WINDOW_NS: u64 = 5_000_000_000;

/// Magic + version guarding the `tindex` file.
const TINDEX_MAGIC: u32 = 0x42_54_49_31; // "BTI1"

/// One non-empty window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window slot number (`time_ns / window_ns`).
    pub slot: u64,
    /// Index of the first entry belonging to this window.
    pub first_entry: u32,
    /// Number of entries in this window.
    pub count: u32,
}

/// Coarse-grain time index for one topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeIndex {
    pub window_ns: u64,
    /// Non-empty windows, ascending by slot.
    pub windows: Vec<Window>,
}

impl TimeIndex {
    /// Build from a chronological entry list.
    pub fn build(entries: &[TopicIndexEntry], window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be positive");
        let mut windows: Vec<Window> = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let slot = e.time.as_nanos() / window_ns;
            match windows.last_mut() {
                Some(w) if w.slot == slot => w.count += 1,
                _ => windows.push(Window { slot, first_entry: i as u32, count: 1 }),
            }
        }
        TimeIndex { window_ns, windows }
    }

    /// The paper's window arithmetic: for a query `[start, end)`, the slot
    /// range to inspect is `⌊start/W⌋ ..= ⌈end/W⌉`.
    pub fn slot_range(&self, start: Time, end: Time) -> (u64, u64) {
        let lo = start.as_nanos() / self.window_ns;
        let hi = end.as_nanos().div_ceil(self.window_ns);
        (lo, hi)
    }

    /// Entry range `[first, last)` covering all windows that intersect
    /// `[start, end)`. Returns `None` when no window intersects.
    pub fn candidate_entries(&self, start: Time, end: Time) -> Option<(u32, u32)> {
        if start >= end {
            return None;
        }
        let (lo_slot, hi_slot) = self.slot_range(start, end);
        let lo = self.windows.partition_point(|w| w.slot < lo_slot);
        let hi = self.windows.partition_point(|w| w.slot < hi_slot);
        if lo >= hi {
            return None;
        }
        let first = self.windows[lo].first_entry;
        let last = self.windows[hi - 1].first_entry + self.windows[hi - 1].count;
        Some((first, last))
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Serialize into the `tindex` file format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.windows.len() * 16);
        out.put_u32(TINDEX_MAGIC);
        out.put_u64(self.window_ns);
        out.put_u32(self.windows.len() as u32);
        for w in &self.windows {
            out.put_u64(w.slot);
            out.put_u32(w.first_entry);
            out.put_u32(w.count);
        }
        out
    }

    /// Parse a `tindex` file.
    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        let mut cur = bytes;
        let magic = cur.get_u32()?;
        if magic != TINDEX_MAGIC {
            return Err(BoraError::Corrupt("tindex magic mismatch".into()));
        }
        let window_ns = cur.get_u64()?;
        if window_ns == 0 {
            return Err(BoraError::Corrupt("tindex window width is zero".into()));
        }
        let n = cur.get_u32()? as usize;
        if cur.remaining() != n * 16 {
            return Err(BoraError::Corrupt(format!(
                "tindex claims {n} windows but has {} payload bytes",
                cur.remaining()
            )));
        }
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            let slot = cur.get_u64()?;
            let first_entry = cur.get_u32()?;
            let count = cur.get_u32()?;
            windows.push(Window { slot, first_entry, count });
        }
        Ok(TimeIndex { window_ns, windows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries_at_seconds(secs: &[f64]) -> Vec<TopicIndexEntry> {
        secs.iter()
            .enumerate()
            .map(|(i, &s)| TopicIndexEntry {
                time: Time::from_sec_f64(s),
                offset: i as u64 * 10,
                len: 10,
            })
            .collect()
    }

    #[test]
    fn build_groups_into_windows() {
        // Window = 5 s, like the paper's Fig. 8.
        let entries = entries_at_seconds(&[0.0, 1.0, 4.9, 5.0, 9.0, 31.0, 33.0]);
        let ti = TimeIndex::build(&entries, DEFAULT_WINDOW_NS);
        assert_eq!(ti.len(), 3);
        assert_eq!(ti.windows[0], Window { slot: 0, first_entry: 0, count: 3 });
        assert_eq!(ti.windows[1], Window { slot: 1, first_entry: 3, count: 2 });
        assert_eq!(ti.windows[2], Window { slot: 6, first_entry: 5, count: 2 });
    }

    #[test]
    fn paper_example_window_31_to_36() {
        // Fig. 8: pair (31, [offsets]) holds topic1 messages in [31, 36)
        // with a 5-unit window... slot 6 covers [30, 35). A query for
        // [31, 36) must inspect slots 6 and 7.
        let entries = entries_at_seconds(&[31.0, 32.0, 34.9, 35.5]);
        let ti = TimeIndex::build(&entries, DEFAULT_WINDOW_NS);
        let (lo, hi) = ti.slot_range(Time::from_sec_f64(31.0), Time::from_sec_f64(36.0));
        assert_eq!((lo, hi), (6, 8));
        let (first, last) =
            ti.candidate_entries(Time::from_sec_f64(31.0), Time::from_sec_f64(36.0)).unwrap();
        assert_eq!((first, last), (0, 4));
    }

    #[test]
    fn candidate_entries_narrow_window() {
        let entries = entries_at_seconds(&[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
        let ti = TimeIndex::build(&entries, DEFAULT_WINDOW_NS);
        // Query [20, 21): only slot 4 (covering [20, 25)) intersects.
        let (first, last) =
            ti.candidate_entries(Time::from_sec_f64(20.0), Time::from_sec_f64(21.0)).unwrap();
        assert_eq!((first, last), (2, 3));
    }

    #[test]
    fn candidate_entries_no_match() {
        let entries = entries_at_seconds(&[0.0, 100.0]);
        let ti = TimeIndex::build(&entries, DEFAULT_WINDOW_NS);
        assert!(ti.candidate_entries(Time::from_sec_f64(40.0), Time::from_sec_f64(50.0)).is_none());
        assert!(
            ti.candidate_entries(Time::from_sec_f64(10.0), Time::from_sec_f64(10.0)).is_none(),
            "empty range"
        );
    }

    #[test]
    fn candidates_superset_of_exact_range() {
        // The coarse index may over-approximate but must never miss.
        let secs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.173).collect();
        let entries = entries_at_seconds(&secs);
        let ti = TimeIndex::build(&entries, DEFAULT_WINDOW_NS);
        let (start, end) = (Time::from_sec_f64(31.0), Time::from_sec_f64(77.0));
        let (first, last) = ti.candidate_entries(start, end).unwrap();
        for (i, e) in entries.iter().enumerate() {
            if e.time >= start && e.time < end {
                assert!((first as usize..last as usize).contains(&i), "entry {i} missed");
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let entries = entries_at_seconds(&[0.0, 3.0, 12.0, 31.0]);
        let ti = TimeIndex::build(&entries, 2_000_000_000);
        let bytes = ti.encode();
        assert_eq!(TimeIndex::decode(&bytes).unwrap(), ti);
    }

    #[test]
    fn decode_rejects_corruption() {
        let ti = TimeIndex::build(&entries_at_seconds(&[1.0]), DEFAULT_WINDOW_NS);
        let mut bytes = ti.encode();
        bytes[0] ^= 0xFF; // magic
        assert!(TimeIndex::decode(&bytes).is_err());
        let mut bytes2 = ti.encode();
        bytes2.truncate(bytes2.len() - 1);
        assert!(TimeIndex::decode(&bytes2).is_err());
    }

    #[test]
    fn empty_topic_is_fine() {
        let ti = TimeIndex::build(&[], DEFAULT_WINDOW_NS);
        assert!(ti.is_empty());
        assert!(ti.candidate_entries(Time::ZERO, Time::MAX).is_none());
        assert_eq!(TimeIndex::decode(&ti.encode()).unwrap(), ti);
    }
}
