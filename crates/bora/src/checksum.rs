//! CRC32C (Castagnoli) — the container's end-to-end data checksum.
//!
//! Software table-driven implementation (the workspace is offline, so no
//! hardware-CRC crate): slice-by-8 over eight 256-entry tables for the
//! reflected polynomial `0x82F63B78`, all built at compile time. Each
//! iteration folds eight input bytes with eight independent table lookups
//! instead of one, cutting the serial dependency chain to one XOR tree per
//! eight bytes — the classic Kounavis/Berry layout that zlib, the Linux
//! kernel and RocksDB use when hardware CRC is unavailable. CRC32C is what
//! real storage stacks (iSCSI, ext4 metadata, Btrfs, RocksDB) use for the
//! same job, and the streaming form lets the organizer fold each buffered
//! append into a running digest without re-reading what it just wrote.

const POLY: u32 = 0x82F6_3B78; // CRC-32C, reflected

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[j]` advances a
/// byte's contribution `j` further positions through the polynomial, so
/// eight lookups — one per table — process eight bytes at once.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Streaming CRC32C accumulator.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][chunk[4] as usize]
                ^ TABLES[2][chunk[5] as usize]
                ^ TABLES[1][chunk[6] as usize]
                ^ TABLES[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Reference byte-at-a-time update, kept for differential tests and the
/// `bench` crate's micro-benchmark against the slice-by-8 path.
#[doc(hidden)]
pub fn crc32c_bitwise_reference(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut c = Crc32c::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32c(&data));
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference() {
        // Unaligned lengths exercise both the 8-byte lanes and the tail.
        let data: Vec<u8> =
            (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 255, 1024, 4093] {
            assert_eq!(crc32c(&data[..len]), crc32c_bitwise_reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = vec![0xABu8; 4096];
        let base = crc32c(&data);
        for pos in [0usize, 1, 2048, 4095] {
            let mut flipped = data.clone();
            flipped[pos] ^= 0x01;
            assert_ne!(crc32c(&flipped), base, "flip at {pos} undetected");
        }
    }
}
