//! CRC32C (Castagnoli) — the container's end-to-end data checksum.
//!
//! Software table-driven implementation (the workspace is offline, so no
//! hardware-CRC crate): the 256-entry table for the reflected polynomial
//! `0x82F63B78` is built at compile time. CRC32C is what real storage
//! stacks (iSCSI, ext4 metadata, Btrfs, RocksDB) use for the same job,
//! and the streaming form lets the organizer fold each buffered append
//! into a running digest without re-reading what it just wrote.

const POLY: u32 = 0x82F6_3B78; // CRC-32C, reflected

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC32C accumulator.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut c = Crc32c::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32c(&data));
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = vec![0xABu8; 4096];
        let base = crc32c(&data);
        for pos in [0usize, 1, 2048, 4095] {
            let mut flipped = data.clone();
            flipped[pos] ^= 0x01;
            assert_ne!(crc32c(&flipped), base, "flip at {pos} undetected");
        }
    }
}
