//! The data organizer (paper Fig. 6): one-time, topic-conscious bag
//! re-organization.
//!
//! `rosbag`-recorded bags interleave every topic's messages in arrival
//! order. During *duplication* (copying a bag onto a storage node) the
//! organizer scans the bag exactly once and scatters each message to its
//! topic's files in the container:
//!
//! 1. BORA intercepts the copy and reads the bag's connection records at
//!    once to learn the topic set.
//! 2. A **scanner** (the calling thread) walks the chunks sequentially,
//!    parsing message records.
//! 3. Messages are handed to a pool of **distributor threads** over
//!    bounded channels, sharded by connection so each topic is owned by
//!    exactly one thread (preserving per-topic chronology).
//! 4. Each distributor appends payloads to its topics' `data` files,
//!    accumulates the fine-grain index, and on completion writes the
//!    `index` and `tindex` (coarse time index) files.
//!
//! The virtual-clock accounting mirrors the paper's observation that the
//! organizer is a *one-time* cost (Fig. 9): the caller is charged the scan
//! time plus the slowest distributor (distributors contend with each other
//! for the device).

use std::collections::HashMap;

use crossbeam::channel;
use ros_msgs::Time;
use rosbag::record::{read_record, BagHeader, ChunkInfoRecord, ConnectionRecord, Op, MAGIC};
use rosbag::BagReader;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::block::{BlockParams, BlockWriter};
use crate::checksum::{crc32c, Crc32c};
use crate::error::{BoraError, BoraResult};
use crate::layout::{
    encode_topic, manifest_path, meta_path, staging_path, TopicPaths, BLOCKS_FILE, DATA_FILE,
    INDEX_FILE, META_FILE, TINDEX_FILE,
};
use crate::manifest::{Manifest, ManifestEntry};
use crate::meta::{ContainerMeta, TopicMeta};
use crate::time_index::{TimeIndex, DEFAULT_WINDOW_NS};
use crate::topic_index::{encode_entries, TopicIndexEntry};

/// Tuning knobs for the organizer.
#[derive(Debug, Clone, Copy)]
pub struct OrganizerOptions {
    /// Distributor thread count ("determined by system specs", §III.B).
    pub distributor_threads: usize,
    /// Coarse time-index window width.
    pub window_ns: u64,
    /// Bounded channel capacity between scanner and each distributor.
    pub channel_capacity: usize,
    /// Per-topic write-buffer size: payloads are batched into appends of
    /// this size so the one-time capture stays within the paper's
    /// 10-51% overhead band instead of paying a device op per message.
    pub write_buffer: usize,
    /// Block-frame every topic's `data` file (delta-timed `blocks` map +
    /// optional per-block LZSS — see [`crate::block`]). `None` writes
    /// the classic v1 layout byte-for-byte.
    pub block: Option<BlockParams>,
}

impl Default for OrganizerOptions {
    fn default() -> Self {
        OrganizerOptions {
            distributor_threads: 4,
            window_ns: DEFAULT_WINDOW_NS,
            channel_capacity: 256,
            write_buffer: 1024 * 1024,
            block: None,
        }
    }
}

/// What a duplication did, and what it cost.
#[derive(Debug, Clone)]
pub struct OrganizeReport {
    pub topics: usize,
    pub messages: u64,
    pub payload_bytes: u64,
    /// Virtual time spent scanning the source bag.
    pub scan_ns: u64,
    /// Virtual time of the slowest distributor thread.
    pub distribute_ns: u64,
}

struct DistributorResult {
    ctx: IoCtx,
    /// conn_id → (entries, payload bytes).
    per_conn: HashMap<u32, (Vec<TopicIndexEntry>, u64)>,
    /// Commit records (root-relative path, length, CRC32C) for every file
    /// this distributor wrote, accumulated as a streaming digest so
    /// nothing is re-read to build the MANIFEST.
    files: Vec<ManifestEntry>,
}

/// Lightweight metadata-only bag open: bag header + index section
/// (connections and chunk infos), *without* the per-chunk index walk the
/// baseline open performs. This is how the organizer "reads all connection
/// info records at once" (§III.C).
fn read_bag_metadata<S: Storage>(
    storage: &S,
    path: &str,
    ctx: &mut IoCtx,
) -> BoraResult<(Vec<ConnectionRecord>, Vec<ChunkInfoRecord>, u64)> {
    let file_len = storage.len(path, ctx)?;
    let head = storage.read_at(path, 0, MAGIC.len() + 4096, ctx)?;
    if !head.starts_with(MAGIC) {
        return Err(BoraError::Bag(rosbag::BagError::BadMagic));
    }
    let mut cur: &[u8] = &head[MAGIC.len()..];
    let (hdr, _) = read_record(&mut cur)?;
    ctx.charge_ns(cpu::RECORD_HEADER_NS);
    let bag_header = BagHeader::from_header(&hdr)?;
    if bag_header.index_pos == 0 || bag_header.index_pos > file_len {
        return Err(BoraError::Corrupt("source bag is unindexed".into()));
    }
    let section = storage.read_at(
        path,
        bag_header.index_pos,
        (file_len - bag_header.index_pos) as usize,
        ctx,
    )?;
    let mut cur: &[u8] = &section;
    let mut conns = Vec::new();
    let mut infos = Vec::new();
    while !cur.is_empty() {
        let (h, data) = read_record(&mut cur)?;
        ctx.charge_ns(cpu::RECORD_HEADER_NS);
        match h.op {
            Op::Connection => conns.push(ConnectionRecord::decode(&h, data)?),
            Op::ChunkInfo => infos.push(ChunkInfoRecord::decode(&h, data)?),
            other => {
                return Err(BoraError::Corrupt(format!("unexpected {other:?} in index section")))
            }
        }
    }
    Ok((conns, infos, file_len))
}

/// Duplicate `src_path` (an ordinary bag on `src`) into a BORA container
/// at `dst_root` on `dst`. Returns a report; charges `ctx` with the
/// operation's virtual makespan.
pub fn duplicate<SS: Storage, DS: Storage>(
    src: &SS,
    src_path: &str,
    dst: &DS,
    dst_root: &str,
    opts: &OrganizerOptions,
    ctx: &mut IoCtx,
) -> BoraResult<OrganizeReport> {
    let sp = bora_obs::span("bora.organize");
    let virt0 = ctx.elapsed_ns();
    let n_threads = opts.distributor_threads.max(1);

    // Phase 0 (scanner clock): connection info, all at once.
    let mut scan_ctx = IoCtx::with_concurrency(ctx.concurrency);
    let (conns, mut chunk_infos, src_len) = read_bag_metadata(src, src_path, &mut scan_ctx)?;
    chunk_infos.sort_by_key(|c| c.chunk_pos);

    // Crash-atomic commit protocol: the whole container is built under a
    // staging sibling, `<root>.staging`, and becomes visible only through
    // the final rename. A crash at any earlier point leaves staging
    // debris (which a later attempt or `fsck` rolls back) and no
    // `<root>` at all — `open` can never see a half-built container.
    if dst.exists(dst_root, ctx) {
        return Err(BoraError::Fs(simfs::FsError::AlreadyExists(dst_root.to_owned())));
    }
    let stage = staging_path(dst_root);
    if dst.exists(&stage, ctx) {
        dst.remove_dir_all(&stage, ctx)?;
    }
    dst.mkdir_all(&stage, ctx)?;
    let topic_paths: HashMap<u32, TopicPaths> =
        conns.iter().map(|c| (c.conn_id, TopicPaths::new(&stage, &c.topic))).collect();
    let topic_dirs: HashMap<u32, String> =
        conns.iter().map(|c| (c.conn_id, encode_topic(&c.topic))).collect();
    for p in topic_paths.values() {
        dst.mkdir_all(&p.dir, ctx)?;
    }

    // Phase 1+2: scanner thread parses chunks and shards messages to
    // distributors; distributors append to topic files and build indices.
    let mut senders: Vec<channel::Sender<(u32, Time, Vec<u8>)>> = Vec::with_capacity(n_threads);
    let mut receivers = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        let (tx, rx) = channel::bounded(opts.channel_capacity);
        senders.push(tx);
        receivers.push(rx);
    }

    let shard_conns: Vec<Vec<u32>> = {
        let mut shards = vec![Vec::new(); n_threads];
        for c in &conns {
            shards[c.conn_id as usize % n_threads].push(c.conn_id);
        }
        shards
    };

    let (dist_results, scan_ctx) = crossbeam::thread::scope(|scope| -> BoraResult<_> {
        let topic_paths = &topic_paths;
        let topic_dirs = &topic_dirs;
        let mut handles = Vec::with_capacity(n_threads);
        for (shard, rx) in receivers.into_iter().enumerate() {
            let my_conns = shard_conns[shard].clone();
            handles.push(scope.spawn(move |_| -> BoraResult<DistributorResult> {
                // Each distributor's clock runs uncontended; the caller
                // serializes their device time below (one device services
                // the total byte volume no matter how many threads feed it).
                let mut dctx = IoCtx::with_concurrency(1);
                let mut per_conn: HashMap<u32, (Vec<TopicIndexEntry>, u64)> =
                    my_conns.iter().map(|&c| (c, (Vec::new(), 0))).collect();
                // Per-topic write buffers: batch payloads into large
                // appends (offsets are assigned from the running length).
                let mut buffers: HashMap<u32, Vec<u8>> =
                    my_conns.iter().map(|&c| (c, Vec::new())).collect();
                // Streaming per-data-file digest: folded in as payloads
                // are buffered, so the MANIFEST costs no extra reads.
                let mut crcs: HashMap<u32, Crc32c> =
                    my_conns.iter().map(|&c| (c, Crc32c::new())).collect();
                // Block-framed mode: a BlockWriter per topic turns the
                // logical payload stream into compressed frames; index
                // offsets stay logical either way.
                let mut blockw: HashMap<u32, BlockWriter> = match opts.block {
                    Some(bp) => my_conns.iter().map(|&c| (c, BlockWriter::new(bp))).collect(),
                    None => HashMap::new(),
                };
                for (conn_id, time, payload) in rx.iter() {
                    let slot = per_conn.get_mut(&conn_id).expect("sharded conn");
                    slot.0.push(TopicIndexEntry {
                        time,
                        offset: slot.1,
                        len: payload.len() as u32,
                    });
                    slot.1 += payload.len() as u64;
                    dctx.charge_ns(cpu::INDEX_ENTRY_NS);
                    if opts.block.is_some() {
                        let w = blockw.get_mut(&conn_id).expect("sharded conn");
                        w.push(time, &payload, &mut dctx);
                        if w.pending_output() >= opts.write_buffer {
                            let frames = w.take_output();
                            dst.append(&topic_paths[&conn_id].data, &frames, &mut dctx)?;
                        }
                        continue;
                    }
                    crcs.get_mut(&conn_id).expect("sharded conn").update(&payload);
                    let buf = buffers.get_mut(&conn_id).expect("sharded conn");
                    buf.extend_from_slice(&payload);
                    if buf.len() >= opts.write_buffer {
                        dst.append(&topic_paths[&conn_id].data, buf, &mut dctx)?;
                        buf.clear();
                    }
                }
                // Channel closed: flush remainders, persist indices.
                // conn → (physical data len, physical data crc, map bytes)
                let mut block_files: HashMap<u32, (u64, u32, Vec<u8>)> = HashMap::new();
                if opts.block.is_some() {
                    for &conn_id in &my_conns {
                        let w = blockw.remove(&conn_id).expect("sharded conn");
                        let (tail, map, phys_len, phys_crc) = w.finish(&mut dctx);
                        dst.append(&topic_paths[&conn_id].data, &tail, &mut dctx)?;
                        let map_bytes = map.encode();
                        dst.append(&topic_paths[&conn_id].blocks, &map_bytes, &mut dctx)?;
                        block_files.insert(conn_id, (phys_len, phys_crc, map_bytes));
                    }
                } else {
                    for (&conn_id, buf) in &buffers {
                        if !buf.is_empty() {
                            dst.append(&topic_paths[&conn_id].data, buf, &mut dctx)?;
                        }
                        // Topics with zero messages still need their files.
                        if buf.is_empty() && per_conn[&conn_id].1 == 0 {
                            dst.append(&topic_paths[&conn_id].data, &[], &mut dctx)?;
                        }
                    }
                }
                let mut files = Vec::with_capacity(my_conns.len() * 4);
                for (&conn_id, (entries, bytes)) in &per_conn {
                    let paths = &topic_paths[&conn_id];
                    let dir = &topic_dirs[&conn_id];
                    let index_bytes = encode_entries(entries);
                    dst.append(&paths.index, &index_bytes, &mut dctx)?;
                    let tindex = TimeIndex::build(entries, opts.window_ns);
                    let tindex_bytes = tindex.encode();
                    dst.append(&paths.tindex, &tindex_bytes, &mut dctx)?;
                    match block_files.get(&conn_id) {
                        Some((phys_len, phys_crc, map_bytes)) => {
                            files.push(ManifestEntry {
                                path: format!("{dir}/{DATA_FILE}"),
                                len: *phys_len,
                                crc32c: *phys_crc,
                            });
                            files.push(ManifestEntry {
                                path: format!("{dir}/{BLOCKS_FILE}"),
                                len: map_bytes.len() as u64,
                                crc32c: crc32c(map_bytes),
                            });
                        }
                        None => files.push(ManifestEntry {
                            path: format!("{dir}/{DATA_FILE}"),
                            len: *bytes,
                            crc32c: crcs[&conn_id].finish(),
                        }),
                    }
                    files.push(ManifestEntry {
                        path: format!("{dir}/{INDEX_FILE}"),
                        len: index_bytes.len() as u64,
                        crc32c: crc32c(&index_bytes),
                    });
                    files.push(ManifestEntry {
                        path: format!("{dir}/{TINDEX_FILE}"),
                        len: tindex_bytes.len() as u64,
                        crc32c: crc32c(&tindex_bytes),
                    });
                }
                Ok(DistributorResult { ctx: dctx, per_conn, files })
            }));
        }

        // Scanner: sequential chunk walk.
        let mut scan_ctx = scan_ctx;
        let mut scan_err = None;
        'scan: for (i, ci) in chunk_infos.iter().enumerate() {
            let _ = i;
            let probe = src.read_at(src_path, ci.chunk_pos, 4, &mut scan_ctx)?;
            let hlen = u32::from_le_bytes(probe[..4].try_into().unwrap()) as usize;
            let rest = src.read_at(src_path, ci.chunk_pos + 4, hlen + 4, &mut scan_ctx)?;
            let chdr = rosbag::record::RecordHeader::decode(&rest[..hlen])?;
            scan_ctx.charge_ns(cpu::RECORD_HEADER_NS);
            let ch = rosbag::record::ChunkHeader::from_header(&chdr)?;
            let dlen = u32::from_le_bytes(rest[hlen..hlen + 4].try_into().unwrap()) as usize;
            let raw =
                src.read_at(src_path, ci.chunk_pos + 4 + hlen as u64 + 4, dlen, &mut scan_ctx)?;
            let data = rosbag::compress::decode_chunk(&ch.compression, &raw, ch.size as usize)?;
            if ch.compression != "none" {
                scan_ctx.charge_ns(ch.size as u64 * cpu::DECOMPRESS_BYTE_NS);
            }
            let msgs = match BagReader::<&SS>::parse_chunk_messages(&data, &mut scan_ctx) {
                Ok(m) => m,
                Err(e) => {
                    scan_err = Some(BoraError::from(e));
                    break 'scan;
                }
            };
            for (mh, payload) in msgs {
                let shard = mh.conn_id as usize % n_threads;
                if senders[shard].send((mh.conn_id, mh.time, payload)).is_err() {
                    scan_err = Some(BoraError::Corrupt("distributor died".into()));
                    break 'scan;
                }
            }
        }
        drop(senders);

        let mut results = Vec::with_capacity(n_threads);
        for h in handles {
            results.push(h.join().expect("distributor panicked")?);
        }
        if let Some(e) = scan_err {
            return Err(e);
        }
        Ok((results, scan_ctx))
    })
    .expect("organizer scope failed")?;

    // Assemble metadata.
    let mut start_time = Time::MAX;
    let mut end_time = Time::ZERO;
    for ci in &chunk_infos {
        start_time = start_time.min(ci.start_time);
        end_time = end_time.max(ci.end_time);
    }
    let mut merged: HashMap<u32, (u64, u64)> = HashMap::new(); // conn → (count, bytes)
    for r in &dist_results {
        for (&conn, (entries, bytes)) in &r.per_conn {
            let e = merged.entry(conn).or_default();
            e.0 += entries.len() as u64;
            e.1 += bytes;
        }
    }
    let topics: Vec<TopicMeta> = conns
        .iter()
        .map(|c| {
            let (count, bytes) = merged.get(&c.conn_id).copied().unwrap_or((0, 0));
            TopicMeta {
                topic: c.topic.clone(),
                datatype: c.datatype.clone(),
                md5sum: c.md5sum.clone(),
                definition: c.definition.clone(),
                message_count: count,
                bytes,
            }
        })
        .collect();
    let messages: u64 = topics.iter().map(|t| t.message_count).sum();
    let payload_bytes: u64 = topics.iter().map(|t| t.bytes).sum();
    let meta = ContainerMeta {
        topics,
        start_time: if messages > 0 { start_time } else { Time::ZERO },
        end_time: if messages > 0 { end_time } else { Time::ZERO },
        window_ns: opts.window_ns,
        source_bag_len: src_len,
        block: opts.block,
    };
    let meta_bytes = meta.encode();
    dst.append(&meta_path(&stage), &meta_bytes, ctx)?;

    // MANIFEST goes last inside staging, then one rename commits the
    // container. Everything before the rename is invisible to `open`.
    let mut entries: Vec<ManifestEntry> =
        dist_results.iter().flat_map(|r| r.files.iter().cloned()).collect();
    entries.push(ManifestEntry {
        path: META_FILE.to_owned(),
        len: meta_bytes.len() as u64,
        crc32c: crc32c(&meta_bytes),
    });
    let manifest = Manifest::new(entries)?;
    manifest.store(dst, &stage, ctx)?;
    dst.flush(&manifest_path(&stage), ctx)?;
    dst.rename(&stage, dst_root, ctx)?;

    // Charge the caller: scan + the distributors' *summed* device time.
    // The destination is one device (or one striped array): threads
    // overlap CPU but their writes serialize at the device, so the
    // aggregate service time is the sum — this is what keeps Fig. 9's
    // capture overhead in the paper's modest band instead of charging
    // phantom contention to an imbalanced shard.
    let distribute_ns = dist_results.iter().map(|r| r.ctx.elapsed_ns()).sum::<u64>();
    ctx.absorb_sequential(&scan_ctx);
    ctx.charge_ns(distribute_ns);
    for r in &dist_results {
        ctx.stats.writes += r.ctx.stats.writes;
        ctx.stats.bytes_written += r.ctx.stats.bytes_written;
    }

    bora_obs::counter("bora.organize.count").inc();
    sp.end_virt(ctx.elapsed_ns() - virt0);
    Ok(OrganizeReport {
        topics: conns.len(),
        messages,
        payload_bytes,
        scan_ns: scan_ctx.elapsed_ns(),
        distribute_ns,
    })
}

/// Copy an existing BORA container to another BORA-aware destination
/// ("BORA to BORA", Fig. 9): a plain tree copy, no reorganization.
pub fn copy_container<SS: Storage, DS: Storage>(
    src: &SS,
    src_root: &str,
    dst: &DS,
    dst_root: &str,
    ctx: &mut IoCtx,
) -> BoraResult<u64> {
    let mut copied = 0u64;
    dst.mkdir_all(dst_root, ctx)?;
    let mut stack = vec![(src_root.to_owned(), dst_root.to_owned())];
    while let Some((s, d)) = stack.pop() {
        for e in src.read_dir(&s, ctx)? {
            let sp = format!("{s}/{}", e.name);
            let dp = format!("{d}/{}", e.name);
            match e.kind {
                simfs::EntryKind::Dir => {
                    dst.mkdir_all(&dp, ctx)?;
                    stack.push((sp, dp));
                }
                simfs::EntryKind::File => {
                    let bytes = src.read_all(&sp, ctx)?;
                    copied += bytes.len() as u64;
                    dst.append(&dp, &bytes, ctx)?;
                }
            }
        }
    }
    Ok(copied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::sensor_msgs::{CameraInfo, Imu};
    use ros_msgs::RosMessage;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    fn build_bag(fs: &MemStorage, path: &str) -> (u64, u64) {
        let mut ctx = IoCtx::new();
        let mut w = BagWriter::create(
            fs,
            path,
            BagWriterOptions { chunk_size: 4096, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        let (mut n_imu, mut n_cam) = (0, 0);
        for tick in 0..200u32 {
            let t = Time::from_nanos(tick as u64 * 100_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick;
            imu.header.stamp = t;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
            n_imu += 1;
            if tick % 4 == 0 {
                let mut cam = CameraInfo::default();
                cam.header.seq = tick;
                w.write_ros_message("/camera/rgb/camera_info", t, &cam, &mut ctx).unwrap();
                n_cam += 1;
            }
        }
        w.close(&mut ctx).unwrap();
        (n_imu, n_cam)
    }

    #[test]
    fn duplicate_builds_container() {
        let fs = MemStorage::new();
        let (n_imu, n_cam) = build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        let report =
            duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        assert_eq!(report.topics, 2);
        assert_eq!(report.messages, n_imu + n_cam);

        // Container files exist and are consistent.
        let mut c = IoCtx::new();
        let meta = ContainerMeta::decode(&fs.read_all("/c/.bora", &mut c).unwrap()).unwrap();
        assert_eq!(meta.message_count(), n_imu + n_cam);
        let imu_meta = meta.topic("/imu").unwrap();
        assert_eq!(imu_meta.message_count, n_imu);
        assert_eq!(imu_meta.datatype, "sensor_msgs/Imu");

        let idx = crate::topic_index::decode_entries(&fs.read_all("/c/imu/index", &mut c).unwrap())
            .unwrap();
        assert_eq!(idx.len() as u64, n_imu);
        assert!(crate::topic_index::is_chronological(&idx));
        let data_len = fs.len("/c/imu/data", &mut c).unwrap();
        assert_eq!(idx.last().unwrap().end(), data_len);
    }

    #[test]
    fn duplicate_payloads_decode() {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        let mut c = IoCtx::new();
        let idx = crate::topic_index::decode_entries(&fs.read_all("/c/imu/index", &mut c).unwrap())
            .unwrap();
        let data = fs.read_all("/c/imu/data", &mut c).unwrap();
        let e = &idx[7];
        let imu =
            Imu::from_bytes(&data[e.offset as usize..e.end() as usize]).expect("payload decodes");
        assert_eq!(imu.header.seq, 7);
    }

    #[test]
    fn thread_counts_agree() {
        // Output must be identical regardless of distributor thread count.
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut digests = Vec::new();
        for threads in [1usize, 2, 7] {
            let mut ctx = IoCtx::new();
            let root = format!("/c{threads}");
            duplicate(
                &fs,
                "/src.bag",
                &fs,
                &root,
                &OrganizerOptions { distributor_threads: threads, ..OrganizerOptions::default() },
                &mut ctx,
            )
            .unwrap();
            let mut c = IoCtx::new();
            let data = fs.read_all(&format!("{root}/imu/data"), &mut c).unwrap();
            let index = fs.read_all(&format!("{root}/imu/index"), &mut c).unwrap();
            digests.push(ros_msgs::md5::hex_digest(&[data, index].concat()));
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn duplicate_into_existing_root_fails() {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        fs.mkdir_all("/c", &mut ctx).unwrap();
        assert!(
            duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).is_err()
        );
    }

    #[test]
    fn bora_to_bora_copy_is_byte_identical() {
        let fs = MemStorage::new();
        build_bag(&fs, "/src.bag");
        let mut ctx = IoCtx::new();
        duplicate(&fs, "/src.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).unwrap();
        copy_container(&fs, "/c", &fs, "/c2", &mut ctx).unwrap();
        let mut c = IoCtx::new();
        for f in ["/.bora", "/imu/data", "/imu/index", "/imu/tindex"] {
            assert_eq!(
                fs.read_all(&format!("/c{f}"), &mut c).unwrap(),
                fs.read_all(&format!("/c2{f}"), &mut c).unwrap(),
                "file {f} differs"
            );
        }
    }

    #[test]
    fn garbage_source_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/junk.bag", &vec![0u8; 8192], &mut ctx).unwrap();
        assert!(
            duplicate(&fs, "/junk.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx).is_err()
        );
    }
}
