//! Compressed columnar topic blocks.
//!
//! A block-framed topic stores its `data` file as a sequence of
//! self-describing frames, each covering a fixed-size *logical* range of
//! the topic's concatenated payload bytes (`block_size`, tail block
//! shorter). Message index entries keep addressing **logical** offsets —
//! the fine index, the coarse time index, and the ingest high-water reads
//! are untouched by the physical framing.
//!
//! ```text
//! data:   [frame 0][frame 1]...[frame n-1]
//! frame:  codec u8 | unc_len u32 | phys_len u32 | crc32c u32 | payload
//! blocks: magic | version | codec | block_size | logical_len | count
//!         then per block: varint(frame_len) varint(first_time delta)
//! ```
//!
//! * The frame CRC covers the **stored** payload bytes, so a torn or
//!   bit-flipped block surfaces as a typed
//!   [`BoraError::ChecksumMismatch`] *before* any decompression runs.
//! * The per-frame codec tag lets an incompressible block fall back to
//!   raw storage even inside an LZSS container (LZSS can expand
//!   adversarial input; the fallback bounds every frame at
//!   `unc_len + FRAME_HEADER_LEN`).
//! * The `blocks` map file carries the physical frame lengths (prefix
//!   sums give frame offsets) plus each block's first message timestamp,
//!   delta-encoded as varints — random logical access costs one map
//!   lookup, no frame scan.
//!
//! Logical block `i` covers `[i*block_size, (i+1)*block_size)`, which is
//! exactly one buffer-pool page ([`crate::bufpool`]): the cursor fill
//! path decompresses a frame straight into the pool page that serves it.

use ros_msgs::Time;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::checksum::crc32c;
use crate::error::{BoraError, BoraResult};
use crate::layout::TopicPaths;

/// Magic of the per-topic `blocks` map file ("BLKS").
const BLOCKS_MAGIC: u32 = 0x424C_4B53;
/// Version of the `blocks` map format.
const BLOCKS_VERSION: u32 = 1;
/// Bytes of a frame header: codec + unc_len + phys_len + crc32c.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 4 + 4;
/// Default logical bytes per block (= one buffer-pool page).
pub const DEFAULT_BLOCK_SIZE: u32 = 64 * 1024;

/// Payload codec of a block-framed topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockCodec {
    /// Frames but no compression: framing alone buys per-block CRCs and
    /// pool-page-aligned reads.
    #[default]
    None,
    /// Per-block LZSS (the same codec rosbag chunks use).
    Lzss,
}

impl BlockCodec {
    pub fn id(self) -> u8 {
        match self {
            BlockCodec::None => 0,
            BlockCodec::Lzss => 1,
        }
    }

    pub fn from_id(id: u8) -> BoraResult<Self> {
        match id {
            0 => Ok(BlockCodec::None),
            1 => Ok(BlockCodec::Lzss),
            other => Err(BoraError::Corrupt(format!("unknown block codec id {other}"))),
        }
    }
}

impl std::fmt::Display for BlockCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockCodec::None => write!(f, "none"),
            BlockCodec::Lzss => write!(f, "lzss"),
        }
    }
}

/// Container-level block parameters (recorded in `.bora` metadata v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParams {
    pub codec: BlockCodec,
    /// Logical bytes per block; also the buffer-pool page size the
    /// container's pages decode into.
    pub block_size: u32,
}

impl Default for BlockParams {
    fn default() -> Self {
        BlockParams { codec: BlockCodec::Lzss, block_size: DEFAULT_BLOCK_SIZE }
    }
}

/// One block's entry in the `blocks` map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Physical offset of the frame in the `data` file.
    pub phys_off: u64,
    /// Physical frame length (header + stored payload).
    pub frame_len: u32,
    /// Timestamp of the message owning the block's first logical byte.
    pub first_time: Time,
}

/// Decoded per-topic `blocks` map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMap {
    pub codec: BlockCodec,
    pub block_size: u32,
    /// Total logical (uncompressed) bytes — what the fine index tiles.
    pub logical_len: u64,
    pub entries: Vec<BlockEntry>,
}

impl BlockMap {
    /// Logical `[start, len)` range block `i` covers.
    pub fn logical_range(&self, i: usize) -> (u64, usize) {
        let start = i as u64 * self.block_size as u64;
        let len = (self.logical_len - start).min(self.block_size as u64) as usize;
        (start, len)
    }

    /// Block index covering logical offset `off`.
    pub fn block_of(&self, off: u64) -> usize {
        (off / self.block_size as u64) as usize
    }

    /// Total physical bytes of the framed `data` file.
    pub fn phys_len(&self) -> u64 {
        self.entries.iter().map(|e| e.frame_len as u64).sum()
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.entries.len() * 4);
        out.extend_from_slice(&BLOCKS_MAGIC.to_le_bytes());
        out.extend_from_slice(&BLOCKS_VERSION.to_le_bytes());
        out.push(self.codec.id());
        out.extend_from_slice(&self.block_size.to_le_bytes());
        out.extend_from_slice(&self.logical_len.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        let mut prev_time = 0u64;
        for e in &self.entries {
            put_varint(&mut out, e.frame_len as u64);
            let t = e.first_time.as_nanos();
            put_varint(&mut out, t.saturating_sub(prev_time));
            prev_time = t;
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.u32()? != BLOCKS_MAGIC {
            return Err(BoraError::Corrupt("blocks map magic mismatch".into()));
        }
        let ver = cur.u32()?;
        if ver != BLOCKS_VERSION {
            return Err(BoraError::Corrupt(format!("unsupported blocks map version {ver}")));
        }
        let codec = BlockCodec::from_id(cur.u8()?)?;
        let block_size = cur.u32()?;
        if block_size == 0 {
            return Err(BoraError::Corrupt("blocks map has zero block size".into()));
        }
        let logical_len = cur.u64()?;
        let count = cur.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        let (mut phys_off, mut prev_time) = (0u64, 0u64);
        for _ in 0..count {
            let frame_len = cur.varint()?;
            let delta = cur.varint()?;
            prev_time += delta;
            entries.push(BlockEntry {
                phys_off,
                frame_len: frame_len as u32,
                first_time: Time::from_nanos(prev_time),
            });
            phys_off += frame_len;
        }
        if cur.pos != bytes.len() {
            return Err(BoraError::Corrupt("trailing bytes in blocks map".into()));
        }
        let expect_blocks = logical_len.div_ceil(block_size as u64) as usize;
        if expect_blocks != entries.len() {
            return Err(BoraError::Corrupt(format!(
                "blocks map lists {} blocks for {} logical bytes (expected {})",
                entries.len(),
                logical_len,
                expect_blocks
            )));
        }
        Ok(BlockMap { codec, block_size, logical_len, entries })
    }
}

/// Encode one frame: compress (with raw fallback when compression does
/// not pay), CRC the stored bytes, prepend the header.
pub fn encode_frame(codec: BlockCodec, logical: &[u8], ctx: &mut IoCtx) -> Vec<u8> {
    let (stored_codec, stored) = match codec {
        BlockCodec::None => (BlockCodec::None, std::borrow::Cow::Borrowed(logical)),
        BlockCodec::Lzss => {
            ctx.charge_ns(logical.len() as u64 * cpu::COMPRESS_BYTE_NS);
            let packed = rosbag::compress::compress(logical);
            if packed.len() < logical.len() {
                (BlockCodec::Lzss, std::borrow::Cow::Owned(packed))
            } else {
                (BlockCodec::None, std::borrow::Cow::Borrowed(logical))
            }
        }
    };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + stored.len());
    out.push(stored_codec.id());
    out.extend_from_slice(&(logical.len() as u32).to_le_bytes());
    out.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&stored).to_le_bytes());
    out.extend_from_slice(&stored);
    out
}

/// Decode one frame starting at `frame[0]`, verifying the stored-byte CRC
/// before any decompression. `path` labels the [`BoraError::ChecksumMismatch`]
/// (container-relative, like manifest verification failures). Returns the
/// logical bytes and the physical frame length consumed.
pub fn decode_frame(frame: &[u8], path: &str, ctx: &mut IoCtx) -> BoraResult<(Vec<u8>, usize)> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(BoraError::Corrupt(format!("{path}: truncated block frame header")));
    }
    let codec = BlockCodec::from_id(frame[0])?;
    let unc_len = u32::from_le_bytes(frame[1..5].try_into().unwrap()) as usize;
    let phys_len = u32::from_le_bytes(frame[5..9].try_into().unwrap()) as usize;
    let expected = u32::from_le_bytes(frame[9..13].try_into().unwrap());
    let total = FRAME_HEADER_LEN + phys_len;
    if frame.len() < total {
        return Err(BoraError::Corrupt(format!("{path}: truncated block frame payload")));
    }
    let stored = &frame[FRAME_HEADER_LEN..total];
    let actual = crc32c(stored);
    if actual != expected {
        bora_obs::counter("verify.checksum_fail").inc();
        return Err(BoraError::ChecksumMismatch { path: path.to_owned(), expected, actual });
    }
    let logical = match codec {
        BlockCodec::None => {
            if stored.len() != unc_len {
                return Err(BoraError::Corrupt(format!("{path}: raw block length mismatch")));
            }
            stored.to_vec()
        }
        BlockCodec::Lzss => {
            ctx.charge_ns(unc_len as u64 * cpu::DECOMPRESS_BYTE_NS);
            rosbag::compress::decompress(stored, unc_len)
                .map_err(|e| BoraError::Corrupt(format!("{path}: block decompress: {e}")))?
        }
    };
    Ok((logical, total))
}

/// Streaming writer for one topic's block-framed `data` file: payloads go
/// in logically, full frames come out physically. The organizer's
/// distributors and the ingest compactor both drive one of these per
/// topic; the caller flushes [`BlockWriter::take_output`] to storage at
/// its own write-buffer cadence.
pub struct BlockWriter {
    params: BlockParams,
    /// Pending logical bytes of the current (unfinished) block.
    buf: Vec<u8>,
    /// Timestamp owning the current block's first logical byte.
    cur_first: Option<Time>,
    /// Encoded frames not yet taken by the caller.
    out: Vec<u8>,
    entries: Vec<BlockEntry>,
    logical_len: u64,
    phys_len: u64,
    crc: crate::checksum::Crc32c,
}

impl BlockWriter {
    pub fn new(params: BlockParams) -> Self {
        BlockWriter {
            params,
            buf: Vec::with_capacity(params.block_size as usize),
            cur_first: None,
            out: Vec::new(),
            entries: Vec::new(),
            logical_len: 0,
            phys_len: 0,
            crc: crate::checksum::Crc32c::new(),
        }
    }

    /// Append one message payload; frames drain into the output buffer as
    /// blocks fill. Messages may span block boundaries.
    pub fn push(&mut self, time: Time, payload: &[u8], ctx: &mut IoCtx) {
        if self.cur_first.is_none() {
            self.cur_first = Some(time);
        }
        self.buf.extend_from_slice(payload);
        self.logical_len += payload.len() as u64;
        let bs = self.params.block_size as usize;
        let mut drained = false;
        while self.buf.len() >= bs {
            let rest = self.buf.split_off(bs);
            let full = std::mem::replace(&mut self.buf, rest);
            self.emit(&full, ctx);
            drained = true;
        }
        // Any remainder after a drain is a tail of *this* payload (the
        // pre-existing bytes were < block_size, so they all drained).
        if drained {
            self.cur_first = if self.buf.is_empty() { None } else { Some(time) };
        }
    }

    fn emit(&mut self, logical: &[u8], ctx: &mut IoCtx) {
        let frame = encode_frame(self.params.codec, logical, ctx);
        self.entries.push(BlockEntry {
            phys_off: self.phys_len,
            frame_len: frame.len() as u32,
            first_time: self.cur_first.expect("block has at least one byte"),
        });
        self.phys_len += frame.len() as u64;
        self.crc.update(&frame);
        self.out.extend_from_slice(&frame);
    }

    /// Encoded frames accumulated since the last take (drain for append).
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    pub fn pending_output(&self) -> usize {
        self.out.len()
    }

    /// Flush the final partial block and return the finished topic:
    /// remaining frame bytes, the encoded `blocks` map, and the physical
    /// (len, crc32c) the MANIFEST records for the `data` file.
    pub fn finish(mut self, ctx: &mut IoCtx) -> (Vec<u8>, BlockMap, u64, u32) {
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.emit(&tail, ctx);
        }
        let map = BlockMap {
            codec: self.params.codec,
            block_size: self.params.block_size,
            logical_len: self.logical_len,
            entries: self.entries,
        };
        (self.out, map, self.phys_len, self.crc.finish())
    }
}

/// Read a whole block-framed `data` file back to logical bytes by
/// scanning its self-describing frames (no map needed — the ingest
/// compactor uses this on old generations).
pub fn decode_frames(data: &[u8], path: &str, ctx: &mut IoCtx) -> BoraResult<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len());
    let mut pos = 0usize;
    while pos < data.len() {
        let (logical, consumed) = decode_frame(&data[pos..], path, ctx)?;
        out.extend_from_slice(&logical);
        pos += consumed;
    }
    Ok(out)
}

/// Read one topic's `data` file as **logical** bytes, whether or not the
/// topic is block-framed (presence of the `blocks` map decides).
pub fn read_logical<S: Storage>(
    storage: &S,
    paths: &TopicPaths,
    ctx: &mut IoCtx,
) -> BoraResult<Vec<u8>> {
    if storage.exists(&paths.blocks, ctx) {
        let data = storage.read_all(&paths.data, ctx)?;
        decode_frames(&data, &paths.data, ctx)
    } else {
        Ok(storage.read_all(&paths.data, ctx)?)
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> BoraResult<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(BoraError::Corrupt("truncated blocks map".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> BoraResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> BoraResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> BoraResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn varint(&mut self) -> BoraResult<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(BoraError::Corrupt("varint overruns 64 bits".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: BlockCodec, block_size: u32, payloads: &[Vec<u8>]) {
        let mut ctx = IoCtx::new();
        let mut w = BlockWriter::new(BlockParams { codec, block_size });
        let mut logical = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            w.push(Time::new(i as u32, 0), p, &mut ctx);
            logical.extend_from_slice(p);
        }
        let (frames, map, phys_len, _crc) = w.finish(&mut ctx);
        assert_eq!(phys_len, frames.len() as u64);
        assert_eq!(map.logical_len, logical.len() as u64);
        assert_eq!(map.phys_len(), phys_len);
        let decoded = decode_frames(&frames, "t/data", &mut ctx).unwrap();
        assert_eq!(decoded, logical, "codec {codec:?} bs {block_size}");
        // Map round-trips, and per-block random access agrees.
        let map2 = BlockMap::decode(&map.encode()).unwrap();
        assert_eq!(map2, map);
        for (i, e) in map.entries.iter().enumerate() {
            let (start, len) = map.logical_range(i);
            let (block, consumed) = decode_frame(
                &frames[e.phys_off as usize..(e.phys_off + e.frame_len as u64) as usize],
                "t/data",
                &mut ctx,
            )
            .unwrap();
            assert_eq!(consumed as u32, e.frame_len);
            assert_eq!(block.as_slice(), &logical[start as usize..start as usize + len]);
        }
    }

    #[test]
    fn empty_topic() {
        roundtrip(BlockCodec::Lzss, 64, &[]);
    }

    #[test]
    fn messages_spanning_blocks() {
        let payloads: Vec<Vec<u8>> = (0u8..40).map(|i| vec![i; 37]).collect();
        for codec in [BlockCodec::None, BlockCodec::Lzss] {
            for bs in [16u32, 64, 1024] {
                roundtrip(codec, bs, &payloads);
            }
        }
    }

    #[test]
    fn incompressible_block_falls_back_to_raw() {
        // PRNG-ish bytes LZSS cannot shrink: the frame must store them
        // raw (codec tag 0) and stay within header + unc_len.
        let mut x = 0x1234_5678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        let mut ctx = IoCtx::new();
        let frame = encode_frame(BlockCodec::Lzss, &data, &mut ctx);
        assert_eq!(frame[0], BlockCodec::None.id());
        assert_eq!(frame.len(), FRAME_HEADER_LEN + data.len());
        let (back, _) = decode_frame(&frame, "t/data", &mut ctx).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn corrupt_frame_is_typed_checksum_mismatch() {
        let data = vec![7u8; 500];
        let mut ctx = IoCtx::new();
        let mut frame = encode_frame(BlockCodec::Lzss, &data, &mut ctx);
        let mid = FRAME_HEADER_LEN + (frame.len() - FRAME_HEADER_LEN) / 2;
        frame[mid] ^= 0x20;
        match decode_frame(&frame, "imu/data", &mut ctx) {
            Err(BoraError::ChecksumMismatch { path, .. }) => assert_eq!(path, "imu/data"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_corrupt_not_panic() {
        let data = vec![3u8; 500];
        let mut ctx = IoCtx::new();
        let frame = encode_frame(BlockCodec::Lzss, &data, &mut ctx);
        for cut in [0, 5, FRAME_HEADER_LEN, frame.len() - 1] {
            assert!(decode_frame(&frame[..cut], "t/data", &mut ctx).is_err());
        }
    }

    #[test]
    fn first_times_follow_spanning_messages() {
        // block_size 10, payload 8 bytes per message: block 1 starts
        // mid-message-1, so its first_time is message 1's stamp.
        let mut ctx = IoCtx::new();
        let mut w = BlockWriter::new(BlockParams { codec: BlockCodec::None, block_size: 10 });
        for i in 0..4u32 {
            w.push(Time::new(i, 0), &[i as u8; 8], &mut ctx);
        }
        let (_, map, ..) = w.finish(&mut ctx);
        // 32 logical bytes → blocks at 0..10 (msg0), 10..20 (msg1),
        // 20..30 (msg2), 30..32 (msg3).
        let firsts: Vec<u32> = map.entries.iter().map(|e| e.first_time.sec).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3]);
        assert_eq!(map.logical_len, 32);
    }

    #[test]
    fn map_rejects_corruption() {
        let map = BlockMap {
            codec: BlockCodec::Lzss,
            block_size: 64,
            logical_len: 100,
            entries: vec![
                BlockEntry { phys_off: 0, frame_len: 30, first_time: Time::new(1, 0) },
                BlockEntry { phys_off: 30, frame_len: 20, first_time: Time::new(2, 0) },
            ],
        };
        let good = map.encode();
        assert_eq!(BlockMap::decode(&good).unwrap(), map);
        let mut bad = good.clone();
        bad[0] ^= 1;
        assert!(BlockMap::decode(&bad).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(BlockMap::decode(&trailing).is_err());
        assert!(BlockMap::decode(&good[..good.len() - 1]).is_err());
    }
}
