//! Container path layout and topic-name sanitization.
//!
//! A topic name like `/camera/rgb/image_color` must become a single
//! directory component. The encoding replaces `/` with `%` and escapes a
//! literal `%` as `%%`, which is bijective, so the tag manager can recover
//! the exact topic name from a directory listing alone — no metadata read
//! required on open, matching the paper's "BORA quickly parses the
//! sub-directories of a bag on the back-end" description.

/// Name of the container metadata file in the container root.
pub const META_FILE: &str = ".bora";
/// Name of the commit manifest file in the container root.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Suffix of the staging directory a duplication builds under before the
/// atomic commit rename. `<root>.staging` sits *next to* the final root,
/// so an uncommitted attempt never shadows or pollutes a real container.
pub const STAGING_SUFFIX: &str = ".staging";
/// Per-topic file holding concatenated message payloads.
pub const DATA_FILE: &str = "data";
/// Per-topic fine-grain index file: one entry per message.
pub const INDEX_FILE: &str = "index";
/// Per-topic coarse-grain time index file.
pub const TINDEX_FILE: &str = "tindex";
/// Per-topic block map file (present only when the topic's `data` file
/// is block-framed — see [`crate::block`]).
pub const BLOCKS_FILE: &str = "blocks";

/// Encode a topic name as a directory component.
///
/// Expects a normalized ROS topic name (slash-separated, non-empty
/// components); the encoding is bijective over that domain because `%`
/// is escaped as `%%`.
pub fn encode_topic(topic: &str) -> String {
    let mut out = String::with_capacity(topic.len());
    for ch in topic.trim_start_matches('/').chars() {
        match ch {
            '/' => out.push('%'),
            '%' => out.push_str("%%"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push('%'); // topic "/" (degenerate but representable)
    }
    out
}

/// Decode a directory component back into the topic name.
pub fn decode_topic(dir: &str) -> String {
    let mut out = String::with_capacity(dir.len() + 1);
    out.push('/');
    let mut chars = dir.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '%' {
            if chars.peek() == Some(&'%') {
                chars.next();
                out.push('%');
            } else {
                out.push('/');
            }
        } else {
            out.push(ch);
        }
    }
    if out == "//" {
        out.truncate(1);
    }
    out
}

/// Paths of one topic's files inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicPaths {
    pub dir: String,
    pub data: String,
    pub index: String,
    pub tindex: String,
    pub blocks: String,
}

impl TopicPaths {
    /// Compute the paths for `topic` under `container_root`.
    pub fn new(container_root: &str, topic: &str) -> Self {
        let dir = format!("{}/{}", container_root.trim_end_matches('/'), encode_topic(topic));
        TopicPaths {
            data: format!("{dir}/{DATA_FILE}"),
            index: format!("{dir}/{INDEX_FILE}"),
            tindex: format!("{dir}/{TINDEX_FILE}"),
            blocks: format!("{dir}/{BLOCKS_FILE}"),
            dir,
        }
    }

    /// Reconstruct from an already-listed directory component.
    pub fn from_dir(container_root: &str, dir_name: &str) -> Self {
        let dir = format!("{}/{}", container_root.trim_end_matches('/'), dir_name);
        TopicPaths {
            data: format!("{dir}/{DATA_FILE}"),
            index: format!("{dir}/{INDEX_FILE}"),
            tindex: format!("{dir}/{TINDEX_FILE}"),
            blocks: format!("{dir}/{BLOCKS_FILE}"),
            dir,
        }
    }
}

/// Path of the metadata file for a container root.
pub fn meta_path(container_root: &str) -> String {
    format!("{}/{META_FILE}", container_root.trim_end_matches('/'))
}

/// Path of the commit manifest for a container root.
pub fn manifest_path(container_root: &str) -> String {
    format!("{}/{MANIFEST_FILE}", container_root.trim_end_matches('/'))
}

/// Staging directory a duplication of `container_root` builds under.
pub fn staging_path(container_root: &str) -> String {
    format!("{}{STAGING_SUFFIX}", container_root.trim_end_matches('/'))
}

/// A container file's path relative to its root (what MANIFEST entries
/// are keyed by), or `None` if `path` is not under `root`.
pub fn rel_path<'a>(root: &str, path: &'a str) -> Option<&'a str> {
    let root = root.trim_end_matches('/');
    path.strip_prefix(root).and_then(|r| r.strip_prefix('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_replaces_slashes() {
        assert_eq!(encode_topic("/camera/rgb/image_color"), "camera%rgb%image_color");
        assert_eq!(encode_topic("/imu"), "imu");
    }

    #[test]
    fn round_trip_simple() {
        for t in ["/imu", "/tf", "/camera/depth/image", "/a/b/c/d"] {
            assert_eq!(decode_topic(&encode_topic(t)), t);
        }
    }

    #[test]
    fn round_trip_with_percent() {
        for t in ["/weird%topic", "/a%b/c", "/%%", "/%"] {
            assert_eq!(decode_topic(&encode_topic(t)), t, "topic {t:?}");
        }
    }

    #[test]
    fn distinct_topics_distinct_dirs() {
        // '%' escaping must keep "/a/b" and "/a%b" apart.
        assert_ne!(encode_topic("/a/b"), encode_topic("/a%b"));
    }

    #[test]
    fn topic_paths_layout() {
        let p = TopicPaths::new("/mnt/bags/bag1", "/camera/rgb/camera_info");
        assert_eq!(p.dir, "/mnt/bags/bag1/camera%rgb%camera_info");
        assert_eq!(p.data, "/mnt/bags/bag1/camera%rgb%camera_info/data");
        assert_eq!(p.index, "/mnt/bags/bag1/camera%rgb%camera_info/index");
        assert_eq!(p.tindex, "/mnt/bags/bag1/camera%rgb%camera_info/tindex");
        assert_eq!(p.blocks, "/mnt/bags/bag1/camera%rgb%camera_info/blocks");
    }

    #[test]
    fn meta_path_join() {
        assert_eq!(meta_path("/mnt/bags/bag1"), "/mnt/bags/bag1/.bora");
        assert_eq!(meta_path("/mnt/bags/bag1/"), "/mnt/bags/bag1/.bora");
    }

    #[test]
    fn staging_and_manifest_paths() {
        assert_eq!(staging_path("/mnt/bags/bag1"), "/mnt/bags/bag1.staging");
        assert_eq!(manifest_path("/mnt/bags/bag1"), "/mnt/bags/bag1/MANIFEST");
    }

    #[test]
    fn rel_path_strips_root() {
        assert_eq!(rel_path("/c", "/c/imu/data"), Some("imu/data"));
        assert_eq!(rel_path("/c/", "/c/.bora"), Some(".bora"));
        assert_eq!(rel_path("/c", "/other/imu/data"), None);
    }
}
