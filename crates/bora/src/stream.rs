//! Streaming, zero-copy, parallel query pipeline — the primary read path.
//!
//! The paper's Fig. 7 read is "one contiguous read per topic + a k-way
//! merge". The materializing implementation of that idea pays three taxes
//! the paper never models: the whole result set resident at once, a
//! per-message `String` + payload allocation, and a *linear scan over all
//! k cursors per output message*. [`MessageStream`] removes all three:
//!
//! * **Bounded cursors** — each topic is read through a cursor that
//!   fetches the `data` file in runs of consecutive index entries capped
//!   by a readahead window ([`StreamOptions::readahead_bytes`]), so peak
//!   resident bytes are ~`k × readahead`, not the result size.
//! * **Heap merge** — a binary heap over `(time, lane)` keys picks the
//!   next message in O(log k); `lane` is the topic's position in the
//!   caller's request, which reproduces the old merge's (and the baseline
//!   reader's) first-requested-wins order for simultaneous timestamps
//!   while staying a total, deterministic tie-break.
//! * **Shared-slice payloads** — a [`StreamMessage`] is a `(Arc<[u8]>`
//!   block, range)` pair plus an interned `Arc<str>` topic name: delivery
//!   is pointer arithmetic, and `stream.bytes_copied` stays at ~0 until a
//!   consumer explicitly materializes ([`StreamMessage::to_record`]).
//! * **Parallel prefetch** — cursor fills run on a small scoped-thread
//!   pool (the organizer's distributor pattern); each cursor owns an
//!   `IoCtx` whose declared contention is set per fill pass to the
//!   number of lanes actually sharing the device in that pass (a lone
//!   steady-state refill runs uncontended), and the caller is charged
//!   the *per-thread makespan*: each pass costs the slowest pool
//!   thread's share of topics (with `prefetch_threads = 1` that degrades
//!   to the honest sequential sum), mirroring how the organizer charges
//!   its distributors.
//!
//! Full-topic streams still honor the commit manifest: each cursor folds
//! the chunks it fetches into a running CRC32C and compares against the
//! manifest entry when the file's last chunk arrives, so a corrupt topic
//! surfaces as [`BoraError::ChecksumMismatch`] (and is quarantined) before
//! the stream can complete. Time-range streams skip content verification,
//! exactly like the materializing time path always has.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use ros_msgs::Time;
use rosbag::reader::MessageRecord;
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::checksum::Crc32c;
use crate::container::{BoraBag, DataSource, FUSE_DELIVERY_NS};
use crate::error::{BoraError, BoraResult};
use crate::layout::TopicPaths;
use crate::topic_index::{decode_entries, slice_time_range, TopicIndexEntry, ENTRY_SIZE};

/// Tuning for [`MessageStream`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Per-topic readahead window: a cursor keeps at most ~this many
    /// data-file bytes queued (one oversized message may exceed it — a
    /// run always covers at least one entry).
    pub readahead_bytes: usize,
    /// Size of the scoped-thread pool that fills cursors. `1` disables
    /// parallel prefetch (fills run inline on the consumer thread).
    pub prefetch_threads: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { readahead_bytes: 1 << 20, prefetch_threads: 4 }
    }
}

/// One in-memory message appended *after* a topic's container entries —
/// served from an ingest memtable or a sealed segment instead of the
/// topic's `data` file. A live store hands these to
/// [`BoraBag::stream_topics_with_tails`] so the k-way merge sees
/// mid-recording data through the exact same lanes (and therefore the
/// exact same `(time, lane)` tie-break) as compacted data: the merge
/// output is byte-identical whether a message lives in a tail or in the
/// container.
///
/// Tail messages of one topic must be chronological and must not predate
/// the topic's last container entry — the ingest store enforces both by
/// rejecting out-of-order appends.
#[derive(Debug, Clone)]
pub struct TailMessage {
    pub time: Time,
    pub data: Arc<[u8]>,
}

/// One message, delivered as a shared slice of its topic's data block.
#[derive(Debug, Clone)]
pub struct StreamMessage {
    pub conn_id: u32,
    /// Interned topic name (shared with the tag table — no allocation).
    pub topic: Arc<str>,
    pub time: Time,
    block: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl StreamMessage {
    /// Borrow the payload — zero copies, zero allocations.
    pub fn payload(&self) -> &[u8] {
        &self.block[self.start..self.start + self.len]
    }

    /// Materialize into the classic owned record (copies payload + topic;
    /// the copy is counted in the `stream.bytes_copied` metric so the
    /// zero-copy claim is measurable, not asserted).
    pub fn to_record(&self) -> MessageRecord {
        bora_obs::counter("stream.bytes_copied").add(self.len as u64);
        MessageRecord {
            conn_id: self.conn_id,
            topic: (*self.topic).to_owned(),
            time: self.time,
            data: self.payload().to_vec(),
        }
    }
}

/// Counters a finished (or in-flight) stream exposes for tests, the
/// `ext_stream` experiment, and the serve layer's metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Messages yielded so far.
    pub delivered: u64,
    /// Heap push/pop pairs performed by the merge.
    pub heap_ops: u64,
    /// High-water mark of total queued block bytes across all cursors.
    pub peak_resident_bytes: usize,
    /// Data-file bytes fetched by cursor fills.
    pub bytes_fetched: u64,
    /// Number of cursor fill batches issued.
    pub refills: u64,
}

/// One fetched run of consecutive messages from a topic's data file.
#[derive(Debug)]
struct Block {
    /// Absolute data-file offset of `data[0]`.
    start: u64,
    data: Arc<[u8]>,
}

impl Block {
    fn end(&self) -> u64 {
        self.start + self.data.len() as u64
    }
}

/// Per-topic read cursor: index entries + a bounded queue of data blocks
/// + a private virtual clock charged for this topic's I/O.
struct TopicCursor {
    topic: Arc<str>,
    conn_id: u32,
    paths: Arc<TopicPaths>,
    entries: Vec<TopicIndexEntry>,
    /// Next entry to yield to the merge.
    next: usize,
    /// Entries [..fetched) are covered by `blocks`.
    fetched: usize,
    blocks: VecDeque<Block>,
    queued_bytes: usize,
    /// In-memory messages merged after the container entries (live-ingest
    /// tails). Delivered straight from their shared payload slices — no
    /// fill, no block queue.
    tail: Vec<TailMessage>,
    /// Next tail message to yield once `entries` are exhausted.
    tail_next: usize,
    /// Whether the topic has container files behind it. Tail-only lanes
    /// (topics not yet compacted into the container) skip index loading
    /// and fills entirely.
    container_backed: bool,
    /// How the data file is physically read: direct or block-decoded
    /// (resolved once at prepare).
    src: DataSource,
    /// Running CRC over the whole data file + manifest expectation, when
    /// this is a verifying full-file direct stream. Block-framed reads
    /// verify per block at fill time instead (a pool hit must not depend
    /// on having streamed the whole file).
    verify: Option<(Crc32c, u64, u32, String)>,
    /// This cursor's share of the virtual clock (prefetch I/O).
    ctx: IoCtx,
    /// First error hit by a pool fill; surfaced by the next `next_msg`.
    failed: Option<BoraError>,
}

impl TopicCursor {
    fn peek_time(&self) -> Option<Time> {
        self.entries
            .get(self.next)
            .map(|e| e.time)
            .or_else(|| self.tail.get(self.tail_next).map(|m| m.time))
    }

    fn needs_fill(&self, readahead: usize) -> bool {
        self.fetched < self.entries.len() && self.queued_bytes < readahead / 2
    }

    /// Fetch runs of consecutive entries until ~`readahead` bytes are
    /// queued (always at least one entry per run, so oversized messages
    /// still stream). Folds verifying streams' chunks into the running
    /// CRC and checks it when the last chunk lands.
    fn fill<S: Storage>(&mut self, bag: &BoraBag<S>, readahead: usize) -> BoraResult<()> {
        while self.fetched < self.entries.len() && self.queued_bytes < readahead {
            let run_start = self.entries[self.fetched].offset;
            let mut end_idx = self.fetched;
            let mut run_end = run_start;
            while end_idx < self.entries.len() {
                let e = &self.entries[end_idx];
                if e.offset != run_end || (run_end - run_start) as usize >= readahead {
                    break;
                }
                run_end = e.end();
                end_idx += 1;
            }
            // A hole between entries (never produced by the organizer,
            // but defensively possible) ends the run; take at least one.
            if end_idx == self.fetched {
                run_end = self.entries[self.fetched].end();
                end_idx = self.fetched + 1;
            }
            let len = (run_end - run_start) as usize;
            let bytes = match &self.src {
                DataSource::RawDirect => {
                    bag.storage.read_at(&self.paths.data, run_start, len, &mut self.ctx)?
                }
                src => bag.fetch_logical(&self.paths, src, run_start, len, &mut self.ctx)?,
            };
            if let Some((crc, expected_len, expected_crc, rel)) = self.verify.as_mut() {
                crc.update(&bytes);
                if end_idx == self.entries.len() {
                    let actual = crc.finish();
                    if run_end != *expected_len || actual != *expected_crc {
                        bora_obs::counter("verify.checksum_fail").inc();
                        return Err(BoraError::ChecksumMismatch {
                            path: std::mem::take(rel),
                            expected: *expected_crc,
                            actual,
                        });
                    }
                }
            }
            self.queued_bytes += bytes.len();
            self.blocks.push_back(Block { start: run_start, data: Arc::from(bytes) });
            self.fetched = end_idx;
        }
        bora_obs::histogram("stream.prefetch.queue_depth").record(self.blocks.len() as u64);
        Ok(())
    }

    /// Yield the next message; the covering block must already be queued.
    fn pop_msg(&mut self) -> StreamMessage {
        if self.next >= self.entries.len() {
            // Container entries exhausted — serve from the in-memory tail.
            let m = &self.tail[self.tail_next];
            self.tail_next += 1;
            return StreamMessage {
                conn_id: self.conn_id,
                topic: Arc::clone(&self.topic),
                time: m.time,
                block: Arc::clone(&m.data),
                start: 0,
                len: m.data.len(),
            };
        }
        let e = self.entries[self.next];
        let block = self.blocks.front().expect("fill() ran before pop_msg");
        debug_assert!(e.offset >= block.start && e.end() <= block.end());
        let start = (e.offset - block.start) as usize;
        let msg = StreamMessage {
            conn_id: self.conn_id,
            topic: Arc::clone(&self.topic),
            time: e.time,
            block: Arc::clone(&block.data),
            start,
            len: e.len as usize,
        };
        self.next += 1;
        if e.end() >= block.end() {
            let spent = self.blocks.pop_front().unwrap();
            self.queued_bytes -= spent.data.len();
        }
        msg
    }

    /// Whether the next message is already deliverable (its block is
    /// queued, or it comes from the in-memory tail).
    fn front_ready(&self) -> bool {
        match (self.entries.get(self.next), self.blocks.front()) {
            (Some(e), Some(b)) => e.offset >= b.start && e.end() <= b.end(),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }
}

/// A chronological k-way merged stream over selected topics of a
/// [`BoraBag`]. Obtain one via [`BoraBag::stream_topics`] /
/// [`BoraBag::stream_topics_time`]; drive it with
/// [`MessageStream::next_msg`] or the [`MessageStream::iter`] adapter.
pub struct MessageStream<'a, S: Storage> {
    bag: &'a BoraBag<S>,
    cursors: Vec<TopicCursor>,
    /// Min-heap over `(time_ns, lane)`; one key per non-exhausted lane.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    opts: StreamOptions,
    /// The consumer's declared process concurrency; each fill pass
    /// multiplies it by the number of threads active in *that pass*.
    base_concurrency: u32,
    /// `ceil(log2 k)` for the merge's per-message CPU charge (0 for k<=1).
    log_k: u64,
    stats: StreamStats,
    /// Accumulated prefetch cost: per fill pass, the slowest pool
    /// thread's sum of cursor-clock deltas (the whole sum when fills ran
    /// inline). This is what `charge_into` puts on the consumer's clock.
    io_ns: u64,
    /// Set once the parallel prefetch clocks have been folded into a
    /// consumer ctx (idempotence for `charge_into`).
    charged: bool,
    done: bool,
}

impl<'a, S: Storage> MessageStream<'a, S> {
    /// Build a stream over `topics`; `range` bounds it via the coarse
    /// time index (`None` = whole topics, manifest-verified). `tails` is
    /// either empty or one tail per topic (live-ingest messages merged
    /// after the topic's container entries); a topic unknown to the
    /// container is accepted when it brings a non-empty tail.
    pub(crate) fn new(
        bag: &'a BoraBag<S>,
        topics: &[&str],
        mut tails: Vec<Vec<TailMessage>>,
        range: Option<(Time, Time)>,
        opts: StreamOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<Self> {
        let k = topics.len();
        debug_assert!(tails.is_empty() || tails.len() == k, "one tail per topic");
        tails.resize_with(k, Vec::new);
        let mut cursors = Vec::with_capacity(k);
        for (topic, mut tail) in topics.iter().zip(tails) {
            bag.check_not_damaged(topic)?;
            // A tail-only topic stays known even when the range filter
            // empties its tail — the query legitimately selects nothing.
            let had_tail = !tail.is_empty();
            if let Some((start, end)) = range {
                tail.retain(|m| m.time >= start && m.time < end);
            }
            let (paths, container_backed) = match bag.tags.lookup_arc(topic, ctx) {
                Ok(p) => (p, true),
                Err(BoraError::UnknownTopic(_)) if had_tail => {
                    // Tail-only lane: every message is in memory; the
                    // (nonexistent) container files are never touched.
                    (Arc::new(TopicPaths::new(bag.root(), topic)), false)
                }
                Err(e) => return Err(e),
            };
            let interned = bag.tags.interned_topic(topic).unwrap_or_else(|| Arc::from(*topic));
            cursors.push(TopicCursor {
                topic: interned,
                conn_id: bag.conn_id_of(topic),
                paths,
                entries: Vec::new(),
                next: 0,
                fetched: 0,
                blocks: VecDeque::new(),
                queued_bytes: 0,
                tail,
                tail_next: 0,
                container_backed,
                src: DataSource::RawDirect,
                verify: None,
                ctx: IoCtx::with_concurrency(ctx.concurrency),
                failed: None,
            });
        }
        let mut stream = MessageStream {
            bag,
            cursors,
            heap: BinaryHeap::with_capacity(k),
            opts,
            base_concurrency: ctx.concurrency,
            log_k: if k > 1 { (usize::BITS - (k - 1).leading_zeros()) as u64 } else { 0 },
            stats: StreamStats::default(),
            io_ns: 0,
            charged: false,
            done: false,
        };
        // Index load + initial fill for every cursor, on the pool.
        let lanes: Vec<usize> = (0..stream.cursors.len()).collect();
        stream.run_pool(&lanes, range, true)?;
        for lane in 0..stream.cursors.len() {
            if let Some(t) = stream.cursors[lane].peek_time() {
                stream.heap.push(Reverse((t.as_nanos(), lane)));
            }
        }
        Ok(stream)
    }

    /// Run prepare (optionally) + fill for `lanes` on the scoped-thread
    /// pool, surfacing the first failure. Single-lane batches run inline:
    /// no thread is worth spinning up for one cursor.
    fn run_pool(
        &mut self,
        lanes: &[usize],
        range: Option<(Time, Time)>,
        prepare: bool,
    ) -> BoraResult<()> {
        if lanes.is_empty() {
            return Ok(());
        }
        self.stats.refills += 1;
        let readahead = self.opts.readahead_bytes.max(1);
        let pool = self.opts.prefetch_threads.max(1).min(lanes.len());
        // Contention is per pass: only the lanes filled *in this pass*
        // share the device. A lone steady-state refill runs uncontended;
        // a batched refill divides bandwidth across its active threads
        // (batched lanes are all low-water, so their fetch sizes — and
        // hence their shares — are roughly equal by construction).
        let contention = self.base_concurrency.saturating_mul(pool as u32).max(1);
        for &l in lanes {
            self.cursors[l].ctx.concurrency = contention;
        }
        let bag = self.bag;
        let before: Vec<u64> = lanes.iter().map(|&l| self.cursors[l].ctx.elapsed_ns()).collect();
        let sp = bora_obs::span("bora.stream.prefetch");
        if pool == 1 {
            for &lane in lanes {
                let c = &mut self.cursors[lane];
                let r = prepare_and_fill(bag, c, range, readahead, prepare);
                if let Err(e) = r {
                    c.failed = Some(e);
                }
            }
        } else {
            let lane_set: Vec<bool> = {
                let mut v = vec![false; self.cursors.len()];
                for &l in lanes {
                    v[l] = true;
                }
                v
            };
            let mut selected: Vec<&mut TopicCursor> = self
                .cursors
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| lane_set[*i])
                .map(|(_, c)| c)
                .collect();
            let per = selected.len().div_ceil(pool);
            crossbeam::thread::scope(|s| {
                for chunk in selected.chunks_mut(per) {
                    s.spawn(move |_| {
                        for c in chunk.iter_mut() {
                            if let Err(e) = prepare_and_fill(bag, c, range, readahead, prepare) {
                                c.failed = Some(e);
                                break;
                            }
                        }
                    });
                }
            })
            .expect("prefetch pool panicked");
        }
        // Cost of this pass = the slowest thread's share: cursors were
        // split over the pool in `per`-sized runs, so group the per-lane
        // clock deltas the same way and take the largest group sum. With
        // one thread that is simply the sequential total.
        let deltas: Vec<u64> = lanes
            .iter()
            .zip(&before)
            .map(|(&l, &b)| self.cursors[l].ctx.elapsed_ns() - b)
            .collect();
        let per = lanes.len().div_ceil(pool);
        let pass_ns = deltas.chunks(per).map(|chunk| chunk.iter().sum::<u64>()).max().unwrap_or(0);
        self.io_ns += pass_ns;
        sp.end_virt(pass_ns);
        let resident: usize = self.cursors.iter().map(|c| c.queued_bytes).sum();
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(resident);
        self.stats.bytes_fetched = self.cursors.iter().map(|c| c.ctx.stats.bytes_read).sum();
        for lane in lanes {
            if let Some(e) = self.cursors[*lane].failed.take() {
                if let BoraError::ChecksumMismatch { .. } = &e {
                    self.bag.quarantine(&self.cursors[*lane].topic);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Next message in global time order, or `None` when the stream is
    /// exhausted. The first `None` folds the parallel prefetch clocks
    /// into `ctx` (makespan over topics — see module docs).
    pub fn next_msg(&mut self, ctx: &mut IoCtx) -> BoraResult<Option<StreamMessage>> {
        if self.done {
            return Ok(None);
        }
        let Some(Reverse((_, lane))) = self.heap.pop() else {
            self.done = true;
            self.charge_into(ctx);
            return Ok(None);
        };
        if !self.cursors[lane].front_ready() {
            // Batch the refill: top up every low cursor in one pool pass
            // so one dry lane amortizes the others' readahead.
            let readahead = self.opts.readahead_bytes.max(1);
            let lanes: Vec<usize> = (0..self.cursors.len())
                .filter(|&l| l == lane || self.cursors[l].needs_fill(readahead))
                .collect();
            if let Err(e) = self.run_pool(&lanes, None, false) {
                self.done = true;
                self.charge_into(ctx);
                return Err(e);
            }
        }
        let msg = self.cursors[lane].pop_msg();
        if let Some(t) = self.cursors[lane].peek_time() {
            self.heap.push(Reverse((t.as_nanos(), lane)));
        }
        // Per-message consumer-side charges: one FUSE/ROS-Lib delivery
        // round trip + the heap's O(log k) pick (k<=1 merges are free,
        // matching the old single-stream fast path).
        ctx.charge_ns(FUSE_DELIVERY_NS + self.log_k * cpu::SORT_ELEMENT_NS);
        self.stats.heap_ops += 1;
        bora_obs::counter("stream.merge.heap_ops").inc();
        self.stats.delivered += 1;
        Ok(Some(msg))
    }

    /// Fold the prefetch work into `ctx`: the clock advances by the
    /// accumulated per-thread makespan of the fill passes, the per-topic
    /// I/O stats sum. Called automatically when the stream exhausts; call
    /// it explicitly if you abandon a stream early and still want the
    /// consumed I/O on your clock.
    pub fn charge_into(&mut self, ctx: &mut IoCtx) {
        if self.charged {
            return;
        }
        self.charged = true;
        ctx.charge_ns(self.io_ns);
        for c in &self.cursors {
            ctx.absorb_stats(&c.ctx);
        }
    }

    /// Counters so far (peak resident bytes, heap ops, ...).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Messages remaining (exact — index entries plus queued tails).
    pub fn remaining(&self) -> u64 {
        self.cursors
            .iter()
            .map(|c| (c.entries.len() - c.next) as u64 + (c.tail.len() - c.tail_next) as u64)
            .sum()
    }

    /// Iterator adapter over (`stream`, `ctx`).
    pub fn iter<'s>(&'s mut self, ctx: &'s mut IoCtx) -> StreamIter<'s, 'a, S> {
        StreamIter { stream: self, ctx }
    }

    /// Drain into owned records — the materializing compatibility path
    /// (`read_topics` & friends are thin wrappers over this).
    pub fn collect_records(mut self, ctx: &mut IoCtx) -> BoraResult<Vec<MessageRecord>> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        loop {
            match self.next_msg(ctx) {
                Ok(Some(m)) => out.push(m.to_record()),
                Ok(None) => return Ok(out),
                Err(e) => {
                    self.charge_into(ctx);
                    return Err(e);
                }
            }
        }
    }
}

/// `for msg in stream.iter(&mut ctx)` sugar over [`MessageStream::next_msg`].
pub struct StreamIter<'s, 'a, S: Storage> {
    stream: &'s mut MessageStream<'a, S>,
    ctx: &'s mut IoCtx,
}

impl<S: Storage> Iterator for StreamIter<'_, '_, S> {
    type Item = BoraResult<StreamMessage>;

    fn next(&mut self) -> Option<Self::Item> {
        self.stream.next_msg(self.ctx).transpose()
    }
}

/// Load a cursor's index slice (full or time-bounded) and run its first
/// fill — the unit of work a pool thread executes.
fn prepare_and_fill<S: Storage>(
    bag: &BoraBag<S>,
    cursor: &mut TopicCursor,
    range: Option<(Time, Time)>,
    readahead: usize,
    prepare: bool,
) -> BoraResult<()> {
    if !cursor.container_backed {
        // Tail-only lane: nothing on storage to load or prefetch.
        return Ok(());
    }
    if prepare {
        cursor.src = bag.data_source(&cursor.topic, &cursor.paths, &mut cursor.ctx)?;
        match range {
            None => {
                let bytes = bag.verified_read_all(
                    &cursor.paths.index,
                    Some(&cursor.topic),
                    &mut cursor.ctx,
                )?;
                cursor.entries = decode_entries(&bytes)?;
                cursor.ctx.charge_ns(cursor.entries.len() as u64 * cpu::INDEX_ENTRY_NS);
                // Arm end-to-end verification when the manifest knows the
                // data file and the cursor reads it directly; pooled and
                // blocked sources verify per page/frame instead.
                if matches!(cursor.src, DataSource::RawDirect) {
                    cursor.verify = bag.manifest_expectation(&cursor.paths.data);
                }
            }
            Some((start, end)) => {
                let tindex = {
                    let sp = bora_obs::span("bora.tindex.load");
                    let v0 = cursor.ctx.elapsed_ns();
                    let bytes = bag.verified_read_all(
                        &cursor.paths.tindex,
                        Some(&cursor.topic),
                        &mut cursor.ctx,
                    )?;
                    let tindex = crate::time_index::TimeIndex::decode(&bytes)?;
                    sp.end_virt(cursor.ctx.elapsed_ns() - v0);
                    tindex
                };
                let Some((first, last)) = tindex.candidate_entries(start, end) else {
                    return Ok(());
                };
                let count = (last - first) as usize;
                let idx_bytes = bag.storage.read_at(
                    &cursor.paths.index,
                    first as u64 * ENTRY_SIZE as u64,
                    count * ENTRY_SIZE,
                    &mut cursor.ctx,
                )?;
                let candidates = decode_entries(&idx_bytes)?;
                cursor.ctx.charge_ns(count as u64 * cpu::INDEX_ENTRY_NS);
                cursor.entries = slice_time_range(&candidates, start, end).to_vec();
            }
        }
    }
    cursor.fill(bag, readahead)
}
