//! `bora-tool` — operate on real bags and containers on the local disk.
//!
//! ```text
//! bora-tool import  <src.bag> <container-dir>    duplicate a bag into a container
//! bora-tool record? (see `rosbag-tool` for bag-side operations)
//! bora-tool info    <container-dir>              container metadata summary
//! bora-tool topics  <container-dir>              list topics
//! bora-tool query   <container-dir> <topic> [start_s end_s]
//! bora-tool export  <container-dir> <out.bag>    rebag a container
//! bora-tool verify  <container-dir>              consistency self-check
//! bora-tool fsck    <container-dir> [--repair [--source <src.bag>]]
//!                                                classify Clean/Torn/Corrupt, optionally repair
//! ```
//!
//! All storage goes through `simfs::LocalStorage`, i.e. real files.

use std::path::Path;
use std::process::exit;

use bora::{BoraBag, OrganizerOptions};
use ros_msgs::Time;
use simfs::{IoCtx, LocalStorage};

/// Split a host path into (LocalStorage rooted at its parent, "/name").
fn split(path: &str) -> (LocalStorage, String) {
    let p = Path::new(path);
    let parent = p.parent().filter(|q| !q.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = p
        .file_name()
        .unwrap_or_else(|| {
            eprintln!("bad path: {path}");
            exit(2);
        })
        .to_string_lossy()
        .into_owned();
    let fs = LocalStorage::new(parent).unwrap_or_else(|e| {
        eprintln!("cannot open {parent:?}: {e}");
        exit(2);
    });
    (fs, format!("/{name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = IoCtx::new();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["import", src, dst] => {
            let (sfs, spath) = split(src);
            let (dfs, dpath) = split(dst);
            let report = bora::organizer::duplicate(
                &sfs,
                &spath,
                &dfs,
                &dpath,
                &OrganizerOptions::default(),
                &mut ctx,
            )
            .unwrap_or_else(die);
            println!(
                "imported {} messages across {} topics ({} payload bytes) into {dst}",
                report.messages, report.topics, report.payload_bytes
            );
        }
        ["info", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let m = bag.meta();
            println!("container:    {dir}");
            println!("messages:     {}", m.message_count());
            println!("payload:      {} bytes", m.data_bytes());
            println!("time range:   [{}, {}]", m.start_time, m.end_time);
            println!("time window:  {} s", m.window_ns as f64 / 1e9);
            println!("topics:");
            for t in &m.topics {
                println!(
                    "  {:40} {:28} {:>9} msgs  {:>12} bytes",
                    t.topic, t.datatype, t.message_count, t.bytes
                );
            }
        }
        ["topics", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            for t in bag.topics() {
                println!("{t}");
            }
        }
        ["query", dir, topic, rest @ ..] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let msgs = match rest {
                [] => bag.read_topic(topic, &mut ctx).unwrap_or_else(die),
                [start, end] => {
                    let s: f64 = start.parse().unwrap_or_else(|_| badnum(start));
                    let e: f64 = end.parse().unwrap_or_else(|_| badnum(end));
                    bag.read_topic_time(
                        topic,
                        Time::from_sec_f64(s),
                        Time::from_sec_f64(e),
                        &mut ctx,
                    )
                    .unwrap_or_else(die)
                }
                _ => usage(),
            };
            println!("{} messages", msgs.len());
            for m in msgs.iter().take(5) {
                println!("  t={} {} bytes", m.time, m.data.len());
            }
            if msgs.len() > 5 {
                println!("  ... ({} more)", msgs.len() - 5);
            }
        }
        ["export", dir, out] => {
            let (fs, path) = split(dir);
            let (ofs, opath) = split(out);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            let topics: Vec<String> = bag.topics().into_iter().map(str::to_owned).collect();
            let refs: Vec<&str> = topics.iter().map(String::as_str).collect();
            let msgs = bag.read_topics(&refs, &mut ctx).unwrap_or_else(die);
            let mut w = rosbag::BagWriter::create(
                &ofs,
                &opath,
                rosbag::BagWriterOptions::default(),
                &mut ctx,
            )
            .unwrap_or_else(die);
            let mut conn_ids = std::collections::HashMap::new();
            for tm in &bag.meta().topics {
                let desc = ros_msgs::MessageDescriptor {
                    datatype: tm.datatype.clone(),
                    md5sum: tm.md5sum.clone(),
                    definition: tm.definition.clone(),
                };
                conn_ids.insert(tm.topic.clone(), w.add_connection(&tm.topic, &desc));
            }
            for m in &msgs {
                w.write_message(conn_ids[&m.topic], m.time, &m.data, &mut ctx).unwrap_or_else(die);
            }
            let s = w.close(&mut ctx).unwrap_or_else(die);
            println!("exported {} messages to {out} ({} bytes)", s.message_count, s.file_len);
        }
        ["fsck", dir, rest @ ..] => {
            let (repair, source) = match rest {
                [] => (false, None),
                ["--repair"] => (true, None),
                ["--repair", "--source", src] => (true, Some(*src)),
                _ => usage(),
            };
            let (fs, path) = split(dir);
            let report = bora::fsck::check(&fs, &path, &mut ctx).unwrap_or_else(die);
            println!(
                "state: {:?}{}",
                report.state,
                if report.stale_staging { " (stale staging debris)" } else { "" }
            );
            if !report.has_manifest {
                println!("note: no MANIFEST (pre-manifest container); structural check only");
            }
            println!(
                "files checked: {}, bytes checked: {}",
                report.files_checked, report.bytes_checked
            );
            for d in &report.damages {
                println!("  damaged: {} ({})", d.rel_path, d.reason);
            }
            if !repair {
                if !report.is_clean() {
                    exit(1);
                }
                return;
            }
            let opts = OrganizerOptions::default();
            let outcome = match source {
                Some(src) => {
                    let (sfs, spath) = split(src);
                    bora::fsck::repair(&fs, &path, Some((&sfs, spath.as_str())), &opts, &mut ctx)
                        .unwrap_or_else(die)
                }
                None => bora::fsck::repair::<_, LocalStorage>(&fs, &path, None, &opts, &mut ctx)
                    .unwrap_or_else(die),
            };
            println!("repair: {outcome:?}");
        }
        ["verify", dir] => {
            let (fs, path) = split(dir);
            let bag = BoraBag::open(&fs, &path, &mut ctx).unwrap_or_else(die);
            match bag.verify(&mut ctx) {
                Ok(n) => println!("OK: {n} messages verified"),
                Err(e) => {
                    eprintln!("CORRUPT: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}

fn die<E: std::fmt::Display, T>(e: E) -> T {
    eprintln!("error: {e}");
    exit(1);
}

fn badnum(s: &str) -> f64 {
    eprintln!("bad number: {s}");
    exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: bora-tool <import <src.bag> <dir> | info <dir> | topics <dir> | \
         query <dir> <topic> [start_s end_s] | export <dir> <out.bag> | verify <dir> | \
         fsck <dir> [--repair [--source <src.bag>]]>"
    );
    exit(2);
}
