//! Online recording — the paper's future-work mode (§III.C: "BORA could
//! be integrated into a file system running on a robot so that it can
//! manipulate bag data in an online way").
//!
//! [`BoraRecorder`] subscribes like `rosbag record` but writes *directly*
//! into a container: per-topic appends, fine-grain index entries, and
//! incremental coarse time windows, with no bag-to-container duplication
//! step afterwards. The resulting container is indistinguishable from one
//! produced by the offline organizer (tested below), so all of BORA-Lib
//! works on it unchanged.
//!
//! The trade-off the paper anticipates is write-side: recording scatters
//! appends across topic files instead of one log, so the recorder keeps
//! per-topic write buffers to preserve recording throughput.

use std::collections::HashMap;

use ros_msgs::{MessageDescriptor, RosMessage, Time};
use simfs::device::cpu;
use simfs::{IoCtx, Storage};

use crate::error::{BoraError, BoraResult};
use crate::layout::{meta_path, TopicPaths};
use crate::meta::{ContainerMeta, TopicMeta};
use crate::time_index::{TimeIndex, DEFAULT_WINDOW_NS};
use crate::topic_index::{encode_entries, TopicIndexEntry};

/// Options for online recording.
#[derive(Debug, Clone, Copy)]
pub struct RecorderOptions {
    pub window_ns: u64,
    /// Per-topic write-buffer size.
    pub write_buffer: usize,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions { window_ns: DEFAULT_WINDOW_NS, write_buffer: 256 * 1024 }
    }
}

struct TopicState {
    meta: TopicMeta,
    paths: TopicPaths,
    entries: Vec<TopicIndexEntry>,
    buffer: Vec<u8>,
    written: u64,
}

/// Records messages straight into a BORA container.
pub struct BoraRecorder<S> {
    storage: S,
    root: String,
    opts: RecorderOptions,
    topics: HashMap<String, TopicState>,
    start: Time,
    end: Time,
    messages: u64,
    closed: bool,
}

impl<S: Storage> BoraRecorder<S> {
    /// Start recording into a new container at `root`.
    pub fn create(
        storage: S,
        root: &str,
        opts: RecorderOptions,
        ctx: &mut IoCtx,
    ) -> BoraResult<Self> {
        if storage.exists(root, ctx) {
            return Err(BoraError::Fs(simfs::FsError::AlreadyExists(root.to_owned())));
        }
        storage.mkdir_all(root, ctx)?;
        Ok(BoraRecorder {
            storage,
            root: root.to_owned(),
            opts,
            topics: HashMap::new(),
            start: Time::MAX,
            end: Time::ZERO,
            messages: 0,
            closed: false,
        })
    }

    /// Subscribe a topic (idempotent).
    pub fn subscribe(
        &mut self,
        topic: &str,
        desc: &MessageDescriptor,
        ctx: &mut IoCtx,
    ) -> BoraResult<()> {
        if self.topics.contains_key(topic) {
            return Ok(());
        }
        let paths = TopicPaths::new(&self.root, topic);
        self.storage.mkdir_all(&paths.dir, ctx)?;
        self.topics.insert(
            topic.to_owned(),
            TopicState {
                meta: TopicMeta {
                    topic: topic.to_owned(),
                    datatype: desc.datatype.clone(),
                    md5sum: desc.md5sum.clone(),
                    definition: desc.definition.clone(),
                    message_count: 0,
                    bytes: 0,
                },
                paths,
                entries: Vec::new(),
                buffer: Vec::new(),
                written: 0,
            },
        );
        Ok(())
    }

    /// Record one serialized message. Messages must arrive chronologically
    /// per topic (as a subscriber receives them).
    pub fn record(
        &mut self,
        topic: &str,
        time: Time,
        payload: &[u8],
        ctx: &mut IoCtx,
    ) -> BoraResult<()> {
        if self.closed {
            return Err(BoraError::Corrupt("recorder already closed".into()));
        }
        let st =
            self.topics.get_mut(topic).ok_or_else(|| BoraError::UnknownTopic(topic.to_owned()))?;
        if let Some(last) = st.entries.last() {
            if time < last.time {
                return Err(BoraError::Corrupt(format!(
                    "{topic}: out-of-order stamp {time} after {}",
                    last.time
                )));
            }
        }
        st.entries.push(TopicIndexEntry {
            time,
            offset: st.written + st.buffer.len() as u64,
            len: payload.len() as u32,
        });
        st.buffer.extend_from_slice(payload);
        st.meta.message_count += 1;
        st.meta.bytes += payload.len() as u64;
        ctx.charge_ns(cpu::INDEX_ENTRY_NS);
        if st.buffer.len() >= self.opts.write_buffer {
            st.written += st.buffer.len() as u64;
            self.storage.append(&st.paths.data, &st.buffer, ctx)?;
            st.buffer.clear();
        }
        self.start = self.start.min(time);
        self.end = self.end.max(time);
        self.messages += 1;
        Ok(())
    }

    /// Typed convenience: subscribe-if-needed and record.
    pub fn record_ros_message<M: RosMessage>(
        &mut self,
        topic: &str,
        time: Time,
        msg: &M,
        ctx: &mut IoCtx,
    ) -> BoraResult<()> {
        if !self.topics.contains_key(topic) {
            self.subscribe(topic, &MessageDescriptor::of::<M>(), ctx)?;
        }
        self.record(topic, time, &msg.to_bytes(), ctx)
    }

    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Finish: flush buffers, write per-topic indices and the container
    /// metadata. The container is then openable by [`crate::BoraBag`].
    pub fn close(mut self, ctx: &mut IoCtx) -> BoraResult<ContainerMeta> {
        if self.closed {
            return Err(BoraError::Corrupt("recorder already closed".into()));
        }
        self.closed = true;
        let mut topics: Vec<&mut TopicState> = self.topics.values_mut().collect();
        topics.sort_by(|a, b| a.meta.topic.cmp(&b.meta.topic));
        let mut metas = Vec::with_capacity(topics.len());
        for st in topics {
            // Flush data remainder (also materializes empty topics).
            self.storage.append(&st.paths.data, &st.buffer, ctx)?;
            st.written += st.buffer.len() as u64;
            st.buffer.clear();
            self.storage.append(&st.paths.index, &encode_entries(&st.entries), ctx)?;
            let tindex = TimeIndex::build(&st.entries, self.opts.window_ns);
            self.storage.append(&st.paths.tindex, &tindex.encode(), ctx)?;
            metas.push(st.meta.clone());
        }
        let meta = ContainerMeta {
            topics: metas,
            start_time: if self.messages > 0 { self.start } else { Time::ZERO },
            end_time: if self.messages > 0 { self.end } else { Time::ZERO },
            window_ns: self.opts.window_ns,
            source_bag_len: 0, // no source bag: recorded online
            block: None,       // live recording stays plain v1 layout
        };
        self.storage.append(&meta_path(&self.root), &meta.encode(), ctx)?;
        self.storage.flush(&meta_path(&self.root), ctx)?;
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::BoraBag;
    use crate::organizer::{duplicate, OrganizerOptions};
    use ros_msgs::sensor_msgs::Imu;
    use rosbag::{BagWriter, BagWriterOptions};
    use simfs::MemStorage;

    fn imu_at(i: u32) -> (Time, Imu) {
        let t = Time::new(100 + i / 10, (i % 10) * 100_000_000);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        (t, imu)
    }

    #[test]
    fn record_then_query() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut rec =
            BoraRecorder::create(&fs, "/c", RecorderOptions::default(), &mut ctx).unwrap();
        for i in 0..500 {
            let (t, imu) = imu_at(i);
            rec.record_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        let meta = rec.close(&mut ctx).unwrap();
        assert_eq!(meta.message_count(), 500);

        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(bag.verify(&mut ctx).unwrap(), 500);
        let msgs =
            bag.read_topic_time("/imu", Time::new(110, 0), Time::new(120, 0), &mut ctx).unwrap();
        assert_eq!(msgs.len(), 100);
    }

    #[test]
    fn online_equals_offline_container() {
        // Record the same stream online and via bag+organizer; the
        // resulting containers must answer queries identically.
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();

        let mut rec =
            BoraRecorder::create(&fs, "/online", RecorderOptions::default(), &mut ctx).unwrap();
        let mut w = BagWriter::create(
            &fs,
            "/b.bag",
            BagWriterOptions { chunk_size: 2048, ..Default::default() },
            &mut ctx,
        )
        .unwrap();
        for i in 0..300 {
            let (t, imu) = imu_at(i);
            rec.record_ros_message("/imu", t, &imu, &mut ctx).unwrap();
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        rec.close(&mut ctx).unwrap();
        w.close(&mut ctx).unwrap();
        duplicate(&fs, "/b.bag", &fs, "/offline", &OrganizerOptions::default(), &mut ctx).unwrap();

        let online = BoraBag::open(&fs, "/online", &mut ctx).unwrap();
        let offline = BoraBag::open(&fs, "/offline", &mut ctx).unwrap();
        let a = online.read_topic("/imu", &mut ctx).unwrap();
        let b = offline.read_topic("/imu", &mut ctx).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.data, y.data);
        }
        // Byte-identical topic files too.
        assert_eq!(
            fs.read_all("/online/imu/data", &mut ctx).unwrap(),
            fs.read_all("/offline/imu/data", &mut ctx).unwrap()
        );
    }

    #[test]
    fn out_of_order_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut rec =
            BoraRecorder::create(&fs, "/c", RecorderOptions::default(), &mut ctx).unwrap();
        let (_, imu) = imu_at(0);
        rec.record_ros_message("/imu", Time::new(200, 0), &imu, &mut ctx).unwrap();
        assert!(matches!(
            rec.record_ros_message("/imu", Time::new(100, 0), &imu, &mut ctx),
            Err(BoraError::Corrupt(_))
        ));
    }

    #[test]
    fn unsubscribed_topic_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut rec =
            BoraRecorder::create(&fs, "/c", RecorderOptions::default(), &mut ctx).unwrap();
        assert!(matches!(
            rec.record("/ghost", Time::ZERO, b"x", &mut ctx),
            Err(BoraError::UnknownTopic(_))
        ));
    }

    #[test]
    fn empty_subscription_still_materializes() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut rec =
            BoraRecorder::create(&fs, "/c", RecorderOptions::default(), &mut ctx).unwrap();
        rec.subscribe("/quiet", &MessageDescriptor::of::<Imu>(), &mut ctx).unwrap();
        rec.close(&mut ctx).unwrap();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(bag.topics(), vec!["/quiet"]);
        assert!(bag.read_topic("/quiet", &mut ctx).unwrap().is_empty());
    }
}
