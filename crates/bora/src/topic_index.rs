//! Per-topic fine-grain index: one fixed-size entry per message.
//!
//! The paper (§III.B): *"the index entry contains the timestamp of the
//! write, its logical offset, its length, and a pointer to its physical
//! location."* In this layout the physical location is
//! `<topic dir>/data` at `offset`, so the entry stores
//! `(time, offset, len)` in 20 bytes.

use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

use crate::error::{BoraError, BoraResult};

/// Size of one serialized entry in the `index` file.
pub const ENTRY_SIZE: usize = 20;

/// One message's location within its topic `data` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicIndexEntry {
    pub time: Time,
    /// Byte offset of the payload in the topic's `data` file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

impl TopicIndexEntry {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.time.as_nanos());
        out.put_u64(self.offset);
        out.put_u32(self.len);
    }

    pub fn decode(cur: &mut &[u8]) -> BoraResult<Self> {
        let ns = cur.get_u64()?;
        let offset = cur.get_u64()?;
        let len = cur.get_u32()?;
        Ok(TopicIndexEntry { time: Time::from_nanos(ns), offset, len })
    }

    /// End offset of the payload (`offset + len`).
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }
}

/// Serialize a slice of entries.
pub fn encode_entries(entries: &[TopicIndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * ENTRY_SIZE);
    for e in entries {
        e.encode(&mut out);
    }
    out
}

/// Parse a whole `index` file.
pub fn decode_entries(bytes: &[u8]) -> BoraResult<Vec<TopicIndexEntry>> {
    if !bytes.len().is_multiple_of(ENTRY_SIZE) {
        return Err(BoraError::Corrupt(format!(
            "index file size {} not a multiple of {ENTRY_SIZE}",
            bytes.len()
        )));
    }
    let mut cur = bytes;
    let mut out = Vec::with_capacity(bytes.len() / ENTRY_SIZE);
    while cur.remaining() > 0 {
        out.push(TopicIndexEntry::decode(&mut cur)?);
    }
    Ok(out)
}

/// Index entries must be chronological (the organizer writes them in bag
/// order, and bags are recorded chronologically per topic). Verified by
/// the container's consistency check.
pub fn is_chronological(entries: &[TopicIndexEntry]) -> bool {
    entries.windows(2).all(|w| w[0].time <= w[1].time)
}

/// Binary-search a chronological entry list down to `[start, end)`.
pub fn slice_time_range(entries: &[TopicIndexEntry], start: Time, end: Time) -> &[TopicIndexEntry] {
    let lo = entries.partition_point(|e| e.time < start);
    let hi = entries.partition_point(|e| e.time < end);
    &entries[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(sec: u32, offset: u64, len: u32) -> TopicIndexEntry {
        TopicIndexEntry { time: Time::new(sec, 0), offset, len }
    }

    #[test]
    fn entry_round_trip() {
        let entry = TopicIndexEntry { time: Time::new(123, 456), offset: 789, len: 1011 };
        let mut buf = Vec::new();
        entry.encode(&mut buf);
        assert_eq!(buf.len(), ENTRY_SIZE);
        let mut cur: &[u8] = &buf;
        assert_eq!(TopicIndexEntry::decode(&mut cur).unwrap(), entry);
    }

    #[test]
    fn entries_round_trip() {
        let entries = vec![e(1, 0, 10), e(2, 10, 20), e(3, 30, 5)];
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).unwrap(), entries);
    }

    #[test]
    fn truncated_file_rejected() {
        let entries = vec![e(1, 0, 10)];
        let mut bytes = encode_entries(&entries);
        bytes.pop();
        assert!(matches!(decode_entries(&bytes), Err(BoraError::Corrupt(_))));
    }

    #[test]
    fn chronology_check() {
        assert!(is_chronological(&[e(1, 0, 1), e(1, 1, 1), e(2, 2, 1)]));
        assert!(!is_chronological(&[e(2, 0, 1), e(1, 1, 1)]));
        assert!(is_chronological(&[]));
    }

    #[test]
    fn time_slice_half_open() {
        let entries = vec![e(1, 0, 1), e(2, 1, 1), e(3, 2, 1), e(4, 3, 1)];
        let sl = slice_time_range(&entries, Time::new(2, 0), Time::new(4, 0));
        assert_eq!(sl.len(), 2);
        assert_eq!(sl[0].time.sec, 2);
        assert_eq!(sl[1].time.sec, 3);
    }

    #[test]
    fn end_offset() {
        assert_eq!(e(1, 100, 50).end(), 150);
    }
}
