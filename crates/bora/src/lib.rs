//! **BORA: a Bag Optimizer for Robotic Analysis** — the paper's primary
//! contribution (SC20), reimplemented in Rust.
//!
//! BORA is a file-system middleware that sits between ROS and an underlying
//! file system. When a bag is *duplicated* onto a storage node, BORA
//! re-organizes it into a **container**:
//!
//! ```text
//! /mnt/bags/bag1/                  ← container root (named after the bag)
//!     .bora                        ← container metadata (topics, counts, time range)
//!     camera%depth%image/          ← one sub-directory per topic
//!         data                     ← all messages of the topic, contiguous
//!         index                    ← (time, offset, len) per message
//!         tindex                   ← coarse-grain time index (fixed windows)
//!     imu/
//!         ...
//! ```
//!
//! The three mechanisms of the paper map to these modules:
//!
//! * [`organizer`] — the **data organizer** (Fig. 6): one scanner thread
//!   reads the bag once; a pool of distributor threads appends messages to
//!   per-topic files and builds the indices.
//! * [`tag`] — the **tag manager**: a hash table topic → back-end path,
//!   rebuilt from a directory listing every time a container is opened
//!   (Table I shows why that is cheap).
//! * [`time_index`] — the **coarse-grain time index** (Fig. 8): fixed
//!   windows mapping `window start → range of message entries`, so a
//!   `(topics, start, end)` query touches only candidate windows instead
//!   of merge-sorting every timestamp.
//!
//! [`container::BoraBag`] is BORA-Lib: `open` (Fig. 4b — no chunk
//! iteration), `read_topics` (Fig. 7), and `read_topics_time`.
//! [`borafs::BoraFs`] is the front-end layer standing in for the paper's
//! FUSE mount: logical "bag files" on the front-end path, containers on the
//! back-end path, plus bag import (duplication), bag export (rebagging),
//! and BORA-to-BORA copy.
//!
//! # Quickstart
//!
//! ```
//! use bora::{BoraBag, OrganizerOptions};
//! use rosbag::{BagWriter, BagWriterOptions};
//! use ros_msgs::{sensor_msgs::Imu, Time};
//! use simfs::{IoCtx, MemStorage};
//!
//! let fs = MemStorage::new();
//! let mut ctx = IoCtx::new();
//!
//! // Record a bag the ordinary ROS way...
//! let mut w = BagWriter::create(&fs, "/src.bag", BagWriterOptions::default(), &mut ctx).unwrap();
//! for i in 0..100u32 {
//!     let mut imu = Imu::default();
//!     imu.header.stamp = Time::new(i, 0);
//!     w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
//! }
//! w.close(&mut ctx).unwrap();
//!
//! // ...duplicate it into a BORA container...
//! bora::organizer::duplicate(&fs, "/src.bag", &fs, "/bora/src", &OrganizerOptions::default(), &mut ctx).unwrap();
//!
//! // ...and query by topic + time range without any full-bag scan.
//! let bag = BoraBag::open(&fs, "/bora/src", &mut ctx).unwrap();
//! let msgs = bag.read_topics_time(&["/imu"], Time::new(10, 0), Time::new(20, 0), &mut ctx).unwrap();
//! assert_eq!(msgs.len(), 10);
//! ```

pub mod block;
pub mod borafs;
pub mod bufpool;
pub mod checksum;
pub mod container;
pub mod error;
pub mod fsck;
pub mod layout;
pub mod manifest;
pub mod meta;
pub mod multi;
pub mod organizer;
pub mod recorder;
pub mod stream;
pub mod tag;
pub mod time_index;
pub mod topic_index;

pub use block::{BlockCodec, BlockMap, BlockParams, BlockWriter};
pub use borafs::{BoraFs, BoraFsOptions};
pub use bufpool::{BufferPool, PageRef, PoolStats};
pub use checksum::{crc32c, Crc32c};
pub use container::{merge_streams_heap, merge_streams_linear, BoraBag};
pub use error::{BoraError, BoraResult};
pub use fsck::{FsckReport, FsckState, RepairOutcome};
pub use manifest::{Manifest, ManifestEntry};
pub use meta::ContainerMeta;
pub use multi::{swarm_fan_out, LocalBackend, SwarmBackend, SwarmQuery, SwarmResult, SwarmSpec};
pub use organizer::{duplicate, OrganizeReport, OrganizerOptions};
pub use recorder::{BoraRecorder, RecorderOptions};
pub use stream::{MessageStream, StreamMessage, StreamOptions, StreamStats, TailMessage};
pub use tag::TagManager;
pub use time_index::TimeIndex;
pub use topic_index::TopicIndexEntry;
