//! Error type for BORA operations.

use std::fmt;

use ros_msgs::WireError;
use rosbag::BagError;
use simfs::FsError;

/// Errors from BORA container operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoraError {
    /// The path does not contain a BORA container.
    NotAContainer(String),
    /// Container metadata or index file is malformed.
    Corrupt(String),
    /// Query referenced a topic the container does not hold.
    UnknownTopic(String),
    /// A file's content does not match its MANIFEST record (CRC32C or
    /// length). The data on the medium is wrong; retrying the read
    /// through a fresh handle may succeed if the damage was in transit.
    ChecksumMismatch {
        /// Container-relative path of the damaged file.
        path: String,
        expected: u32,
        actual: u32,
    },
    /// In degraded-open mode: the topic's files failed verification, but
    /// the rest of the container is being served.
    TopicDamaged(String),
    /// Source bag could not be parsed during duplication.
    Bag(BagError),
    Fs(FsError),
    Wire(WireError),
}

impl fmt::Display for BoraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoraError::NotAContainer(p) => write!(f, "not a BORA container: {p}"),
            BoraError::Corrupt(m) => write!(f, "corrupt container: {m}"),
            BoraError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            BoraError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "checksum mismatch on {path}: expected {expected:#010x}, got {actual:#010x}"
            ),
            BoraError::TopicDamaged(t) => write!(f, "topic damaged (degraded container): {t}"),
            BoraError::Bag(e) => write!(f, "bag error: {e}"),
            BoraError::Fs(e) => write!(f, "storage error: {e}"),
            BoraError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for BoraError {}

impl From<BagError> for BoraError {
    fn from(e: BagError) -> Self {
        BoraError::Bag(e)
    }
}

impl From<FsError> for BoraError {
    fn from(e: FsError) -> Self {
        BoraError::Fs(e)
    }
}

impl From<WireError> for BoraError {
    fn from(e: WireError) -> Self {
        BoraError::Wire(e)
    }
}

pub type BoraResult<T> = Result<T, BoraError>;
