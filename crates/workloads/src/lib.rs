//! Deterministic synthetic workloads shaped after the BORA paper's
//! evaluation inputs.
//!
//! The paper evaluates on real TUM RGB-D bags (Handheld SLAM) that are not
//! redistributable here, so this crate generates bags with **exactly the
//! paper's Table II composition** — the same seven topics, the same
//! message-count and byte-share proportions, the same interleaving of
//! huge unstructured images with small structured messages — from a seeded
//! PRNG (see DESIGN.md's substitution table). Every measured effect in the
//! paper depends on layout, counts, sizes, and timestamps, not on pixel
//! values.
//!
//! * [`tum`] — the Handheld-SLAM bag family (Table II), scalable from the
//!   2.9 GB original to the 42 GB swarm bags, with an orthogonal
//!   `payload_scale` so benchmark runs fit in RAM while preserving shape.
//! * [`apps`] — the four real-world applications of Table III (HS, RS,
//!   DO, PA) as topic-set selectors.
//! * [`swarm`] — per-robot bag generation for the Tianhe-1A swarm
//!   scenario (§IV.E).
//! * [`amr`] — a second family (warehouse AMR: lidar, odometry, GPS,
//!   compressed video) exercising the structured-data-dominant regime.

//! * [`querymix`] — skewed (hot/cold) query streams against a set of
//!   containers, driving the `bora-serve` serving-layer experiments.

pub mod amr;
pub mod apps;
pub mod querymix;
pub mod swarm;
pub mod tum;

pub use apps::{Application, APPLICATIONS};
pub use querymix::{Query, QueryKind, QueryMixOptions};
pub use tum::{topic, GenOptions, TopicSpec, TumBag, TUM_TOPICS};
