//! The four real-world applications of the paper's Table III, as
//! topic-set selectors over the Handheld-SLAM bag.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tum::{topic, TUM_TOPICS};

/// One application workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Application {
    /// Handheld SLAM: depth + RGB images.
    HandheldSlam,
    /// Robot SLAM: depth + RGB images + IMU.
    RobotSlam,
    /// Dynamic Object detection: TF, RGB image, camera pose, marker array.
    DynamicObject,
    /// Pre-analysis algorithms: randomly picked topic subsets per stage.
    PreAnalysis,
}

/// All four, in the paper's order.
pub const APPLICATIONS: [Application; 4] = [
    Application::HandheldSlam,
    Application::RobotSlam,
    Application::DynamicObject,
    Application::PreAnalysis,
];

impl Application {
    /// Paper's abbreviation (HS/RS/DO/PA).
    pub fn abbrev(self) -> &'static str {
        match self {
            Application::HandheldSlam => "HS",
            Application::RobotSlam => "RS",
            Application::DynamicObject => "DO",
            Application::PreAnalysis => "PA",
        }
    }

    pub fn full_name(self) -> &'static str {
        match self {
            Application::HandheldSlam => "Handheld SLAM",
            Application::RobotSlam => "Robot SLAM",
            Application::DynamicObject => "Dynamic Object",
            Application::PreAnalysis => "Pre-analysis Algorithms",
        }
    }

    /// Required topics (Table III). For `PreAnalysis`, a deterministic
    /// "randomly pick" driven by `seed` — the paper's PA runs multiple
    /// stages each picking a different subset; callers vary the seed per
    /// stage.
    pub fn topics(self, seed: u64) -> Vec<&'static str> {
        match self {
            Application::HandheldSlam => vec![topic::DEPTH_IMAGE, topic::RGB_IMAGE],
            Application::RobotSlam => vec![topic::DEPTH_IMAGE, topic::RGB_IMAGE, topic::IMU],
            Application::DynamicObject => {
                vec![topic::TF, topic::RGB_IMAGE, topic::RGB_CAMERA_INFO, topic::MARKER_ARRAY]
            }
            Application::PreAnalysis => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5041); // "PA"
                let k = rng.random_range(2..=4usize);
                let mut names: Vec<&'static str> = TUM_TOPICS.iter().map(|t| t.name).collect();
                // Fisher–Yates prefix shuffle.
                for i in 0..k {
                    let j = rng.random_range(i..names.len());
                    names.swap(i, j);
                }
                names.truncate(k);
                names.sort_unstable();
                names
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_topic_sets() {
        assert_eq!(Application::HandheldSlam.topics(0), vec![topic::DEPTH_IMAGE, topic::RGB_IMAGE]);
        assert_eq!(
            Application::RobotSlam.topics(0),
            vec![topic::DEPTH_IMAGE, topic::RGB_IMAGE, topic::IMU]
        );
        let do_topics = Application::DynamicObject.topics(0);
        assert!(do_topics.contains(&topic::TF));
        assert!(do_topics.contains(&topic::MARKER_ARRAY));
        assert_eq!(do_topics.len(), 4);
    }

    #[test]
    fn pre_analysis_is_deterministic_per_seed() {
        let a = Application::PreAnalysis.topics(1);
        let b = Application::PreAnalysis.topics(1);
        assert_eq!(a, b);
        assert!((2..=4).contains(&a.len()));
        // Different stages pick different subsets at least sometimes.
        let distinct = (0..10)
            .map(|s| Application::PreAnalysis.topics(s))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn pre_analysis_topics_are_valid() {
        for seed in 0..20 {
            for t in Application::PreAnalysis.topics(seed) {
                assert!(TUM_TOPICS.iter().any(|s| s.name == t), "bad topic {t}");
            }
        }
    }

    #[test]
    fn abbrevs() {
        let abbrevs: Vec<&str> = APPLICATIONS.iter().map(|a| a.abbrev()).collect();
        assert_eq!(abbrevs, vec!["HS", "RS", "DO", "PA"]);
    }
}
