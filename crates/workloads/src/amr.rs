//! A second workload family: a warehouse AMR (autonomous mobile robot).
//!
//! The paper's intro lists laser scans, GPS, odometry, and compressed
//! video among bag contents; the TUM Handheld-SLAM family has none of
//! them. This family exercises those types — planar lidar at 15 Hz,
//! wheel odometry at 50 Hz, GPS at 5 Hz, compressed camera at 10 Hz —
//! and gives the reproduction a workload whose structured data *dominates*
//! the byte volume (the opposite regime from Table II).

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use ros_msgs::nav_msgs::Odometry;
use ros_msgs::sensor_msgs::{CompressedImage, LaserScan, NavSatFix, NavSatStatus};
use ros_msgs::{RosDuration, Time};
use rosbag::{BagResult, BagWriter, BagWriterOptions};
use simfs::{IoCtx, Storage};

/// Topic name constants for the AMR family.
pub mod topic {
    pub const SCAN: &str = "/scan";
    pub const ODOM: &str = "/odom";
    pub const GPS: &str = "/gps/fix";
    pub const CAMERA: &str = "/camera/compressed";
}

/// Generator options.
#[derive(Debug, Clone, Copy)]
pub struct AmrOptions {
    /// Mission length in seconds.
    pub duration_s: f64,
    /// Lidar beams per sweep.
    pub beams: usize,
    /// Compressed frame size in bytes.
    pub frame_bytes: usize,
    pub seed: u64,
    pub start: Time,
    pub writer: BagWriterOptions,
}

impl Default for AmrOptions {
    fn default() -> Self {
        AmrOptions {
            duration_s: 60.0,
            beams: 720,
            frame_bytes: 24 * 1024,
            seed: 0xA312,
            start: Time::new(1_000, 0),
            writer: BagWriterOptions::default(),
        }
    }
}

/// Summary of a generated AMR bag.
#[derive(Debug, Clone)]
pub struct AmrBag {
    pub message_count: u64,
    pub file_len: u64,
    pub per_topic_counts: Vec<(&'static str, u64)>,
}

const RATES: [(&str, f64); 4] =
    [(topic::SCAN, 15.0), (topic::ODOM, 50.0), (topic::GPS, 5.0), (topic::CAMERA, 10.0)];

/// Generate an AMR mission bag at `path`.
pub fn generate_amr_bag<S: Storage>(
    storage: &S,
    path: &str,
    opts: &AmrOptions,
    ctx: &mut IoCtx,
) -> BagResult<AmrBag> {
    let mut w = BagWriter::create(storage, path, opts.writer, ctx)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Event interleaver over the four streams.
    let mut next: Vec<(usize, u64)> = RATES
        .iter()
        .enumerate()
        .map(|(i, _)| (i, opts.start.as_nanos() + i as u64 * 997))
        .collect();
    let end_ns = opts.start.as_nanos() + (opts.duration_s * 1e9) as u64;
    let mut counts = [0u64; 4];
    // Simulated robot state integrated over time.
    let (mut x, mut y, mut heading) = (0.0f64, 0.0f64, 0.0f64);

    loop {
        let (si, t_ns) = *next.iter().min_by_key(|(_, t)| *t).unwrap();
        if t_ns >= end_ns {
            break;
        }
        let t = Time::from_nanos(t_ns);
        match si {
            0 => {
                let mut scan = LaserScan::default();
                scan.header.seq = counts[0] as u32;
                scan.header.stamp = t;
                scan.header.frame_id = "laser".into();
                scan.angle_min = -std::f32::consts::PI;
                scan.angle_max = std::f32::consts::PI;
                scan.angle_increment = (2.0 * std::f32::consts::PI) / opts.beams as f32;
                scan.range_min = 0.1;
                scan.range_max = 30.0;
                scan.ranges = (0..opts.beams)
                    .map(|b| 2.0 + ((b as f32 * 0.13 + counts[0] as f32 * 0.05).sin() + 1.0) * 8.0)
                    .collect();
                w.write_ros_message(topic::SCAN, t, &scan, ctx)?;
            }
            1 => {
                // Integrate a wandering trajectory.
                heading += rng.random_range(-0.02..0.02);
                x += 0.02 * heading.cos();
                y += 0.02 * heading.sin();
                let mut odom = Odometry::default();
                odom.header.seq = counts[1] as u32;
                odom.header.stamp = t;
                odom.header.frame_id = "odom".into();
                odom.child_frame_id = "base_link".into();
                odom.pose.position.x = x;
                odom.pose.position.y = y;
                odom.twist.linear.x = 1.0;
                odom.twist.angular.z = heading;
                odom.pose_covariance[0] = 0.01;
                w.write_ros_message(topic::ODOM, t, &odom, ctx)?;
            }
            2 => {
                let mut fix = NavSatFix::default();
                fix.header.seq = counts[2] as u32;
                fix.header.stamp = t;
                fix.header.frame_id = "gps".into();
                fix.status = NavSatStatus::Fix;
                fix.service = 1;
                fix.latitude = 31.1791 + y * 1e-5;
                fix.longitude = 121.5907 + x * 1e-5;
                fix.altitude = 12.0;
                fix.position_covariance[0] = 2.0;
                w.write_ros_message(topic::GPS, t, &fix, ctx)?;
            }
            3 => {
                let mut img = CompressedImage::default();
                img.header.seq = counts[3] as u32;
                img.header.stamp = t;
                img.header.frame_id = "camera".into();
                img.format = "jpeg".into();
                let mut data = vec![0u8; opts.frame_bytes];
                rng.fill_bytes(&mut data);
                data[..2].copy_from_slice(&[0xFF, 0xD8]); // JPEG SOI
                img.data = data;
                w.write_ros_message(topic::CAMERA, t, &img, ctx)?;
            }
            _ => unreachable!(),
        }
        counts[si] += 1;
        let period = (1e9 / RATES[si].1) as u64;
        next[si].1 = t_ns + period;
    }

    let summary = w.close(ctx)?;
    Ok(AmrBag {
        message_count: summary.message_count,
        file_len: summary.file_len,
        per_topic_counts: RATES
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (*name, counts[i]))
            .collect(),
    })
}

/// The AMR "dock-approach replay" analysis: odometry + lidar in a short
/// window around a docking event — a realistic time-range query mix.
pub fn dock_approach_topics() -> Vec<&'static str> {
    vec![topic::ODOM, topic::SCAN]
}

/// The AMR window used by examples/tests: `[start+20 s, start+30 s)`.
pub fn dock_window(start: Time) -> (Time, Time) {
    (start + RosDuration::from_sec_f64(20.0), start + RosDuration::from_sec_f64(30.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::RosMessage;
    use rosbag::BagReader;
    use simfs::MemStorage;

    fn small() -> AmrOptions {
        AmrOptions {
            duration_s: 10.0,
            beams: 90,
            frame_bytes: 2048,
            writer: BagWriterOptions { chunk_size: 32 * 1024, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn rates_hold() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bag = generate_amr_bag(&fs, "/amr.bag", &small(), &mut ctx).unwrap();
        let get = |n: &str| bag.per_topic_counts.iter().find(|(t, _)| *t == n).unwrap().1;
        // Rates hold to within one event (period rounding at the horizon).
        let close = |got: u64, want: u64| (got as i64 - want as i64).abs() <= 1;
        assert!(close(get(topic::ODOM), 500), "odom {}", get(topic::ODOM)); // 50 Hz x 10 s
        assert!(close(get(topic::SCAN), 150), "scan {}", get(topic::SCAN));
        assert!(close(get(topic::GPS), 50), "gps {}", get(topic::GPS));
        assert!(close(get(topic::CAMERA), 100), "camera {}", get(topic::CAMERA));
    }

    #[test]
    fn messages_decode_and_trajectory_integrates() {
        use ros_msgs::nav_msgs::Odometry;
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        generate_amr_bag(&fs, "/amr.bag", &small(), &mut ctx).unwrap();
        let r = BagReader::open(&fs, "/amr.bag", &mut ctx).unwrap();
        let odoms = r.read_messages(&[topic::ODOM], &mut ctx).unwrap();
        let first = Odometry::from_bytes(&odoms[0].data).unwrap();
        let last = Odometry::from_bytes(&odoms[odoms.len() - 1].data).unwrap();
        // The robot moved.
        let dist = ((last.pose.position.x - first.pose.position.x).powi(2)
            + (last.pose.position.y - first.pose.position.y).powi(2))
        .sqrt();
        assert!(dist > 1.0, "robot barely moved: {dist}");
    }

    #[test]
    fn deterministic() {
        let fs1 = MemStorage::new();
        let fs2 = MemStorage::new();
        let mut ctx = IoCtx::new();
        generate_amr_bag(&fs1, "/a.bag", &small(), &mut ctx).unwrap();
        generate_amr_bag(&fs2, "/a.bag", &small(), &mut ctx).unwrap();
        assert_eq!(
            fs1.read_all("/a.bag", &mut ctx).unwrap(),
            fs2.read_all("/a.bag", &mut ctx).unwrap()
        );
    }

    #[test]
    fn bora_pipeline_handles_amr_family() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bag = generate_amr_bag(&fs, "/amr.bag", &small(), &mut ctx).unwrap();
        bora::organizer::duplicate(
            &fs,
            "/amr.bag",
            &fs,
            "/c",
            &bora::OrganizerOptions::default(),
            &mut ctx,
        )
        .unwrap();
        let b = bora::BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        assert_eq!(b.verify(&mut ctx).unwrap(), bag.message_count);
        let (s, e) = dock_window(Time::new(1_000, 0));
        let msgs = b.read_topics_time(&dock_approach_topics(), s, e, &mut ctx).unwrap();
        // Window larger than mission? 10 s mission, window at +20 s: empty.
        assert!(msgs.is_empty());
        let (s, e) = (Time::new(1_002, 0), Time::new(1_004, 0));
        let msgs = b.read_topics_time(&dock_approach_topics(), s, e, &mut ctx).unwrap();
        // (50 + 15) Hz x 2 s, within rounding.
        assert!((128..=132).contains(&msgs.len()), "got {}", msgs.len());
    }
}
