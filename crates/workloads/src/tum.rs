//! The Handheld-SLAM bag family (paper Table II).
//!
//! Composition of the paper's 2.9 GB bag:
//!
//! | Id | Topic                       | Messages | Data    |
//! |----|-----------------------------|----------|---------|
//! | A  | `/camera/depth/image`       | 1,429    | 1.64 GB |
//! | B  | `/camera/rgb/image_color`   | 1,431    | 1.23 GB |
//! | C  | `/camera/rgb/camera_info`   | 1,432    | 594 KB  |
//! | D  | `/camera/depth/camera_info` | 1,430    | 594 KB  |
//! | E  | `/cortex_marker_array`      | 14,487   | 8.4 MB  |
//! | F  | `/imu`                      | 24,367   | 8.4 MB  |
//! | G  | `/tf`                       | 16,411   | 3.6 MB  |
//!
//! Two scale knobs:
//! * `count_scale` grows the bag the way real bags grow — longer
//!   recordings, more messages (2.9 GB → 21 GB ≈ `count_scale` 7.24).
//! * `payload_scale` shrinks per-message payloads uniformly so experiment
//!   runs fit in RAM; it preserves message counts, rates, interleaving,
//!   and byte *shares*, so baseline-vs-BORA ratios are preserved (both
//!   systems' transfer terms shrink by the same factor).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ros_msgs::geometry_msgs::{TransformStamped, Vector3};
use ros_msgs::sensor_msgs::{CameraInfo, Image, Imu};
use ros_msgs::std_msgs::ColorRgba;
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::visualization_msgs::{Marker, MarkerArray, MarkerType};
use ros_msgs::{RosDuration, Time};
use rosbag::{BagResult, BagWriter, BagWriterOptions};
use simfs::{IoCtx, Storage};

/// Topic name constants (Table II ids A–G).
pub mod topic {
    pub const DEPTH_IMAGE: &str = "/camera/depth/image";
    pub const RGB_IMAGE: &str = "/camera/rgb/image_color";
    pub const RGB_CAMERA_INFO: &str = "/camera/rgb/camera_info";
    pub const DEPTH_CAMERA_INFO: &str = "/camera/depth/camera_info";
    pub const MARKER_ARRAY: &str = "/cortex_marker_array";
    pub const IMU: &str = "/imu";
    pub const TF: &str = "/tf";
}

/// Recording length of the 2.9 GB bag. 1,429 depth frames at TUM's ~30 Hz
/// RGB-D rate ≈ 48 s.
pub const BASE_DURATION_S: f64 = 48.0;

/// One topic's generation spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicSpec {
    pub id: char,
    pub name: &'static str,
    /// Message count in the 2.9 GB base bag.
    pub base_count: u64,
    /// Total payload bytes in the base bag (Table II's "Data size").
    pub base_bytes: u64,
}

impl TopicSpec {
    /// Average payload size per message.
    pub fn avg_payload(&self) -> u64 {
        self.base_bytes / self.base_count
    }
}

/// Table II, verbatim.
pub const TUM_TOPICS: [TopicSpec; 7] = [
    TopicSpec { id: 'A', name: topic::DEPTH_IMAGE, base_count: 1_429, base_bytes: 1_640_000_000 },
    TopicSpec { id: 'B', name: topic::RGB_IMAGE, base_count: 1_431, base_bytes: 1_230_000_000 },
    TopicSpec { id: 'C', name: topic::RGB_CAMERA_INFO, base_count: 1_432, base_bytes: 594_000 },
    TopicSpec { id: 'D', name: topic::DEPTH_CAMERA_INFO, base_count: 1_430, base_bytes: 594_000 },
    TopicSpec { id: 'E', name: topic::MARKER_ARRAY, base_count: 14_487, base_bytes: 8_400_000 },
    TopicSpec { id: 'F', name: topic::IMU, base_count: 24_367, base_bytes: 8_400_000 },
    TopicSpec { id: 'G', name: topic::TF, base_count: 16_411, base_bytes: 3_600_000 },
];

/// Spec lookup by Table II id.
pub fn spec(id: char) -> &'static TopicSpec {
    TUM_TOPICS
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown Table II topic id '{id}'"))
}

/// Generator options.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Bag-size family: 1.0 = the 2.9 GB bag, 7.24 ≈ the 21 GB bag.
    pub count_scale: f64,
    /// Uniform payload shrink factor (1.0 = paper-size payloads).
    pub payload_scale: f64,
    pub seed: u64,
    /// Recording start time (robots in a swarm start together).
    pub start: Time,
    pub writer: BagWriterOptions,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            count_scale: 1.0,
            payload_scale: 1.0,
            seed: 0xB0_4A,
            start: Time::new(100, 0),
            writer: BagWriterOptions::default(),
        }
    }
}

impl GenOptions {
    /// Options for a bag of roughly `gb` logical gigabytes, with payloads
    /// shrunk by `payload_scale` to keep the run in RAM.
    pub fn for_gb(gb: f64, payload_scale: f64, seed: u64) -> Self {
        GenOptions { count_scale: gb / 2.9, payload_scale, seed, ..Default::default() }
    }

    /// Approximate real bytes this configuration will write.
    pub fn approx_bytes(&self) -> u64 {
        let logical: u64 = TUM_TOPICS.iter().map(|t| t.base_bytes).sum();
        ((logical as f64) * self.count_scale * self.payload_scale) as u64
    }
}

/// Summary of a generated bag.
#[derive(Debug, Clone)]
pub struct TumBag {
    pub path: String,
    pub file_len: u64,
    pub message_count: u64,
    pub duration: RosDuration,
    pub per_topic_counts: Vec<(&'static str, u64)>,
}

/// One pending emission in the interleaver.
struct Stream {
    spec: &'static TopicSpec,
    remaining: u64,
    period_ns: u64,
    next_ns: u64,
    seq: u32,
}

/// Generate a Handheld-SLAM-shaped bag at `path`.
///
/// Messages are emitted strictly in timestamp order (as `rosbag record`
/// writes them), with the per-topic rates implied by Table II.
pub fn generate_bag<S: Storage>(
    storage: &S,
    path: &str,
    opts: &GenOptions,
    ctx: &mut IoCtx,
) -> BagResult<TumBag> {
    let mut writer = BagWriter::create(storage, path, opts.writer, ctx)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let duration_ns = (BASE_DURATION_S * opts.count_scale * 1e9) as u64;
    let start_ns = opts.start.as_nanos();
    let mut streams: Vec<Stream> = TUM_TOPICS
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let count = ((spec.base_count as f64) * opts.count_scale).round().max(1.0) as u64;
            Stream {
                spec,
                remaining: count,
                period_ns: duration_ns / count,
                // Stagger topic phases deterministically so messages
                // interleave rather than burst.
                next_ns: start_ns + (i as u64 * 1_000_037),
                seq: 0,
            }
        })
        .collect();

    let mut per_topic_counts: Vec<(&'static str, u64)> =
        TUM_TOPICS.iter().map(|t| (t.name, 0u64)).collect();
    let mut total = 0u64;
    let mut last_ns = start_ns;

    // Next emission = stream with the earliest next_ns.
    while let Some(si) = streams
        .iter()
        .enumerate()
        .filter(|(_, s)| s.remaining > 0)
        .min_by_key(|(_, s)| s.next_ns)
        .map(|(i, _)| i)
    {
        let (name, t) = {
            let s = &mut streams[si];
            let t = Time::from_nanos(s.next_ns);
            emit_message(&mut writer, s.spec, s.seq, t, opts.payload_scale, &mut rng, ctx)?;
            s.seq += 1;
            s.remaining -= 1;
            s.next_ns += s.period_ns;
            (s.spec.name, t)
        };
        per_topic_counts.iter_mut().find(|(n, _)| *n == name).unwrap().1 += 1;
        total += 1;
        last_ns = last_ns.max(t.as_nanos());
    }

    let summary = writer.close(ctx)?;
    Ok(TumBag {
        path: path.to_owned(),
        file_len: summary.file_len,
        message_count: total,
        duration: RosDuration::from_nanos(last_ns - start_ns),
        per_topic_counts,
    })
}

/// Payload byte target for one message of `spec` under `payload_scale`.
fn payload_target(spec: &TopicSpec, payload_scale: f64) -> usize {
    (((spec.avg_payload() as f64) * payload_scale).round() as usize).max(16)
}

fn emit_message<S: Storage>(
    writer: &mut BagWriter<S>,
    spec: &'static TopicSpec,
    seq: u32,
    t: Time,
    payload_scale: f64,
    rng: &mut StdRng,
    ctx: &mut IoCtx,
) -> BagResult<()> {
    match spec.id {
        'A' | 'B' => {
            let depth = spec.id == 'A';
            let target = payload_target(spec, payload_scale);
            // Square-ish frame with the right byte volume.
            let bpp: usize = if depth { 4 } else { 3 };
            let width = (((target / bpp) as f64).sqrt() as usize).max(2);
            let height = (target / (width * bpp)).max(1);
            let mut data = vec![0u8; width * height * bpp];
            rng.fill_bytes(&mut data);
            let mut img = Image {
                height: height as u32,
                width: width as u32,
                encoding: if depth { "32FC1".into() } else { "rgb8".into() },
                is_bigendian: 0,
                step: (width * bpp) as u32,
                data,
                ..Default::default()
            };
            img.header.seq = seq;
            img.header.stamp = t;
            img.header.frame_id = if depth { "camera_depth".into() } else { "camera_rgb".into() };
            writer.write_ros_message(spec.name, t, &img, ctx)
        }
        'C' | 'D' => {
            let mut ci = CameraInfo::default();
            ci.header.seq = seq;
            ci.header.stamp = t;
            ci.header.frame_id = "camera".into();
            ci.height = 480;
            ci.width = 640;
            ci.distortion_model = "plumb_bob".into();
            ci.d = vec![0.2624, -0.9531, -0.0054, 0.0026, 1.1633];
            ci.k = [517.3, 0.0, 318.6, 0.0, 516.5, 255.3, 0.0, 0.0, 1.0];
            ci.r = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
            ci.p[0] = 517.3;
            writer.write_ros_message(spec.name, t, &ci, ctx)
        }
        'E' => {
            let mut arr = MarkerArray::default();
            // ~608 B/message: two small markers.
            for m in 0..2 {
                let mut marker = Marker::default();
                marker.header.seq = seq;
                marker.header.stamp = t;
                marker.header.frame_id = "map".into();
                marker.ns = "cortex".into();
                marker.id = (seq as i32) * 2 + m;
                marker.marker_type = MarkerType::Sphere;
                marker.scale = Vector3::new(0.05, 0.05, 0.05);
                marker.color = ColorRgba { r: 0.9, g: 0.1, b: 0.1, a: 1.0 };
                marker.pose.position.x = next_f64(rng);
                marker.pose.position.y = next_f64(rng);
                marker.pose.position.z = next_f64(rng);
                arr.markers.push(marker);
            }
            writer.write_ros_message(spec.name, t, &arr, ctx)
        }
        'F' => {
            let mut imu = Imu::default();
            imu.header.seq = seq;
            imu.header.stamp = t;
            imu.header.frame_id = "imu_link".into();
            imu.angular_velocity = Vector3::new(next_f64(rng), next_f64(rng), next_f64(rng));
            imu.linear_acceleration = Vector3::new(next_f64(rng), next_f64(rng), 9.81);
            imu.orientation_covariance[0] = 0.01;
            writer.write_ros_message(spec.name, t, &imu, ctx)
        }
        'G' => {
            let mut tf = TfMessage::default();
            let mut ts = TransformStamped::default();
            ts.header.seq = seq;
            ts.header.stamp = t;
            ts.header.frame_id = "odom".into();
            ts.child_frame_id = "base_link".into();
            ts.transform.translation = Vector3::new(next_f64(rng), next_f64(rng), 0.0);
            tf.transforms.push(ts);
            let mut ts2 = tf.transforms[0].clone();
            ts2.header.frame_id = "base_link".into();
            ts2.child_frame_id = "camera".into();
            tf.transforms.push(ts2);
            writer.write_ros_message(spec.name, t, &tf, ctx)
        }
        other => unreachable!("unknown topic id {other}"),
    }
}

fn next_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() % 10_000) as f64 / 1_000.0 - 5.0
}

/// Generate the 49,233 TF messages of the paper's Fig. 2 experiment
/// (extracted from the Handheld-SLAM bag): realistic stamps and frames.
pub fn fig2_tf_messages(count: usize, seed: u64) -> Vec<TransformStamped> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let start = Time::new(100, 0).as_nanos();
    for i in 0..count {
        let mut ts = TransformStamped::default();
        ts.header.seq = i as u32;
        ts.header.stamp = Time::from_nanos(start + i as u64 * 2_000_000);
        ts.header.frame_id = "odom".into();
        ts.child_frame_id = if i % 2 == 0 { "base_link".into() } else { "camera".into() };
        ts.transform.translation = Vector3::new(next_f64(&mut rng), next_f64(&mut rng), 0.0);
        out.push(ts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::RosMessage;
    use simfs::MemStorage;

    #[test]
    fn table2_shares_are_faithful() {
        // >98% of bytes must be image data, as the paper stresses.
        let total: u64 = TUM_TOPICS.iter().map(|t| t.base_bytes).sum();
        let image: u64 = spec('A').base_bytes + spec('B').base_bytes;
        assert!(image as f64 / total as f64 > 0.98);
        // Total ≈ 2.9 GB.
        assert!((2_800_000_000..3_000_000_000).contains(&total));
    }

    fn small_opts() -> GenOptions {
        GenOptions {
            count_scale: 0.02,
            payload_scale: 0.01,
            seed: 7,
            writer: BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn generates_all_seven_topics_in_proportion() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bag = generate_bag(&fs, "/hs.bag", &small_opts(), &mut ctx).unwrap();
        assert_eq!(bag.per_topic_counts.len(), 7);
        let get = |name: &str| bag.per_topic_counts.iter().find(|(n, _)| *n == name).unwrap().1;
        // IMU is the highest-rate topic; images the lowest (ratios from
        // Table II survive scaling).
        assert!(get(topic::IMU) > get(topic::TF));
        assert!(get(topic::TF) > get(topic::RGB_IMAGE));
        let imu_expected = (24_367.0 * 0.02f64).round() as u64;
        assert_eq!(get(topic::IMU), imu_expected);
    }

    #[test]
    fn deterministic_across_runs() {
        let fs1 = MemStorage::new();
        let fs2 = MemStorage::new();
        let mut ctx = IoCtx::new();
        generate_bag(&fs1, "/a.bag", &small_opts(), &mut ctx).unwrap();
        generate_bag(&fs2, "/a.bag", &small_opts(), &mut ctx).unwrap();
        let a = fs1.read_all("/a.bag", &mut ctx).unwrap();
        let b = fs2.read_all("/a.bag", &mut ctx).unwrap();
        assert_eq!(ros_msgs::md5::hex_digest(&a), ros_msgs::md5::hex_digest(&b));
    }

    #[test]
    fn different_seed_different_payloads() {
        let fs1 = MemStorage::new();
        let fs2 = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut o2 = small_opts();
        o2.seed = 8;
        generate_bag(&fs1, "/a.bag", &small_opts(), &mut ctx).unwrap();
        generate_bag(&fs2, "/a.bag", &o2, &mut ctx).unwrap();
        let a = fs1.read_all("/a.bag", &mut ctx).unwrap();
        let b = fs2.read_all("/a.bag", &mut ctx).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_bag_opens_and_queries() {
        use rosbag::BagReader;
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let bag = generate_bag(&fs, "/hs.bag", &small_opts(), &mut ctx).unwrap();
        let r = BagReader::open(&fs, "/hs.bag", &mut ctx).unwrap();
        assert_eq!(r.index().message_count(), bag.message_count);
        let imu = r.read_messages(&[topic::IMU], &mut ctx).unwrap();
        assert_eq!(
            imu.len() as u64,
            bag.per_topic_counts.iter().find(|(n, _)| *n == topic::IMU).unwrap().1
        );
        // Payloads decode as typed messages.
        let msg = Imu::from_bytes(&imu[0].data).unwrap();
        assert_eq!(msg.linear_acceleration.z, 9.81);
    }

    #[test]
    fn timestamps_monotonic() {
        use rosbag::BagReader;
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        generate_bag(&fs, "/hs.bag", &small_opts(), &mut ctx).unwrap();
        let r = BagReader::open(&fs, "/hs.bag", &mut ctx).unwrap();
        let all_topics: Vec<&str> = TUM_TOPICS.iter().map(|t| t.name).collect();
        let msgs = r.read_messages(&all_topics, &mut ctx).unwrap();
        for w in msgs.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn fig2_messages_deterministic_and_stamped() {
        let a = fig2_tf_messages(100, 1);
        let b = fig2_tf_messages(100, 1);
        assert_eq!(a, b);
        assert!(a[99].header.stamp > a[0].header.stamp);
        let c = fig2_tf_messages(100, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn approx_bytes_tracks_scales() {
        let base = GenOptions::default().approx_bytes();
        let half = GenOptions { payload_scale: 0.5, ..Default::default() }.approx_bytes();
        assert!((half as f64 / base as f64 - 0.5).abs() < 0.01);
        let big = GenOptions { count_scale: 7.24, ..Default::default() }.approx_bytes();
        assert!((big as f64 / base as f64 - 7.24).abs() < 0.01);
    }
}
