//! Query-mix generator for the serving workload (`ext_serve`).
//!
//! Post-mission analysis traffic is *skewed*: most queries land on the
//! few containers recorded recently (yesterday's missions under active
//! analysis) while a long tail of archive containers sees occasional
//! hits. The generator models that with a two-tier distribution — a
//! small **hot set** receiving most of the traffic, the **cold rest**
//! sharing what remains uniformly — which is the regime where a
//! capacity-bounded handle cache either shines (capacity ≥ hot set) or
//! thrashes (capacity below it). Both regimes are worth measuring, so
//! the knobs are explicit rather than baked in.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What one query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// List topics (metadata-only).
    Topics,
    /// Container summary numbers (metadata-only).
    Stat,
    /// Read one topic over a short time window (data-touching).
    ReadWindow,
    /// Read one topic in full (data-heavy).
    ReadFull,
}

/// One generated query against container `container` (an index the
/// caller maps to a real container root).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub container: usize,
    pub kind: QueryKind,
    /// Topic selector: index into the container's (sorted) topic list,
    /// modulo its length — the generator does not need to know the
    /// actual topics.
    pub topic_index: usize,
    /// For [`QueryKind::ReadWindow`]: window start as a fraction of the
    /// container's time span, and the window's length as a fraction.
    pub window_start: f64,
    pub window_frac: f64,
}

/// Knobs for [`generate`].
#[derive(Debug, Clone)]
pub struct QueryMixOptions {
    /// Total containers addressable by the mix.
    pub containers: usize,
    /// How many of them form the hot set (first `hot_set` indices).
    pub hot_set: usize,
    /// Fraction of queries that target the hot set (e.g. `0.9`).
    pub hot_traffic: f64,
    /// Number of queries to generate.
    pub queries: usize,
    /// Mix of query kinds, as cumulative weights over
    /// `[Topics, Stat, ReadWindow, ReadFull]`. Defaults favour windowed
    /// reads — the op whose open-amortization matters most.
    pub kind_weights: [f64; 4],
    pub seed: u64,
    /// `Some(s)` replaces the two-tier hot/cold container pick with a
    /// Zipf(s) distribution over all `containers` (rank 0 hottest):
    /// `P(rank k) ∝ 1/(k+1)^s`. `s = 0` is uniform; `s ≈ 1` is classic
    /// web-trace skew; larger `s` concentrates harder. `None` (default)
    /// keeps the hot/cold behavior and `hot_set`/`hot_traffic` knobs.
    pub zipf_s: Option<f64>,
}

impl Default for QueryMixOptions {
    fn default() -> Self {
        QueryMixOptions {
            containers: 8,
            hot_set: 2,
            hot_traffic: 0.9,
            queries: 200,
            kind_weights: [0.15, 0.15, 0.55, 0.15],
            seed: 0x5e12e,
            zipf_s: None,
        }
    }
}

/// Cumulative Zipf(s) mass over ranks `0..n`, normalized to end at 1.
/// Inversion sampling against this table costs one binary search per
/// query, independent of `n`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 0..n {
        acc += 1.0 / ((k + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Deterministically generate a skewed query mix.
pub fn generate(opts: &QueryMixOptions) -> Vec<Query> {
    assert!(opts.containers > 0, "need at least one container");
    assert!(opts.hot_set > 0 && opts.hot_set <= opts.containers, "hot set must be 1..=containers");
    let weight_sum: f64 = opts.kind_weights.iter().sum();
    assert!(weight_sum > 0.0, "kind weights must not all be zero");

    let zipf = opts.zipf_s.map(|s| {
        assert!(s >= 0.0 && s.is_finite(), "zipf_s must be finite and >= 0, got {s}");
        zipf_cdf(opts.containers, s)
    });

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut queries = Vec::with_capacity(opts.queries);
    for _ in 0..opts.queries {
        let container = if let Some(cdf) = &zipf {
            let u = rng.random_range(0.0..1.0);
            cdf.partition_point(|&c| c <= u).min(opts.containers - 1)
        } else if opts.hot_set == opts.containers
            || rng.random_bool(opts.hot_traffic.clamp(0.0, 1.0))
        {
            rng.random_range(0..opts.hot_set)
        } else {
            rng.random_range(opts.hot_set..opts.containers)
        };
        let kind = {
            let mut pick = rng.random_range(0.0..weight_sum);
            let mut kind = QueryKind::ReadFull;
            for (i, w) in opts.kind_weights.iter().enumerate() {
                if pick < *w {
                    kind = [
                        QueryKind::Topics,
                        QueryKind::Stat,
                        QueryKind::ReadWindow,
                        QueryKind::ReadFull,
                    ][i];
                    break;
                }
                pick -= w;
            }
            kind
        };
        // Windows sit anywhere in the first 90% of the span and cover
        // 2-10% of it: small enough that open cost dominates a cold query.
        queries.push(Query {
            container,
            kind,
            topic_index: rng.random_range(0..64usize),
            window_start: rng.random_range(0.0..0.9),
            window_frac: rng.random_range(0.02..0.10),
        });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_skewed() {
        let opts = QueryMixOptions { queries: 2_000, ..QueryMixOptions::default() };
        let a = generate(&opts);
        let b = generate(&opts);
        assert_eq!(a, b, "same seed, same mix");

        let hot = a.iter().filter(|q| q.container < opts.hot_set).count();
        let frac = hot as f64 / a.len() as f64;
        assert!((0.85..=0.95).contains(&frac), "hot traffic {frac} should track hot_traffic=0.9");
        // Cold containers all get some traffic.
        for c in opts.hot_set..opts.containers {
            assert!(a.iter().any(|q| q.container == c), "container {c} never queried");
        }
    }

    #[test]
    fn all_kinds_appear_and_windows_are_sane() {
        let a = generate(&QueryMixOptions { queries: 1_000, ..QueryMixOptions::default() });
        for kind in [QueryKind::Topics, QueryKind::Stat, QueryKind::ReadWindow, QueryKind::ReadFull]
        {
            assert!(a.iter().any(|q| q.kind == kind), "{kind:?} missing from mix");
        }
        for q in &a {
            assert!((0.0..0.9).contains(&q.window_start));
            assert!((0.02..0.10).contains(&q.window_frac));
        }
    }

    #[test]
    fn zipf_mix_is_deterministic_per_seed() {
        let opts = QueryMixOptions {
            containers: 16,
            queries: 1_000,
            zipf_s: Some(1.1),
            ..QueryMixOptions::default()
        };
        assert_eq!(generate(&opts), generate(&opts), "same seed, same zipf mix");
        let other = generate(&QueryMixOptions { seed: 7, ..opts.clone() });
        assert_ne!(generate(&opts), other, "different seed, different mix");
    }

    #[test]
    fn zipf_rank_frequencies_decay() {
        let opts = QueryMixOptions {
            containers: 8,
            queries: 8_000,
            zipf_s: Some(1.0),
            ..QueryMixOptions::default()
        };
        let a = generate(&opts);
        let counts: Vec<usize> =
            (0..8).map(|c| a.iter().filter(|q| q.container == c).count()).collect();
        // Rank 0 carries the most traffic; expected share is
        // 1/H(8) ≈ 0.368 at s=1. Every rank still appears.
        assert!(counts[0] > counts[3] && counts[3] > counts[7], "{counts:?}");
        let frac0 = counts[0] as f64 / a.len() as f64;
        assert!((0.30..=0.45).contains(&frac0), "rank-0 share {frac0} off Zipf(1) expectation");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let opts = QueryMixOptions {
            containers: 4,
            queries: 4_000,
            zipf_s: Some(0.0),
            ..QueryMixOptions::default()
        };
        let a = generate(&opts);
        for c in 0..4 {
            let n = a.iter().filter(|q| q.container == c).count();
            assert!((800..=1200).contains(&n), "container {c} got {n}/4000 at s=0");
        }
    }

    #[test]
    fn hot_set_equal_to_containers_is_uniform() {
        let opts = QueryMixOptions {
            containers: 4,
            hot_set: 4,
            hot_traffic: 0.5,
            queries: 400,
            ..QueryMixOptions::default()
        };
        let a = generate(&opts);
        for c in 0..4 {
            assert!(a.iter().filter(|q| q.container == c).count() > 40);
        }
    }
}
