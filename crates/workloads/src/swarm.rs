//! Swarm workload generation (paper §IV.E).
//!
//! A robotic swarm produces one bag per robot, all recorded from the same
//! mission window (so a "Bullet Time" multi-angle reconstruction can pull
//! the same topic and time range from every bag). Each robot's bag has the
//! Handheld-SLAM composition but a distinct payload seed.
//!
//! Memory note (documented in DESIGN.md): the paper's largest case is 100
//! robots × 42 GB. Per-process work is identical across robots by
//! construction, so the harness materializes `distinct_bags` real bags and
//! assigns robot *i* to bag `i % distinct_bags`, while the declared
//! concurrency stays at the full swarm size — contention is modeled for
//! all N robots, memory only for the distinct shapes.

use rosbag::BagResult;
use simfs::{IoCtx, Storage};

use crate::tum::{generate_bag, GenOptions, TumBag};

/// A generated swarm.
#[derive(Debug, Clone)]
pub struct Swarm {
    /// Paths of the distinct materialized bags.
    pub bag_paths: Vec<String>,
    /// Number of robots the swarm represents.
    pub robots: usize,
    pub per_bag: Vec<TumBag>,
}

impl Swarm {
    /// The bag robot `i` analyzes.
    pub fn bag_for_robot(&self, robot: usize) -> &str {
        &self.bag_paths[robot % self.bag_paths.len()]
    }
}

/// Generate a swarm of `robots` robots under `dir`, materializing at most
/// `distinct_bags` real bags.
pub fn generate_swarm<S: Storage>(
    storage: &S,
    dir: &str,
    robots: usize,
    distinct_bags: usize,
    opts: &GenOptions,
    ctx: &mut IoCtx,
) -> BagResult<Swarm> {
    assert!(robots >= 1 && distinct_bags >= 1);
    let n = distinct_bags.min(robots);
    let mut bag_paths = Vec::with_capacity(n);
    let mut per_bag = Vec::with_capacity(n);
    for i in 0..n {
        let path = format!("{dir}/robot{i}.bag");
        let bag = generate_bag(
            storage,
            &path,
            &GenOptions { seed: opts.seed.wrapping_add(i as u64 * 0x9E37_79B9), ..*opts },
            ctx,
        )?;
        bag_paths.push(path);
        per_bag.push(bag);
    }
    Ok(Swarm { bag_paths, robots, per_bag })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosbag::BagWriterOptions;
    use simfs::MemStorage;

    fn tiny_opts(seed: u64) -> GenOptions {
        GenOptions {
            count_scale: 0.01,
            payload_scale: 0.01,
            seed,
            writer: BagWriterOptions { chunk_size: 32 * 1024, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn distinct_bags_materialized_and_mapped() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let swarm = generate_swarm(&fs, "/swarm", 10, 3, &tiny_opts(1), &mut ctx).unwrap();
        assert_eq!(swarm.bag_paths.len(), 3);
        assert_eq!(swarm.robots, 10);
        assert_eq!(swarm.bag_for_robot(0), "/swarm/robot0.bag");
        assert_eq!(swarm.bag_for_robot(4), "/swarm/robot1.bag");
        assert_eq!(swarm.bag_for_robot(9), "/swarm/robot0.bag");
    }

    #[test]
    fn robots_get_distinct_payloads() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        generate_swarm(&fs, "/swarm", 2, 2, &tiny_opts(5), &mut ctx).unwrap();
        let a = fs.read_all("/swarm/robot0.bag", &mut ctx).unwrap();
        let b = fs.read_all("/swarm/robot1.bag", &mut ctx).unwrap();
        assert_ne!(a, b);
        // Same shape though: equal message counts.
        let ra = rosbag::BagReader::open(&fs, "/swarm/robot0.bag", &mut ctx).unwrap();
        let rb = rosbag::BagReader::open(&fs, "/swarm/robot1.bag", &mut ctx).unwrap();
        assert_eq!(ra.index().message_count(), rb.index().message_count());
    }

    #[test]
    fn swarm_capped_by_robot_count() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let swarm = generate_swarm(&fs, "/swarm", 2, 8, &tiny_opts(2), &mut ctx).unwrap();
        assert_eq!(swarm.bag_paths.len(), 2);
    }
}
