//! Open-addressing hash index (linear probing), from scratch.
//!
//! The KV engine's primary index: maps a key digest to the record's
//! location in the data log. Implemented rather than borrowed from `std`
//! so the engine's index-maintenance work is explicit and measurable.

/// Slot value: location of a record in the data log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    pub offset: u64,
    pub len: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// 0 = empty (keys hashing to 0 are nudged to 1).
    digest: u64,
    loc: Location,
}

/// Linear-probing hash table keyed by a 64-bit key digest.
///
/// Resizes at 70% load. Deletion is not needed by the ingest workload and
/// is intentionally unsupported (Aerospike-style ingest benchmarks don't
/// delete either).
pub struct OpenHash {
    slots: Vec<Option<Slot>>,
    mask: usize,
    len: usize,
}

impl Default for OpenHash {
    fn default() -> Self {
        Self::with_capacity(16)
    }
}

/// FNV-1a over the key bytes, nudged away from the empty sentinel.
pub fn digest(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

impl OpenHash {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        OpenHash { slots: vec![None; cap], mask: cap - 1, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert or overwrite; returns the previous location if the digest
    /// was present.
    pub fn insert(&mut self, digest: u64, loc: Location) -> Option<Location> {
        if (self.len + 1) * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mut i = (digest as usize) & self.mask;
        loop {
            match &mut self.slots[i] {
                Some(s) if s.digest == digest => {
                    let old = s.loc;
                    s.loc = loc;
                    return Some(old);
                }
                Some(_) => i = (i + 1) & self.mask,
                empty @ None => {
                    *empty = Some(Slot { digest, loc });
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    pub fn get(&self, digest: u64) -> Option<Location> {
        let mut i = (digest as usize) & self.mask;
        loop {
            match &self.slots[i] {
                Some(s) if s.digest == digest => return Some(s.loc),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert(slot.digest, slot.loc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get() {
        let mut h = OpenHash::default();
        let d = digest(b"tf:42");
        assert!(h.insert(d, Location { offset: 100, len: 75 }).is_none());
        assert_eq!(h.get(d), Some(Location { offset: 100, len: 75 }));
        assert_eq!(h.get(digest(b"tf:43")), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let mut h = OpenHash::default();
        let d = digest(b"k");
        h.insert(d, Location { offset: 0, len: 1 });
        let old = h.insert(d, Location { offset: 9, len: 2 });
        assert_eq!(old, Some(Location { offset: 0, len: 1 }));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut h = OpenHash::with_capacity(16);
        for i in 0..10_000u64 {
            let d = digest(format!("key-{i}").as_bytes());
            h.insert(d, Location { offset: i, len: i as u32 });
        }
        assert_eq!(h.len(), 10_000);
        for i in (0..10_000u64).step_by(97) {
            let d = digest(format!("key-{i}").as_bytes());
            assert_eq!(h.get(d), Some(Location { offset: i, len: i as u32 }), "key-{i}");
        }
    }

    #[test]
    fn digest_never_zero() {
        // The empty sentinel must be unreachable.
        for i in 0..1000 {
            assert_ne!(digest(format!("{i}").as_bytes()), 0);
        }
    }
}
