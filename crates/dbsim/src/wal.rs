//! Write-ahead log shared by the engines.
//!
//! Records are length-prefixed with an XOR-fold checksum; durability
//! policy (fsync every N appends) is configurable per engine and is the
//! main reason transactional stores lose Fig. 2's ingest race.

use simfs::{IoCtx, Storage};

use crate::engine::{DbError, DbResult};

/// XOR-fold checksum (deliberately simple; validates framing, not crypto).
fn checksum(data: &[u8]) -> u32 {
    let mut acc: u32 = 0x9E37_79B9;
    for chunk in data.chunks(4) {
        let mut w = [0u8; 4];
        w[..chunk.len()].copy_from_slice(chunk);
        acc = acc.rotate_left(5) ^ u32::from_le_bytes(w);
    }
    acc
}

/// Append-only WAL over any storage backend.
pub struct Wal<S> {
    storage: S,
    path: String,
    /// fsync every `sync_every` appends (1 = per-record durability).
    sync_every: u64,
    appended: u64,
}

impl<S: Storage> Wal<S> {
    pub fn create(storage: S, path: &str, sync_every: u64, ctx: &mut IoCtx) -> DbResult<Self> {
        storage.create(path, ctx)?;
        Ok(Wal { storage, path: path.to_owned(), sync_every: sync_every.max(1), appended: 0 })
    }

    /// Append one record; fsync according to policy.
    pub fn append(&mut self, record: &[u8], ctx: &mut IoCtx) -> DbResult<()> {
        let mut framed = Vec::with_capacity(record.len() + 8);
        framed.extend_from_slice(&(record.len() as u32).to_le_bytes());
        framed.extend_from_slice(&checksum(record).to_le_bytes());
        framed.extend_from_slice(record);
        self.storage.append(&self.path, &framed, ctx)?;
        self.appended += 1;
        if self.appended.is_multiple_of(self.sync_every) {
            self.storage.flush(&self.path, ctx)?;
        }
        Ok(())
    }

    /// Final durability barrier.
    pub fn sync(&mut self, ctx: &mut IoCtx) -> DbResult<()> {
        self.storage.flush(&self.path, ctx)?;
        Ok(())
    }

    pub fn records_appended(&self) -> u64 {
        self.appended
    }

    /// Replay the log, validating frames; returns the record payloads.
    /// Used by recovery tests to prove the WAL is a real WAL.
    pub fn replay(storage: &S, path: &str, ctx: &mut IoCtx) -> DbResult<Vec<Vec<u8>>> {
        let bytes = storage.read_all(path, ctx)?;
        let mut out = Vec::new();
        let mut cur = &bytes[..];
        while !cur.is_empty() {
            if cur.len() < 8 {
                return Err(DbError::Parse("truncated WAL frame header".into()));
            }
            let len = u32::from_le_bytes(cur[0..4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(cur[4..8].try_into().unwrap());
            if cur.len() < 8 + len {
                return Err(DbError::Parse("truncated WAL frame body".into()));
            }
            let body = &cur[8..8 + len];
            if checksum(body) != sum {
                return Err(DbError::Parse("WAL checksum mismatch".into()));
            }
            out.push(body.to_vec());
            cur = &cur[8 + len..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;

    #[test]
    fn append_replay_round_trip() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut wal = Wal::create(&fs, "/wal", 4, &mut ctx).unwrap();
        for i in 0..10u32 {
            wal.append(&i.to_le_bytes(), &mut ctx).unwrap();
        }
        wal.sync(&mut ctx).unwrap();
        let records = Wal::replay(&&fs, "/wal", &mut ctx).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[7], 7u32.to_le_bytes());
    }

    #[test]
    fn corruption_detected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut wal = Wal::create(&fs, "/wal", 1, &mut ctx).unwrap();
        wal.append(b"hello", &mut ctx).unwrap();
        // Flip a payload byte.
        let mut bytes = fs.read_all("/wal", &mut ctx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs.remove_file("/wal", &mut ctx).unwrap();
        fs.append("/wal", &bytes, &mut ctx).unwrap();
        assert!(Wal::replay(&&fs, "/wal", &mut ctx).is_err());
    }

    #[test]
    fn sync_policy_counts_flushes() {
        use simfs::{DeviceModel, TimedStorage};
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        let mut wal = Wal::create(&fs, "/wal", 1, &mut ctx).unwrap();
        for _ in 0..5 {
            wal.append(b"x", &mut ctx).unwrap();
        }
        assert_eq!(ctx.stats.flushes, 5, "per-record fsync policy");
    }
}
