//! PostgreSQL-like SQL engine: text protocol, tokenizer + parser, B-tree
//! primary index, WAL with group-commit durability.
//!
//! The client really renders SQL text and the server really parses it —
//! that per-statement text handling, plus the commit-time fsync, is where
//! a relational store loses the ingest race in Fig. 2.

use ros_msgs::geometry_msgs::TransformStamped;
use simfs::{IoCtx, Storage};

use crate::btree::BTree;
use crate::engine::{DbError, DbResult, InsertEngine, RpcModel};
use crate::wal::Wal;

// ---------------------------------------------------------------------------
// SQL text layer
// ---------------------------------------------------------------------------

/// Tokens of our INSERT subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Semi,
}

/// Tokenize an SQL string (subset: idents, numbers, single-quoted strings,
/// punctuation).
pub fn tokenize(sql: &str) -> DbResult<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = sql.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            ';' => {
                chars.next();
                out.push(Token::Semi);
            }
            '*' => {
                chars.next();
                out.push(Token::Ident("*".to_owned()));
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '\'')) => break,
                        Some((_, ch)) => s.push(ch),
                        None => return Err(DbError::Parse("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while let Some(&(j, ch)) = chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end = j + ch.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..end].to_ascii_lowercase()));
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                let mut end = i;
                while let Some(&(j, ch)) = chars.peek() {
                    if ch.is_ascii_digit()
                        || ch == '.'
                        || ch == '-'
                        || ch == 'e'
                        || ch == 'E'
                        || ch == '+'
                    {
                        end = j + ch.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = sql[start..end]
                    .parse()
                    .map_err(|_| DbError::Parse(format!("bad number '{}'", &sql[start..end])))?;
                out.push(Token::Number(n));
            }
            other => return Err(DbError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

/// A parsed `INSERT INTO <table> (cols...) VALUES (vals...)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    pub columns: Vec<String>,
    pub values: Vec<SqlValue>,
}

/// A parsed `SELECT <cols|*> FROM <table> [WHERE ts BETWEEN a AND b]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub table: String,
    /// Empty = `*`.
    pub columns: Vec<String>,
    /// Inclusive timestamp range, if a WHERE clause is present.
    pub ts_between: Option<(u64, u64)>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    Number(f64),
    Str(String),
}

/// Parse the INSERT subset.
pub fn parse_insert(tokens: &[Token]) -> DbResult<InsertStmt> {
    let mut it = tokens.iter();
    let expect_ident = |t: Option<&Token>, what: &str| -> DbResult<String> {
        match t {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(DbError::Parse(format!("expected {what}, got {other:?}"))),
        }
    };
    if expect_ident(it.next(), "INSERT")? != "insert" {
        return Err(DbError::Parse("statement must start with INSERT".into()));
    }
    if expect_ident(it.next(), "INTO")? != "into" {
        return Err(DbError::Parse("expected INTO".into()));
    }
    let table = expect_ident(it.next(), "table name")?;

    if it.next() != Some(&Token::LParen) {
        return Err(DbError::Parse("expected '(' before column list".into()));
    }
    let mut columns = Vec::new();
    loop {
        columns.push(expect_ident(it.next(), "column name")?);
        match it.next() {
            Some(Token::Comma) => continue,
            Some(Token::RParen) => break,
            other => return Err(DbError::Parse(format!("bad column list near {other:?}"))),
        }
    }

    if expect_ident(it.next(), "VALUES")? != "values" {
        return Err(DbError::Parse("expected VALUES".into()));
    }
    if it.next() != Some(&Token::LParen) {
        return Err(DbError::Parse("expected '(' before value list".into()));
    }
    let mut values = Vec::new();
    loop {
        match it.next() {
            Some(Token::Number(n)) => values.push(SqlValue::Number(*n)),
            Some(Token::Str(s)) => values.push(SqlValue::Str(s.clone())),
            other => return Err(DbError::Parse(format!("bad value near {other:?}"))),
        }
        match it.next() {
            Some(Token::Comma) => continue,
            Some(Token::RParen) => break,
            other => return Err(DbError::Parse(format!("bad value list near {other:?}"))),
        }
    }
    if values.len() != columns.len() {
        return Err(DbError::Parse(format!(
            "{} columns but {} values",
            columns.len(),
            values.len()
        )));
    }
    Ok(InsertStmt { table, columns, values })
}

/// Parse the SELECT subset: `SELECT a, b FROM t` or
/// `SELECT * FROM t WHERE ts BETWEEN 1 AND 2`.
pub fn parse_select(tokens: &[Token]) -> DbResult<SelectStmt> {
    let mut it = tokens.iter().peekable();
    let expect_ident = |t: Option<&Token>, what: &str| -> DbResult<String> {
        match t {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(DbError::Parse(format!("expected {what}, got {other:?}"))),
        }
    };
    if expect_ident(it.next(), "SELECT")? != "select" {
        return Err(DbError::Parse("statement must start with SELECT".into()));
    }
    let mut columns = Vec::new();
    loop {
        match it.next() {
            Some(Token::Ident(c)) if c == "from" => break,
            Some(Token::Ident(c)) => {
                if c != "*" {
                    columns.push(c.clone());
                }
            }
            Some(Token::Comma) => continue,
            other => return Err(DbError::Parse(format!("bad column list near {other:?}"))),
        }
        if matches!(it.peek(), Some(Token::Ident(k)) if k == "from") {
            it.next();
            break;
        }
    }
    let table = expect_ident(it.next(), "table name")?;
    let mut ts_between = None;
    if let Some(Token::Ident(w)) = it.peek() {
        if w == "where" {
            it.next();
            if expect_ident(it.next(), "ts")? != "ts" {
                return Err(DbError::Parse("only `ts` predicates are supported".into()));
            }
            if expect_ident(it.next(), "BETWEEN")? != "between" {
                return Err(DbError::Parse("expected BETWEEN".into()));
            }
            let lo = match it.next() {
                Some(Token::Number(n)) => *n as u64,
                other => return Err(DbError::Parse(format!("bad lower bound {other:?}"))),
            };
            if expect_ident(it.next(), "AND")? != "and" {
                return Err(DbError::Parse("expected AND".into()));
            }
            let hi = match it.next() {
                Some(Token::Number(n)) => *n as u64,
                other => return Err(DbError::Parse(format!("bad upper bound {other:?}"))),
            };
            ts_between = Some((lo, hi));
        }
    }
    Ok(SelectStmt { table, columns, ts_between })
}

/// Render the INSERT for a TF message — the client-side text encoding the
/// paper's DB alternative forces on every message.
pub fn render_tf_insert(msg: &TransformStamped) -> String {
    format!(
        "INSERT INTO tf (ts, frame_id, child_frame_id, tx, ty, tz, qx, qy, qz, qw) \
         VALUES ({}, '{}', '{}', {}, {}, {}, {}, {}, {}, {});",
        msg.header.stamp.as_nanos(),
        msg.header.frame_id,
        msg.child_frame_id,
        msg.transform.translation.x,
        msg.transform.translation.y,
        msg.transform.translation.z,
        msg.transform.rotation.x,
        msg.transform.rotation.y,
        msg.transform.rotation.z,
        msg.transform.rotation.w,
    )
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

const TF_COLUMNS: [&str; 10] =
    ["ts", "frame_id", "child_frame_id", "tx", "ty", "tz", "qx", "qy", "qz", "qw"];

/// The relational engine.
pub struct SqlStore<S> {
    storage: S,
    heap_path: String,
    wal: Wal<S>,
    /// Primary index: timestamp+seq key → heap offset.
    primary: BTree,
    rpc: RpcModel,
    next_row_id: u64,
}

impl<S: Storage + Clone> SqlStore<S> {
    pub fn create(storage: S, dir: &str, ctx: &mut IoCtx) -> DbResult<Self> {
        storage.mkdir_all(dir, ctx)?;
        let heap_path = format!("{dir}/heap");
        storage.create(&heap_path, ctx)?;
        // Statements commit through the WAL with a short group-commit
        // window (as PostgreSQL's commit_delay batches concurrent
        // ingest), so the fsync cost is amortized over a few rows.
        let wal = Wal::create(storage.clone(), &format!("{dir}/wal"), 4, ctx)?;
        Ok(SqlStore {
            storage,
            heap_path,
            wal,
            primary: BTree::new(),
            rpc: RpcModel::loopback_binary(),
            next_row_id: 1,
        })
    }

    /// Row count via the primary index.
    pub fn row_count(&self) -> u64 {
        self.primary.len()
    }

    /// Execute one INSERT statement (text in, row stored).
    pub fn execute_insert(&mut self, sql: &str, ctx: &mut IoCtx) -> DbResult<u64> {
        self.rpc.charge(ctx);
        let tokens = tokenize(sql)?;
        let stmt = parse_insert(&tokens)?;
        if stmt.table != "tf" {
            return Err(DbError::Schema(format!("unknown table '{}'", stmt.table)));
        }
        if stmt.columns != TF_COLUMNS {
            return Err(DbError::Schema("column list does not match tf schema".into()));
        }

        // Row serialization into the heap (tuple header + fields).
        let mut tuple = Vec::with_capacity(128);
        tuple.extend_from_slice(&self.next_row_id.to_le_bytes());
        for v in &stmt.values {
            match v {
                SqlValue::Number(n) => {
                    tuple.push(0u8);
                    tuple.extend_from_slice(&n.to_le_bytes());
                }
                SqlValue::Str(s) => {
                    tuple.push(1u8);
                    tuple.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    tuple.extend_from_slice(s.as_bytes());
                }
            }
        }
        let offset = self.storage.append(&self.heap_path, &tuple, ctx)?;

        // Index maintenance + WAL + commit fsync.
        let key = match stmt.values.first() {
            Some(SqlValue::Number(ts)) => (*ts as u64) << 16 | (self.next_row_id & 0xFFFF),
            _ => self.next_row_id,
        };
        self.primary.insert(key, offset);
        self.wal.append(&tuple, ctx)?;
        let row_id = self.next_row_id;
        self.next_row_id += 1;
        Ok(row_id)
    }

    /// Range scan over the primary index (timestamps → heap tuples),
    /// proving the index is real.
    pub fn scan_ts_range(&self, lo_ns: u64, hi_ns: u64) -> Vec<u64> {
        self.primary.range(lo_ns << 16, hi_ns << 16).into_iter().map(|(_, off)| off).collect()
    }

    /// Execute a SELECT: plans onto the primary index when the predicate
    /// is a timestamp range, otherwise a full index scan. Returns decoded
    /// rows as `(row_id, values)`.
    pub fn execute_select(
        &self,
        sql: &str,
        ctx: &mut IoCtx,
    ) -> DbResult<Vec<(u64, Vec<SqlValue>)>> {
        self.rpc.charge(ctx);
        let stmt = parse_select(&tokenize(sql)?)?;
        if stmt.table != "tf" {
            return Err(DbError::Schema(format!("unknown table '{}'", stmt.table)));
        }
        let offsets: Vec<u64> = match stmt.ts_between {
            Some((lo, hi)) => self.scan_ts_range(lo, hi.saturating_add(1)),
            None => self.primary.range(0, u64::MAX).into_iter().map(|(_, o)| o).collect(),
        };
        let mut rows = Vec::with_capacity(offsets.len());
        for off in offsets {
            rows.push(self.read_tuple(off, ctx)?);
        }
        // Column projection: map requested column names to value indices.
        if !stmt.columns.is_empty() {
            let idx: Vec<usize> = stmt
                .columns
                .iter()
                .map(|c| {
                    TF_COLUMNS
                        .iter()
                        .position(|t| t == c)
                        .ok_or_else(|| DbError::Schema(format!("unknown column '{c}'")))
                })
                .collect::<DbResult<_>>()?;
            for (_, vals) in &mut rows {
                *vals = idx.iter().map(|&i| vals[i].clone()).collect();
            }
        }
        Ok(rows)
    }

    /// Decode one heap tuple at `off`.
    fn read_tuple(&self, off: u64, ctx: &mut IoCtx) -> DbResult<(u64, Vec<SqlValue>)> {
        // Tuple layout: row_id u64, then 10 tagged fields.
        let head = self.storage.read_at(&self.heap_path, off, 9, ctx)?;
        let row_id = u64::from_le_bytes(head[..8].try_into().unwrap());
        let mut values = Vec::with_capacity(TF_COLUMNS.len());
        let mut pos = off + 8;
        for _ in 0..TF_COLUMNS.len() {
            let tag = self.storage.read_at(&self.heap_path, pos, 1, ctx)?[0];
            pos += 1;
            match tag {
                0 => {
                    let raw = self.storage.read_at(&self.heap_path, pos, 8, ctx)?;
                    values.push(SqlValue::Number(f64::from_le_bytes(raw[..8].try_into().unwrap())));
                    pos += 8;
                }
                1 => {
                    let lenb = self.storage.read_at(&self.heap_path, pos, 4, ctx)?;
                    let len = u32::from_le_bytes(lenb[..4].try_into().unwrap()) as usize;
                    pos += 4;
                    let raw = self.storage.read_at(&self.heap_path, pos, len, ctx)?;
                    values.push(SqlValue::Str(
                        String::from_utf8(raw)
                            .map_err(|_| DbError::Parse("bad utf8 in heap".into()))?,
                    ));
                    pos += len as u64;
                }
                other => return Err(DbError::Parse(format!("bad tuple tag {other}"))),
            }
        }
        Ok((row_id, values))
    }
}

impl<S: Storage + Clone> InsertEngine for SqlStore<S> {
    fn name(&self) -> &'static str {
        "sql (PostgreSQL-like)"
    }

    fn insert_tf(&mut self, msg: &TransformStamped, ctx: &mut IoCtx) -> DbResult<()> {
        let sql = render_tf_insert(msg);
        self.execute_insert(&sql, ctx)?;
        Ok(())
    }

    fn flush(&mut self, ctx: &mut IoCtx) -> DbResult<()> {
        self.wal.sync(ctx)?;
        self.storage.flush(&self.heap_path, ctx)?;
        Ok(())
    }

    fn record_count(&self) -> u64 {
        self.row_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::Time;
    use simfs::MemStorage;
    use std::sync::Arc;

    fn tf(i: u32) -> TransformStamped {
        let mut t = TransformStamped::default();
        t.header.stamp = Time::new(i, 500);
        t.header.frame_id = "map".into();
        t.child_frame_id = format!("link_{i}");
        t.transform.translation.y = -1.5;
        t
    }

    #[test]
    fn tokenizer_basics() {
        let toks = tokenize("INSERT INTO tf (a, b) VALUES (1.5, 'x_y');").unwrap();
        assert_eq!(toks[0], Token::Ident("insert".into()));
        assert!(toks.contains(&Token::Number(1.5)));
        assert!(toks.contains(&Token::Str("x_y".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn tokenizer_rejects_garbage() {
        assert!(tokenize("INSERT @ INTO").is_err());
        assert!(tokenize("VALUES ('unterminated").is_err());
    }

    #[test]
    fn parse_round_trip() {
        let msg = tf(3);
        let sql = render_tf_insert(&msg);
        let stmt = parse_insert(&tokenize(&sql).unwrap()).unwrap();
        assert_eq!(stmt.table, "tf");
        assert_eq!(stmt.columns.len(), 10);
        assert_eq!(stmt.values.len(), 10);
        match &stmt.values[1] {
            SqlValue::Str(s) => assert_eq!(s, "map"),
            other => panic!("wrong value: {other:?}"),
        }
        match &stmt.values[4] {
            SqlValue::Number(n) => assert_eq!(*n, -1.5),
            other => panic!("wrong value: {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_mismatched_counts() {
        let toks = tokenize("INSERT INTO tf (a, b) VALUES (1)").unwrap();
        assert!(parse_insert(&toks).is_err());
    }

    #[test]
    fn engine_inserts_and_scans() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = SqlStore::create(Arc::clone(&fs), "/pg", &mut ctx).unwrap();
        for i in 0..200 {
            db.insert_tf(&tf(i), &mut ctx).unwrap();
        }
        assert_eq!(db.record_count(), 200);
        // Rows with ts in [50 s, 100 s).
        let hits = db.scan_ts_range(Time::new(50, 0).as_nanos(), Time::new(100, 0).as_nanos());
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn wrong_schema_rejected() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = SqlStore::create(Arc::clone(&fs), "/pg", &mut ctx).unwrap();
        assert!(matches!(
            db.execute_insert("INSERT INTO robots (x) VALUES (1)", &mut ctx),
            Err(DbError::Schema(_))
        ));
    }

    #[test]
    fn group_commit_fsyncs_periodically() {
        use simfs::{DeviceModel, TimedStorage};
        let fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
        let mut ctx = IoCtx::new();
        let mut db = SqlStore::create(Arc::clone(&fs), "/pg", &mut ctx).unwrap();
        let f0 = ctx.stats.flushes;
        for i in 0..12 {
            db.insert_tf(&tf(i), &mut ctx).unwrap();
        }
        // Group-commit window of 4 rows: 3 fsyncs over 12 inserts.
        assert_eq!(ctx.stats.flushes - f0, 3);
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;
    use ros_msgs::geometry_msgs::TransformStamped;
    use ros_msgs::Time;
    use simfs::{IoCtx, MemStorage};
    use std::sync::Arc;

    fn tf(i: u32) -> TransformStamped {
        let mut t = TransformStamped::default();
        t.header.stamp = Time::new(i, 0);
        t.header.frame_id = "map".into();
        t.child_frame_id = "base".into();
        t.transform.translation.x = i as f64;
        t
    }

    fn engine_with_rows(n: u32) -> (Arc<MemStorage>, SqlStore<Arc<MemStorage>>, IoCtx) {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = SqlStore::create(Arc::clone(&fs), "/pg", &mut ctx).unwrap();
        for i in 0..n {
            db.execute_insert(&render_tf_insert(&tf(i)), &mut ctx).unwrap();
        }
        (fs, db, ctx)
    }

    #[test]
    fn parse_select_star() {
        let stmt = parse_select(&tokenize("SELECT * FROM tf").unwrap()).unwrap();
        assert_eq!(stmt.table, "tf");
        assert!(stmt.columns.is_empty());
        assert!(stmt.ts_between.is_none());
    }

    #[test]
    fn parse_select_with_range() {
        let stmt =
            parse_select(&tokenize("SELECT tx, ty FROM tf WHERE ts BETWEEN 100 AND 200").unwrap())
                .unwrap();
        assert_eq!(stmt.columns, vec!["tx", "ty"]);
        assert_eq!(stmt.ts_between, Some((100, 200)));
    }

    #[test]
    fn select_all_rows() {
        let (_fs, db, mut ctx) = engine_with_rows(25);
        let rows = db.execute_select("SELECT * FROM tf", &mut ctx).unwrap();
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[0].1.len(), 10);
    }

    #[test]
    fn select_range_uses_index() {
        let (_fs, db, mut ctx) = engine_with_rows(100);
        let lo = Time::new(10, 0).as_nanos();
        let hi = Time::new(19, 0).as_nanos();
        let sql = format!("SELECT tx FROM tf WHERE ts BETWEEN {lo} AND {hi}");
        let rows = db.execute_select(&sql, &mut ctx).unwrap();
        assert_eq!(rows.len(), 10);
        // Projected single column, numeric, matching the inserted x.
        match &rows[0].1[0] {
            SqlValue::Number(x) => assert_eq!(*x, 10.0),
            other => panic!("wrong projection: {other:?}"),
        }
    }

    #[test]
    fn select_unknown_column_rejected() {
        let (_fs, db, mut ctx) = engine_with_rows(3);
        assert!(matches!(
            db.execute_select("SELECT bogus FROM tf", &mut ctx),
            Err(DbError::Schema(_))
        ));
    }

    #[test]
    fn select_round_trips_strings() {
        let (_fs, db, mut ctx) = engine_with_rows(2);
        let rows = db.execute_select("SELECT frame_id FROM tf", &mut ctx).unwrap();
        assert_eq!(rows[0].1, vec![SqlValue::Str("map".into())]);
    }
}
