//! `dbsim`: miniature database engines for the paper's Fig. 2 experiment.
//!
//! The paper motivates BORA by showing that replacing the bag mechanism
//! with a DBMS makes *ingest* catastrophically slow: inserting 49,233 TF
//! messages took Ext4 130 ms, while Aerospike, PostgreSQL, and InfluxDB
//! were 51.8x, 93.6x, and 3,694.6x slower. Those systems are unavailable
//! here, so this crate implements the **architectural overheads** that
//! produce the gap, from scratch (see DESIGN.md's substitution table):
//!
//! * [`KvStore`] (Aerospike-like) — client RPC per operation, record
//!   envelope serialization, an open-addressing hash index
//!   ([`hash_index`]), an append-only data log, periodic durability.
//! * [`SqlStore`] (PostgreSQL-like) — the client renders an `INSERT`
//!   statement as SQL *text*; the engine tokenizes and parses it
//!   ([`sql`]), plans it onto a table, inserts into a from-scratch B-tree
//!   primary index ([`btree`]), appends a WAL record, and fsyncs at commit
//!   (autocommit = every statement).
//! * [`TsdbStore`] (InfluxDB-like) — the client renders *line protocol*
//!   text over an HTTP-style RPC; the engine parses it ([`line_protocol`]),
//!   maintains per-series time-sorted shards, a tag index, and a
//!   write-ahead log with per-point durability. The paper also notes
//!   InfluxDB cannot represent ROS's nested arrays — the line-protocol
//!   schema here flattens TF messages into ten scalar fields, losing the
//!   covariance arrays, which is exactly that limitation.
//!
//! The filesystem baseline (plain bag append) lives in the `bench` crate's
//! Fig. 2 harness.

pub mod btree;
pub mod engine;
pub mod hash_index;
pub mod kv;
pub mod line_protocol;
pub mod sql;
pub mod tsdb;
pub mod wal;

pub use engine::{DbError, DbResult, InsertEngine, RpcModel};
pub use kv::KvStore;
pub use sql::SqlStore;
pub use tsdb::TsdbStore;
