//! An in-memory B-tree, from scratch — the SQL engine's primary index.
//!
//! Order-32 (max 31 keys per node), `u64` keys, `u64` values (row ids →
//! heap offsets). Supports insert, point lookup, ordered range scans, and
//! exposes node statistics so tests can check structural invariants.

const MAX_KEYS: usize = 31;
const MIN_KEYS: usize = MAX_KEYS / 2;

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u64>,
    vals: Vec<u64>,
    /// Empty for leaves; `keys.len() + 1` children for internal nodes.
    children: Vec<Node>,
}

impl Node {
    fn leaf() -> Self {
        Node {
            keys: Vec::with_capacity(MAX_KEYS),
            vals: Vec::with_capacity(MAX_KEYS),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }
}

/// The B-tree.
pub struct BTree {
    root: Box<Node>,
    len: u64,
    height: u32,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    pub fn new() -> Self {
        BTree { root: Box::new(Node::leaf()), len: 0, height: 1 }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    /// Insert (or overwrite) `key → val`. Returns the previous value.
    pub fn insert(&mut self, key: u64, val: u64) -> Option<u64> {
        if self.root.is_full() {
            // Split the root: standard preemptive-split B-tree insert.
            let mut new_root = Box::new(Node::leaf());
            std::mem::swap(&mut self.root, &mut new_root);
            let old_root = new_root;
            self.root.children.push(*old_root);
            Self::split_child(&mut self.root, 0);
            self.height += 1;
        }
        let prev = Self::insert_nonfull(&mut self.root, key, val);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    pub fn get(&self, key: u64) -> Option<u64> {
        let mut node = &*self.root;
        loop {
            match node.keys.binary_search(&key) {
                Ok(i) => return Some(node.vals[i]),
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    node = &node.children[i];
                }
            }
        }
    }

    /// Ordered `(key, val)` pairs with `lo <= key < hi`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        Self::range_walk(&self.root, lo, hi, &mut out);
        out
    }

    fn range_walk(node: &Node, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        let start = node.keys.partition_point(|&k| k < lo);
        if node.is_leaf() {
            for i in start..node.keys.len() {
                if node.keys[i] >= hi {
                    break;
                }
                out.push((node.keys[i], node.vals[i]));
            }
            return;
        }
        for i in start..=node.keys.len() {
            Self::range_walk(&node.children[i], lo, hi, out);
            if i < node.keys.len() {
                let k = node.keys[i];
                if k >= hi {
                    break;
                }
                if k >= lo {
                    out.push((k, node.vals[i]));
                }
            }
        }
    }

    fn split_child(parent: &mut Node, idx: usize) {
        let child = &mut parent.children[idx];
        let mid = MAX_KEYS / 2;
        let mut right = Node::leaf();
        right.keys = child.keys.split_off(mid + 1);
        right.vals = child.vals.split_off(mid + 1);
        if !child.is_leaf() {
            right.children = child.children.split_off(mid + 1);
        }
        let up_key = child.keys.pop().unwrap();
        let up_val = child.vals.pop().unwrap();
        parent.keys.insert(idx, up_key);
        parent.vals.insert(idx, up_val);
        parent.children.insert(idx + 1, right);
    }

    fn insert_nonfull(node: &mut Node, key: u64, val: u64) -> Option<u64> {
        loop {
            match node.keys.binary_search(&key) {
                Ok(i) => {
                    return Some(std::mem::replace(&mut node.vals[i], val));
                }
                Err(i) => {
                    if node.is_leaf() {
                        node.keys.insert(i, key);
                        node.vals.insert(i, val);
                        return None;
                    }
                    if node.children[i].is_full() {
                        Self::split_child(node, i);
                        // Re-dispatch against the promoted key.
                        continue;
                    }
                    return Self::insert_nonfull(&mut node.children[i], key, val);
                }
            }
        }
    }

    /// Structural invariant check for tests: sorted keys, child counts,
    /// minimum occupancy (except root), uniform leaf depth.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        Self::check_node(&self.root, true, None, None, 1, &mut leaf_depths)?;
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err("leaves at different depths".into());
        }
        if let Some(&d) = leaf_depths.first() {
            if d != self.height {
                return Err(format!("height {} != leaf depth {d}", self.height));
            }
        }
        Ok(())
    }

    fn check_node(
        node: &Node,
        is_root: bool,
        lo: Option<u64>,
        hi: Option<u64>,
        depth: u32,
        leaf_depths: &mut Vec<u32>,
    ) -> Result<(), String> {
        if node.keys.len() != node.vals.len() {
            return Err("keys/vals length mismatch".into());
        }
        if !is_root && node.keys.len() < MIN_KEYS {
            return Err(format!("underfull node: {} keys", node.keys.len()));
        }
        if node.keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err("unsorted or duplicate keys in node".into());
        }
        if let (Some(lo), Some(&first)) = (lo, node.keys.first()) {
            if first <= lo {
                return Err("key below subtree bound".into());
            }
        }
        if let (Some(hi), Some(&last)) = (hi, node.keys.last()) {
            if last >= hi {
                return Err("key above subtree bound".into());
            }
        }
        if node.is_leaf() {
            leaf_depths.push(depth);
            return Ok(());
        }
        if node.children.len() != node.keys.len() + 1 {
            return Err("child count mismatch".into());
        }
        for i in 0..node.children.len() {
            let clo = if i == 0 { lo } else { Some(node.keys[i - 1]) };
            let chi = if i == node.keys.len() { hi } else { Some(node.keys[i]) };
            Self::check_node(&node.children[i], false, clo, chi, depth + 1, leaf_depths)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BTree::new();
        assert!(t.insert(5, 50).is_none());
        assert!(t.insert(3, 30).is_none());
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.get(5), Some(55));
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut t = BTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 10_000);
        assert!(t.height() > 1);
        t.check_invariants().unwrap();
        for i in (0..10_000).step_by(331) {
            assert_eq!(t.get(i), Some(i * 2));
        }
    }

    #[test]
    fn pseudorandom_inserts_match_reference() {
        let mut t = BTree::new();
        let mut reference = BTreeMap::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = x >> 20;
            let val = x & 0xFFFF;
            t.insert(key, val);
            reference.insert(key, val);
        }
        assert_eq!(t.len(), reference.len() as u64);
        t.check_invariants().unwrap();
        let ours = t.range(0, u64::MAX);
        let theirs: Vec<(u64, u64)> = reference.into_iter().collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn range_query_bounds() {
        let mut t = BTree::new();
        for i in 0..100u64 {
            t.insert(i * 10, i);
        }
        let r = t.range(95, 305);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250,
                260, 270, 280, 290, 300
            ]
        );
    }

    #[test]
    fn empty_tree() {
        let t = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert!(t.range(0, 100).is_empty());
        t.check_invariants().unwrap();
    }
}
