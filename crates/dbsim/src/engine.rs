//! Common engine interface and client RPC cost model.

use std::fmt;

use ros_msgs::geometry_msgs::TransformStamped;
use simfs::{FsError, IoCtx};

/// Errors from the miniature engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL or line-protocol text failed to parse.
    Parse(String),
    /// Schema violation (wrong table, wrong field set, ...).
    Schema(String),
    Fs(FsError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Fs(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<FsError> for DbError {
    fn from(e: FsError) -> Self {
        DbError::Fs(e)
    }
}

pub type DbResult<T> = Result<T, DbError>;

/// Client↔server communication cost per statement. A local DBMS still
/// costs a loopback round trip plus request marshalling; an HTTP API (the
/// InfluxDB write path) costs far more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcModel {
    pub per_request_ns: u64,
}

impl RpcModel {
    /// Binary protocol over loopback TCP (Aerospike / PostgreSQL wire).
    pub fn loopback_binary() -> Self {
        RpcModel { per_request_ns: 100_000 }
    }

    /// HTTP/1.1 request per write (InfluxDB's `/write` endpoint). The
    /// paper's client issued one HTTP request per point without keep-alive
    /// — connection setup + headers dominate, hence milliseconds.
    pub fn loopback_http() -> Self {
        RpcModel { per_request_ns: 5_000_000 }
    }

    #[inline]
    pub fn charge(&self, ctx: &mut IoCtx) {
        ctx.charge_ns(self.per_request_ns);
    }
}

/// A database engine capable of ingesting TF messages — the operation
/// Fig. 2 measures.
pub trait InsertEngine {
    fn name(&self) -> &'static str;

    /// Ingest one message (client serialization + server work + storage).
    fn insert_tf(&mut self, msg: &TransformStamped, ctx: &mut IoCtx) -> DbResult<()>;

    /// Make everything durable (end-of-ingest barrier).
    fn flush(&mut self, ctx: &mut IoCtx) -> DbResult<()>;

    /// Rows/records/points successfully ingested.
    fn record_count(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_models_ordered() {
        assert!(
            RpcModel::loopback_http().per_request_ns > RpcModel::loopback_binary().per_request_ns
        );
    }

    #[test]
    fn charge_advances_clock() {
        let mut ctx = IoCtx::new();
        RpcModel::loopback_binary().charge(&mut ctx);
        assert_eq!(ctx.elapsed_ns(), RpcModel::loopback_binary().per_request_ns);
    }
}
