//! Aerospike-like KV store: RPC + record envelope + hash index + data log.

use ros_msgs::geometry_msgs::TransformStamped;
use ros_msgs::RosMessage;
use simfs::{IoCtx, Storage};

use crate::engine::{DbResult, InsertEngine, RpcModel};
use crate::hash_index::{digest, Location, OpenHash};

/// Record envelope: generation + key + opaque bin payload, the shape of a
/// real-time KV store's on-disk record.
fn encode_record(key: &[u8], generation: u32, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + value.len() + 16);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// The KV engine.
pub struct KvStore<S> {
    storage: S,
    data_path: String,
    index: OpenHash,
    rpc: RpcModel,
    /// fsync the data log every N inserts (Aerospike persists
    /// asynchronously; the ingest path is not per-record durable).
    sync_every: u64,
    count: u64,
}

impl<S: Storage> KvStore<S> {
    pub fn create(storage: S, dir: &str, ctx: &mut IoCtx) -> DbResult<Self> {
        storage.mkdir_all(dir, ctx)?;
        let data_path = format!("{dir}/data.log");
        storage.create(&data_path, ctx)?;
        Ok(KvStore {
            storage,
            data_path,
            index: OpenHash::with_capacity(1 << 16),
            rpc: RpcModel::loopback_binary(),
            sync_every: 64,
            count: 0,
        })
    }

    /// Point lookup (used by tests to prove the index is real).
    pub fn get(&self, key: &[u8], ctx: &mut IoCtx) -> DbResult<Option<Vec<u8>>> {
        self.rpc.charge(ctx);
        let Some(loc) = self.index.get(digest(key)) else {
            return Ok(None);
        };
        let rec = self.storage.read_at(&self.data_path, loc.offset, loc.len as usize, ctx)?;
        let klen = u32::from_le_bytes(rec[0..4].try_into().unwrap()) as usize;
        Ok(Some(rec[12 + klen..].to_vec()))
    }

    fn key_for(msg: &TransformStamped) -> Vec<u8> {
        format!("tf:{}:{}:{}", msg.header.stamp.as_nanos(), msg.header.frame_id, msg.child_frame_id)
            .into_bytes()
    }
}

impl<S: Storage> InsertEngine for KvStore<S> {
    fn name(&self) -> &'static str {
        "kv-nosql (Aerospike-like)"
    }

    fn insert_tf(&mut self, msg: &TransformStamped, ctx: &mut IoCtx) -> DbResult<()> {
        // Client: binary RPC round trip carrying the serialized message.
        self.rpc.charge(ctx);
        let key = Self::key_for(msg);
        let value = msg.to_bytes();
        let record = encode_record(&key, 1, &value);

        // Server: append the record, maintain the primary index.
        let offset = self.storage.append(&self.data_path, &record, ctx)?;
        self.index.insert(digest(&key), Location { offset, len: record.len() as u32 });
        ctx.charge_ns(simfs::device::cpu::HASH_OP_NS);
        self.count += 1;
        if self.count.is_multiple_of(self.sync_every) {
            self.storage.flush(&self.data_path, ctx)?;
        }
        Ok(())
    }

    fn flush(&mut self, ctx: &mut IoCtx) -> DbResult<()> {
        self.storage.flush(&self.data_path, ctx)?;
        Ok(())
    }

    fn record_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::Time;
    use simfs::MemStorage;

    fn tf(i: u32) -> TransformStamped {
        let mut t = TransformStamped::default();
        t.header.seq = i;
        t.header.stamp = Time::new(i, 0);
        t.header.frame_id = "odom".into();
        t.child_frame_id = "base".into();
        t.transform.translation.x = i as f64;
        t
    }

    #[test]
    fn insert_then_get() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut kv = KvStore::create(&fs, "/aero", &mut ctx).unwrap();
        for i in 0..100 {
            kv.insert_tf(&tf(i), &mut ctx).unwrap();
        }
        assert_eq!(kv.record_count(), 100);

        let key = KvStore::<&MemStorage>::key_for(&tf(42));
        let value = kv.get(&key, &mut ctx).unwrap().expect("present");
        let msg = TransformStamped::from_bytes(&value).unwrap();
        assert_eq!(msg.transform.translation.x, 42.0);
        assert!(kv.get(b"missing", &mut ctx).unwrap().is_none());
    }

    #[test]
    fn rpc_cost_dominates_tiny_payloads() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut kv = KvStore::create(&fs, "/aero", &mut ctx).unwrap();
        let before = ctx.elapsed_ns();
        kv.insert_tf(&tf(1), &mut ctx).unwrap();
        assert!(ctx.elapsed_ns() - before >= RpcModel::loopback_binary().per_request_ns);
    }
}
