//! InfluxDB-like time-series engine: HTTP-style writes of line-protocol
//! text, per-series time-sorted shards, a tag index, and a per-point
//! durable WAL.
//!
//! This is the slowest ingest path in Fig. 2 — each point pays an HTTP
//! round trip, text encode + parse, series lookup, sorted insertion, and
//! an fsync.

use std::collections::{BTreeMap, HashMap};

use ros_msgs::geometry_msgs::TransformStamped;
use simfs::{IoCtx, Storage};

use crate::engine::{DbResult, InsertEngine, RpcModel};
use crate::line_protocol::{self, Point};
use crate::wal::Wal;

/// Shard width: points are partitioned into fixed time buckets
/// (InfluxDB's shard groups).
const SHARD_NS: u64 = 3600 * 1_000_000_000;

/// One stored point: timestamp plus encoded field values.
type StoredPoint = (u64, Vec<(String, f64)>);

/// One series' storage: time-sorted points per shard.
#[derive(Default)]
struct Series {
    /// shard id → points sorted by timestamp.
    shards: BTreeMap<u64, Vec<StoredPoint>>,
}

/// The time-series engine.
pub struct TsdbStore<S> {
    wal: Wal<S>,
    series: HashMap<String, Series>,
    /// Inverted tag index: `tag=value` → series keys.
    tag_index: HashMap<String, Vec<String>>,
    rpc: RpcModel,
    count: u64,
}

impl<S: Storage + Clone> TsdbStore<S> {
    pub fn create(storage: S, dir: &str, ctx: &mut IoCtx) -> DbResult<Self> {
        storage.mkdir_all(dir, ctx)?;
        // Per-point durability (the InfluxDB WAL fsyncs aggressively under
        // small single-point writes).
        let wal = Wal::create(storage, &format!("{dir}/wal"), 1, ctx)?;
        Ok(TsdbStore {
            wal,
            series: HashMap::new(),
            tag_index: HashMap::new(),
            rpc: RpcModel::loopback_http(),
            count: 0,
        })
    }

    /// Ingest one line of line protocol (the `/write` endpoint).
    pub fn write_line(&mut self, line: &str, ctx: &mut IoCtx) -> DbResult<()> {
        self.rpc.charge(ctx);
        let point = line_protocol::decode(line)?;
        self.wal.append(line.as_bytes(), ctx)?;
        self.store_point(point, ctx);
        self.count += 1;
        Ok(())
    }

    fn store_point(&mut self, point: Point, ctx: &mut IoCtx) {
        let key = point.series_key();
        if !self.series.contains_key(&key) {
            // New series: update the inverted tag index.
            for (k, v) in &point.tags {
                self.tag_index.entry(format!("{k}={v}")).or_default().push(key.clone());
                ctx.charge_ns(simfs::device::cpu::HASH_OP_NS);
            }
        }
        let series = self.series.entry(key).or_default();
        let shard = series.shards.entry(point.timestamp_ns / SHARD_NS).or_default();
        let fields: Vec<(String, f64)> = point.fields.into_iter().collect();
        // Time-sorted insertion within the shard.
        let pos = shard.partition_point(|(t, _)| *t <= point.timestamp_ns);
        shard.insert(pos, (point.timestamp_ns, fields));
        ctx.charge_ns(simfs::device::cpu::INDEX_ENTRY_NS);
    }

    /// Query one series' points in `[lo, hi)` (proves shards are real).
    pub fn query_range(&self, series_key: &str, lo_ns: u64, hi_ns: u64) -> Vec<u64> {
        let Some(series) = self.series.get(series_key) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (_, shard) in series.shards.range(lo_ns / SHARD_NS..=hi_ns / SHARD_NS) {
            for (t, _) in shard {
                if *t >= lo_ns && *t < hi_ns {
                    out.push(*t);
                }
            }
        }
        out
    }

    /// Series keys carrying a given `tag=value`.
    pub fn series_with_tag(&self, tag: &str, value: &str) -> Vec<String> {
        self.tag_index.get(&format!("{tag}={value}")).cloned().unwrap_or_default()
    }

    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

impl<S: Storage + Clone> InsertEngine for TsdbStore<S> {
    fn name(&self) -> &'static str {
        "tsdb (InfluxDB-like)"
    }

    fn insert_tf(&mut self, msg: &TransformStamped, ctx: &mut IoCtx) -> DbResult<()> {
        let line = line_protocol::encode(&line_protocol::tf_to_point(msg));
        self.write_line(&line, ctx)
    }

    fn flush(&mut self, ctx: &mut IoCtx) -> DbResult<()> {
        self.wal.sync(ctx)?;
        Ok(())
    }

    fn record_count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::Time;
    use simfs::MemStorage;
    use std::sync::Arc;

    fn tf(sec: u32, frame: &str) -> TransformStamped {
        let mut t = TransformStamped::default();
        t.header.stamp = Time::new(sec, 0);
        t.header.frame_id = frame.into();
        t.child_frame_id = "base".into();
        t.transform.translation.z = sec as f64;
        t
    }

    #[test]
    fn ingest_and_query() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = TsdbStore::create(Arc::clone(&fs), "/influx", &mut ctx).unwrap();
        for sec in 0..100 {
            db.insert_tf(&tf(sec, "map"), &mut ctx).unwrap();
        }
        assert_eq!(db.record_count(), 100);
        assert_eq!(db.series_count(), 1);
        let hits = db.query_range(
            "tf,child=base,frame=map",
            Time::new(10, 0).as_nanos(),
            Time::new(20, 0).as_nanos(),
        );
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn distinct_tagsets_make_distinct_series() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = TsdbStore::create(Arc::clone(&fs), "/influx", &mut ctx).unwrap();
        db.insert_tf(&tf(1, "map"), &mut ctx).unwrap();
        db.insert_tf(&tf(1, "odom"), &mut ctx).unwrap();
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.series_with_tag("frame", "map").len(), 1);
        assert_eq!(db.series_with_tag("frame", "ghost").len(), 0);
    }

    #[test]
    fn bad_line_rejected() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = TsdbStore::create(Arc::clone(&fs), "/influx", &mut ctx).unwrap();
        assert!(db.write_line("not a point", &mut ctx).is_err());
        assert_eq!(db.record_count(), 0);
    }

    #[test]
    fn wal_contains_lines() {
        let fs = Arc::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let mut db = TsdbStore::create(Arc::clone(&fs), "/influx", &mut ctx).unwrap();
        db.insert_tf(&tf(5, "map"), &mut ctx).unwrap();
        let recs = crate::wal::Wal::replay(&Arc::clone(&fs), "/influx/wal", &mut ctx).unwrap();
        assert_eq!(recs.len(), 1);
        let line = String::from_utf8(recs[0].clone()).unwrap();
        assert!(line.starts_with("tf,"));
        // Replayed line parses back into a point.
        assert!(line_protocol::decode(&line).is_ok());
    }
}
