//! InfluxDB line-protocol codec:
//! `measurement,tag=v,tag=v field=1.0,field=2.0 timestamp`.
//!
//! The client renders every TF message as text; the server parses it back.
//! Note what the schema *loses*: a ROS IMU or TF message carries nested
//! arrays (covariances) that line protocol cannot express — the paper's
//! point about time-series databases being inadequate for rich ROS data.

use std::collections::BTreeMap;

use ros_msgs::geometry_msgs::TransformStamped;

use crate::engine::{DbError, DbResult};

/// One parsed line-protocol point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    pub measurement: String,
    /// Tag set, sorted (the series key is measurement + sorted tags).
    pub tags: BTreeMap<String, String>,
    pub fields: BTreeMap<String, f64>,
    pub timestamp_ns: u64,
}

impl Point {
    /// Series key: measurement plus canonical tag set.
    pub fn series_key(&self) -> String {
        let mut key = self.measurement.clone();
        for (k, v) in &self.tags {
            key.push(',');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

fn escape(s: &str) -> String {
    s.replace(' ', "\\ ").replace(',', "\\,").replace('=', "\\=")
}

fn unescape(s: &str) -> String {
    s.replace("\\ ", " ").replace("\\,", ",").replace("\\=", "=")
}

/// Split on a delimiter, honoring backslash escapes.
fn split_unescaped(s: &str, delim: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for ch in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(ch);
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == delim {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(ch);
        }
    }
    if escaped {
        cur.push('\\');
    }
    out.push(cur);
    out
}

/// Render one point as a line.
pub fn encode(p: &Point) -> String {
    let mut line = escape(&p.measurement);
    for (k, v) in &p.tags {
        line.push(',');
        line.push_str(&escape(k));
        line.push('=');
        line.push_str(&escape(v));
    }
    line.push(' ');
    let mut first = true;
    for (k, v) in &p.fields {
        if !first {
            line.push(',');
        }
        first = false;
        line.push_str(&escape(k));
        line.push('=');
        line.push_str(&format!("{v}"));
    }
    line.push(' ');
    line.push_str(&p.timestamp_ns.to_string());
    line
}

/// Parse one line.
pub fn decode(line: &str) -> DbResult<Point> {
    // Split into measurement+tags | fields | timestamp on unescaped spaces.
    let parts = split_unescaped(line.trim(), ' ');
    let parts: Vec<&String> = parts.iter().filter(|p| !p.is_empty()).collect();
    if parts.len() != 3 {
        return Err(DbError::Parse(format!("line must have 3 sections, found {}", parts.len())));
    }
    let head = split_unescaped(parts[0], ',');
    let measurement = unescape(&head[0]);
    if measurement.is_empty() {
        return Err(DbError::Parse("empty measurement".into()));
    }
    let mut tags = BTreeMap::new();
    for kv in &head[1..] {
        let kvp = split_unescaped(kv, '=');
        if kvp.len() != 2 {
            return Err(DbError::Parse(format!("bad tag '{kv}'")));
        }
        tags.insert(unescape(&kvp[0]), unescape(&kvp[1]));
    }
    let mut fields = BTreeMap::new();
    for kv in split_unescaped(parts[1], ',') {
        let kvp = split_unescaped(&kv, '=');
        if kvp.len() != 2 {
            return Err(DbError::Parse(format!("bad field '{kv}'")));
        }
        let v: f64 =
            kvp[1].parse().map_err(|_| DbError::Parse(format!("bad field value '{}'", kvp[1])))?;
        fields.insert(unescape(&kvp[0]), v);
    }
    if fields.is_empty() {
        return Err(DbError::Parse("point has no fields".into()));
    }
    let timestamp_ns: u64 =
        parts[2].parse().map_err(|_| DbError::Parse(format!("bad timestamp '{}'", parts[2])))?;
    Ok(Point { measurement, tags, fields, timestamp_ns })
}

/// Flatten a TF message into a point (dropping everything line protocol
/// cannot express).
pub fn tf_to_point(msg: &TransformStamped) -> Point {
    let mut tags = BTreeMap::new();
    tags.insert("frame".to_owned(), msg.header.frame_id.clone());
    tags.insert("child".to_owned(), msg.child_frame_id.clone());
    let mut fields = BTreeMap::new();
    fields.insert("tx".to_owned(), msg.transform.translation.x);
    fields.insert("ty".to_owned(), msg.transform.translation.y);
    fields.insert("tz".to_owned(), msg.transform.translation.z);
    fields.insert("qx".to_owned(), msg.transform.rotation.x);
    fields.insert("qy".to_owned(), msg.transform.rotation.y);
    fields.insert("qz".to_owned(), msg.transform.rotation.z);
    fields.insert("qw".to_owned(), msg.transform.rotation.w);
    Point { measurement: "tf".to_owned(), tags, fields, timestamp_ns: msg.header.stamp.as_nanos() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ros_msgs::Time;

    #[test]
    fn encode_decode_round_trip() {
        let mut msg = TransformStamped::default();
        msg.header.stamp = Time::new(12, 34);
        msg.header.frame_id = "odom".into();
        msg.child_frame_id = "base_link".into();
        msg.transform.translation.x = 1.25;
        let p = tf_to_point(&msg);
        let line = encode(&p);
        let back = decode(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn escaping_survives() {
        let mut tags = BTreeMap::new();
        tags.insert("robot name".to_owned(), "r2,d2=best".to_owned());
        let mut fields = BTreeMap::new();
        fields.insert("v".to_owned(), 1.0);
        let p = Point { measurement: "weird m".to_owned(), tags, fields, timestamp_ns: 7 };
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn series_key_is_canonical() {
        let mut msg = TransformStamped::default();
        msg.header.frame_id = "a".into();
        msg.child_frame_id = "b".into();
        let p = tf_to_point(&msg);
        assert_eq!(p.series_key(), "tf,child=b,frame=a");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(decode("").is_err());
        assert!(decode("m").is_err());
        assert!(decode("m f 12").is_err()); // field without '='
        assert!(decode("m f=x 12").is_err()); // non-numeric field
        assert!(decode("m f=1 notatime").is_err());
    }
}
