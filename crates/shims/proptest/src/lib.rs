//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! generate-only property-testing harness with proptest's macro surface:
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! range/tuple/char-class strategies, `prop::collection::vec`, and
//! `prop::sample::select`.
//!
//! Differences from upstream, deliberate:
//! * **No shrinking.** A failing case panics with the full `Debug` dump of
//!   its generated inputs instead of a minimized one.
//! * **Deterministic seeding.** Case RNGs derive from the test path and
//!   case index, so failures reproduce without `.proptest-regressions`
//!   persistence (existing regression files are simply ignored).
//! * Fewer default cases (64) — generation dominates runtime without
//!   shrinking, and the suites here also cap cases explicitly.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use test_runner::ProptestConfig;

/// Everything the standard `use proptest::prelude::*;` import provides.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// Each case draws every input from its strategy, then runs the body;
/// `prop_assert*` failures and panics abort the test with the offending
/// inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            let mut __rejects: u32 = 0;
            let mut __case: u64 = 0;
            let mut __done: u32 = 0;
            while __done < config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test_path, __case);
                __case += 1;
                let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                let __input_dump = format!("{:#?}", __vals);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| -> $crate::test_runner::TestCaseResult {
                        let ( $($pat,)+ ) = __vals;
                        $body
                        ::std::result::Result::Ok(())
                    }),
                );
                match __outcome {
                    Ok(Ok(())) => { __done += 1; }
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= config.cases.saturating_mul(16).max(256),
                            "{}: too many rejected inputs", __test_path,
                        );
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "{} failed at case {}: {}\ninput: {}",
                            __test_path, __case - 1, msg, __input_dump,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "{} panicked at case {}\ninput: {}",
                            __test_path, __case - 1, __input_dump,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert within a proptest body; failure aborts only the current case's
/// closure via an early `Err` return.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sorted_after_sorting(mut v in prop::collection::vec(any::<u32>(), 0..20)) {
            v.sort();
            for w in v.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn tuple_and_question_mark((a, b) in (0u32..50, 50u32..100)) {
            let checked = || -> Result<u32, TestCaseError> {
                prop_assert!(a < b);
                Ok(b - a)
            };
            prop_assert_eq!(checked()?, checked()?);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(any::<u8>(), 1..16);
        let mut r1 = TestRng::for_case("t", 0);
        let mut r2 = TestRng::for_case("t", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
