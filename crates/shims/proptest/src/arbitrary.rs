//! `any::<T>()` for the primitive types the workspace generates.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Finite floats only (like upstream's default): the workspace roundtrips
/// generated values through codecs and compares with `==`, which NaN
/// would break spuriously.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        loop {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                return f;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let f = f32::from_bits(rng.next_u64() as u32);
            if f.is_finite() {
                return f;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
            assert!(f32::arbitrary(&mut rng).is_finite());
        }
    }
}
