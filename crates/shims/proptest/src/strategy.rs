//! The [`Strategy`] trait and its combinators (generation only — the shim
//! does not shrink; failing inputs are printed instead).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// How many times a filtered strategy regenerates before giving up.
const FILTER_RETRIES: usize = 1_000;

/// A value generator.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Reject values failing `f` (regenerates; panics if the filter is
    /// too strict instead of shrinking the rejection like upstream).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence: whence.into(), f }
    }

    /// Type-erase the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy yielding exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected {FILTER_RETRIES} consecutive values", self.whence);
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}

/// `&'static str` literals act as generation patterns, supporting the
/// regex subset the workspace's tests use: literal characters, character
/// classes `[a-z0-9._-]`, groups `(...)`, and `{min,max}` / `{n}`
/// repetition of the preceding atom (e.g. `"(/[a-z][a-z0-9_%]{0,6}){1,4}"`).
/// A pattern that fails to parse generates itself verbatim.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some(pieces) => {
                let mut out = String::new();
                generate_seq(&pieces, rng, &mut out);
                out
            }
            None => (*self).to_owned(),
        }
    }
}

enum PatternNode {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<PatternPiece>),
}

struct PatternPiece {
    node: PatternNode,
    min: usize,
    max: usize,
}

fn generate_seq(pieces: &[PatternPiece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let reps = piece.min + rng.below(piece.max - piece.min + 1);
        for _ in 0..reps {
            match &piece.node {
                PatternNode::Lit(c) => out.push(*c),
                PatternNode::Class(alphabet) => out.push(alphabet[rng.below(alphabet.len())]),
                PatternNode::Group(inner) => generate_seq(inner, rng, out),
            }
        }
    }
}

fn parse_pattern(pattern: &str) -> Option<Vec<PatternPiece>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let pieces = parse_seq(&chars, &mut pos, None)?;
    (pos == chars.len()).then_some(pieces)
}

fn parse_seq(chars: &[char], pos: &mut usize, closing: Option<char>) -> Option<Vec<PatternPiece>> {
    let mut pieces = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        if Some(c) == closing {
            return Some(pieces);
        }
        let node = match c {
            '[' => {
                *pos += 1;
                PatternNode::Class(parse_class(chars, pos)?)
            }
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, Some(')'))?;
                if chars.get(*pos) != Some(&')') {
                    return None;
                }
                *pos += 1;
                PatternNode::Group(inner)
            }
            ']' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '\\' => return None,
            lit => {
                *pos += 1;
                PatternNode::Lit(lit)
            }
        };
        let (min, max) = parse_repetition(chars, pos)?;
        pieces.push(PatternPiece { node, min, max });
    }
    closing.is_none().then_some(pieces)
}

/// `{m,n}` or `{n}` after an atom; absent means exactly once.
fn parse_repetition(chars: &[char], pos: &mut usize) -> Option<(usize, usize)> {
    if chars.get(*pos) != Some(&'{') {
        return Some((1, 1));
    }
    let close = chars[*pos..].iter().position(|&c| c == '}')?;
    let body: String = chars[*pos + 1..*pos + close].iter().collect();
    *pos += close + 1;
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    (min <= max).then_some((min, max))
}

fn parse_class(chars: &[char], pos: &mut usize) -> Option<Vec<char>> {
    let mut alphabet = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        // `a-z` is a range unless `-` is the class's final character.
        if chars[*pos + 1..].first() == Some(&'-')
            && chars.get(*pos + 2).map_or(false, |&c| c != ']')
        {
            let (lo, hi) = (chars[*pos], chars[*pos + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            *pos += 3;
        } else {
            alphabet.push(chars[*pos]);
            *pos += 1;
        }
    }
    if chars.get(*pos) != Some(&']') || alphabet.is_empty() {
        return None;
    }
    *pos += 1;
    Some(alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn pattern_respects_class_and_length() {
        let s = "[a-z0-9._-]{1,8}";
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((1..=8).contains(&v.len()), "{v:?}");
            assert!(v
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c)));
        }
    }

    #[test]
    fn map_filter_union() {
        let s = crate::prop_oneof![(0u32..10).prop_map(|n| n * 2), Just(99u32),]
            .prop_filter("nonzero", |&v| v != 0);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v == 99 || (v % 2 == 0 && v > 0 && v < 20));
        }
    }

    #[test]
    fn grouped_pattern_generates_topic_paths() {
        let s = "(/[a-z][a-z0-9_%]{0,6}){1,4}";
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v.starts_with('/'), "{v:?}");
            let comps: Vec<&str> = v.split('/').skip(1).collect();
            assert!((1..=4).contains(&comps.len()), "{v:?}");
            for c in comps {
                assert!((1..=7).contains(&c.len()), "{v:?}");
                assert!(c.starts_with(|ch: char| ch.is_ascii_lowercase()), "{v:?}");
            }
        }
    }

    #[test]
    fn unparseable_pattern_is_literal() {
        let mut r = rng();
        assert_eq!("plain text".generate(&mut r), "plain text");
        assert_eq!("a|b".generate(&mut r), "a|b");
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(2usize..=4).generate(&mut r) - 2] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
