//! Sampling strategies (`prop::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed set of values.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}
