//! Config, RNG, and error types for the shim's test runner.

use std::fmt;

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input was rejected (e.g. a filter); the case is retried.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generation RNG (xoshiro256** seeded via SplitMix64).
///
/// Unlike upstream proptest there is no OS entropy: the stream is a pure
/// function of (test name, case index), so failures reproduce on every
/// run without a regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// RNG for one case of one named test.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}
