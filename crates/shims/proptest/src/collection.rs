//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible element counts for a collection strategy.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn length_in_range() {
        let s = vec(any::<u8>(), 1..10);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
        }
    }

    #[test]
    fn nests() {
        let s = vec(vec(any::<u8>(), 0..4), 2..3);
        let mut rng = TestRng::from_seed(2);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 2);
    }
}
