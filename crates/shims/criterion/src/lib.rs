//! Offline shim for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: when the binary is invoked with
//! `--bench` (as `cargo bench` does) each benchmark runs for a fixed
//! wall-clock budget and reports min/mean per-iteration time. Under
//! `cargo test` (no `--bench` flag) every benchmark runs a single
//! iteration as a smoke test, keeping the tier-1 suite fast.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Measure for real (`--bench`) or run once (test smoke mode).
    measure: bool,
    /// Wall-clock budget for one benchmark in measured mode.
    budget: Duration,
    /// Collected per-iteration nanoseconds.
    samples: Vec<u64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as u64);
            return;
        }
        // Warmup.
        std::hint::black_box(routine());
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(self.measure, None, &name, 100, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Kept for API compatibility; the shim scales its time budget with
    /// the requested sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(self.criterion.measure, Some(&self.name), &name, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        run_one(self.criterion.measure, Some(&self.name), &name, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    measure: bool,
    group: Option<&str>,
    name: &str,
    sample_size: usize,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };
    // ~2ms per requested sample, clamped: long enough to be indicative,
    // short enough that a full suite stays in seconds.
    let budget = Duration::from_millis((sample_size as u64 * 2).clamp(20, 500));
    let mut bencher = Bencher { measure, budget, samples: Vec::new() };
    f(&mut bencher);
    report(&full_name, measure, &bencher.samples);
}

fn report(name: &str, measured: bool, samples: &[u64]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = *samples.iter().min().unwrap();
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    if measured {
        println!(
            "{name:<50} min {:>12}  mean {:>12}  ({} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            samples.len()
        );
        // Machine-readable sink for CI artifacts: one JSON object per
        // line, appended to the file named by `BENCH_JSON`.
        if let Ok(path) = std::env::var("BENCH_JSON") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                let _ = writeln!(
                    f,
                    "{{\"name\":\"{}\",\"min_ns\":{min},\"mean_ns\":{mean},\"iters\":{}}}",
                    name.replace('\\', "\\\\").replace('"', "\\\""),
                    samples.len()
                );
            }
        }
    } else {
        println!("{name:<50} smoke ok ({})", fmt_ns(min));
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { measure: false };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("one", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| b.iter(|| runs += x));
        group.finish();
        // One warmup-free iteration each in smoke mode.
        assert_eq!(runs, 1 + 4);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let mut c = Criterion { measure: true };
        let mut runs = 0u64;
        c.bench_function("tight", |b| b.iter(|| runs += 1));
        assert!(runs > 1, "measured mode should iterate");
    }
}
