//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock()` / `read()` /
//! `write()` that return guards directly (no `Result`). Backed by the
//! std primitives; a poisoned std lock is recovered transparently, which
//! matches parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Non-poisoning reader-writer lock with parking_lot's signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
