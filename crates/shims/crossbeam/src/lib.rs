//! Offline shim for the `crossbeam` facade crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the two crossbeam components it uses:
//!
//! * [`channel`] — MPMC bounded/unbounded channels (`bounded`,
//!   `unbounded`, cloneable `Sender`/`Receiver`, `try_send` for
//!   backpressure, blocking `iter`). The bora-serve request queue is built
//!   on the bounded variant.
//! * [`thread`] — `scope`/`spawn` scoped threads with crossbeam's
//!   single-lifetime closure shape (`|_| ...`).
//!
//! Semantics match crossbeam for every call site in this repository; the
//! implementation favors simplicity (mutex + condvar) over lock-free
//! performance, which is fine at the thread counts the experiments use.

pub mod channel;
pub mod thread;
