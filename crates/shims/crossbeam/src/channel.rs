//! MPMC channels with `crossbeam-channel`'s API surface (the subset this
//! workspace uses): `bounded` / `unbounded` constructors, cloneable
//! senders *and* receivers, blocking and non-blocking send/recv, timeouts,
//! and iteration until disconnect. Backed by a `Mutex<VecDeque>` plus two
//! condvars (not-empty / not-full).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> TrySendError<T> {
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// None = unbounded.
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn no_senders(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn no_receivers(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of bounded capacity. `send` blocks while full;
/// `try_send` fails fast with [`TrySendError::Full`].
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap))
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake all blocked receivers.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake all blocked senders.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if shared.no_receivers() {
                return Err(SendError(value));
            }
            match shared.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = shared.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: sheds immediately when the queue is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if shared.no_receivers() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = shared.cap {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel capacity (None = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.cap
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(RecvError);
            }
            queue = shared.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = queue.pop_front() {
            drop(queue);
            shared.not_full.notify_one();
            return Ok(v);
        }
        if shared.no_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _res) = shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until all senders disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator: yields queued messages, then stops.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.iter().take(2).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded::<u64>(4);
        let total = std::thread::scope(|s| {
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                consumers.push(s.spawn(move || rx.iter().sum::<u64>()));
            }
            drop(rx);
            for producer in 0..2 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(producer * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        let expect: u64 = (0..100).sum::<u64>() + (0..100).map(|i| 1000 + i).sum::<u64>();
        assert_eq!(total, expect);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
    }
}
