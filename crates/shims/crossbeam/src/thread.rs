//! `crossbeam::thread::scope` with crossbeam's single-lifetime API.
//!
//! std's scoped threads carry two lifetimes (`'scope`, `'env`) which makes
//! them a poor drop-in for code written against crossbeam's
//! `scope(|s| ...)` / `s.spawn(|_| ...)` shape, so this module implements
//! the crossbeam shape directly: spawned closures are lifetime-erased
//! (the same `'env → 'static` transmute crossbeam performs internally) and
//! soundness is restored by unconditionally joining every spawned thread
//! before `scope` returns — including when the scope body panics.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// The result of a (possibly panicking) thread: `Err` holds the payload.
pub type Result<T> = std::thread::Result<T>;

#[derive(Default)]
struct ScopeInner {
    /// Join handles of every spawned thread not yet joined explicitly.
    threads: Mutex<Vec<Arc<Packet>>>,
}

struct Packet {
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Packet {
    fn join(&self) {
        let handle = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            // Panics were already captured into the result slot.
            let _ = h.join();
        }
    }
}

/// A scope for spawning threads that may borrow from the caller's stack.
pub struct Scope<'env> {
    inner: Arc<ScopeInner>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// Handle to a scoped thread; `join` returns the closure's value or the
/// panic payload.
pub struct ScopedJoinHandle<'scope, T> {
    packet: Arc<Packet>,
    result: Arc<Mutex<Option<Result<T>>>>,
    _scope: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T> {
        self.packet.join();
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("scoped thread finished without storing a result")
    }
}

impl<'env> Scope<'env> {
    /// Spawn a thread that may borrow from `'env`. The closure receives
    /// the scope itself so nested spawns work (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'env, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let result: Arc<Mutex<Option<Result<T>>>> = Arc::new(Mutex::new(None));
        let their_result = Arc::clone(&result);
        let nested = Scope { inner: Arc::clone(&self.inner), _env: PhantomData };
        let main: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(|| f(&nested)));
            *their_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        });
        // SAFETY: the closure only borrows data outliving 'env, and every
        // spawned thread is joined before `scope` returns, so no borrow
        // outlives the stack frame it points into.
        let main: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(main) };
        let handle = std::thread::spawn(main);
        let packet = Arc::new(Packet { handle: Mutex::new(Some(handle)) });
        self.inner.threads.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&packet));
        ScopedJoinHandle { packet, result, _scope: PhantomData }
    }
}

/// Create a scope: all threads spawned inside are joined before this
/// function returns. Returns `Err` with the panic payload if the scope
/// body itself panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope { inner: Arc::new(ScopeInner::default()), _env: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Join everything, including threads spawned by other threads while
    // we were draining.
    loop {
        let batch: Vec<Arc<Packet>> =
            std::mem::take(&mut *scope.inner.threads.lock().unwrap_or_else(|e| e.into_inner()));
        if batch.is_empty() {
            break;
        }
        for packet in batch {
            packet.join();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let sum = scope(|s| {
            let a = s.spawn(|_| data[..2].iter().sum::<u64>());
            let b = s.spawn(|_| data[2..].iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn writes_through_mut_borrows() {
        let mut slots = vec![0u32; 4];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn child_panic_surfaces_in_join() {
        let r = scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2).join().unwrap())
            .unwrap();
        assert_eq!(n, 42);
    }
}
