//! Offline shim for the `rand` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the slice of `rand` 0.10 it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], raw output via [`Rng::next_u64`], and
//! uniform range sampling via [`RngExt::random_range`] over integer and
//! float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine: every consumer
//! in this workspace treats the RNG as an arbitrary deterministic source,
//! and determinism per seed is preserved across runs and platforms.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (the `RngCore` subset the workspace calls).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`RngExt::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from an integer or float range.
    ///
    /// Panics on an empty range, like upstream.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// `u64 → [0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (this shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let f = rng.random_range(-0.02..0.02);
            assert!((-0.02..0.02).contains(&f));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
