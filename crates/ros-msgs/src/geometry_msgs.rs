//! `geometry_msgs` primitives used by the BORA workloads.

use crate::msg::RosMessage;
use crate::std_msgs::Header;
use crate::wire::{WireError, WireRead, WireWrite};

/// `geometry_msgs/Vector3`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vector3 {
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vector3 { x, y, z }
    }
}

impl RosMessage for Vector3 {
    const DATATYPE: &'static str = "geometry_msgs/Vector3";
    const DEFINITION: &'static str = "\
float64 x
float64 y
float64 z
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_f64(self.x);
        buf.put_f64(self.y);
        buf.put_f64(self.z);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Vector3 { x: cur.get_f64()?, y: cur.get_f64()?, z: cur.get_f64()? })
    }

    fn wire_len(&self) -> usize {
        24
    }
}

/// `geometry_msgs/Point` — same layout as `Vector3`, distinct type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl RosMessage for Point {
    const DATATYPE: &'static str = "geometry_msgs/Point";
    const DEFINITION: &'static str = "\
float64 x
float64 y
float64 z
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_f64(self.x);
        buf.put_f64(self.y);
        buf.put_f64(self.z);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Point { x: cur.get_f64()?, y: cur.get_f64()?, z: cur.get_f64()? })
    }

    fn wire_len(&self) -> usize {
        24
    }
}

/// `geometry_msgs/Quaternion`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub w: f64,
}

impl Default for Quaternion {
    /// Identity rotation.
    fn default() -> Self {
        Quaternion { x: 0.0, y: 0.0, z: 0.0, w: 1.0 }
    }
}

impl RosMessage for Quaternion {
    const DATATYPE: &'static str = "geometry_msgs/Quaternion";
    const DEFINITION: &'static str = "\
float64 x
float64 y
float64 z
float64 w
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_f64(self.x);
        buf.put_f64(self.y);
        buf.put_f64(self.z);
        buf.put_f64(self.w);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Quaternion {
            x: cur.get_f64()?,
            y: cur.get_f64()?,
            z: cur.get_f64()?,
            w: cur.get_f64()?,
        })
    }

    fn wire_len(&self) -> usize {
        32
    }
}

/// `geometry_msgs/Pose` — position + orientation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    pub position: Point,
    pub orientation: Quaternion,
}

impl RosMessage for Pose {
    const DATATYPE: &'static str = "geometry_msgs/Pose";
    const DEFINITION: &'static str = "\
geometry_msgs/Point position
geometry_msgs/Quaternion orientation
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.position.serialize(buf);
        self.orientation.serialize(buf);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Pose { position: Point::deserialize(cur)?, orientation: Quaternion::deserialize(cur)? })
    }

    fn wire_len(&self) -> usize {
        self.position.wire_len() + self.orientation.wire_len()
    }
}

/// `geometry_msgs/Transform` — translation + rotation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Transform {
    pub translation: Vector3,
    pub rotation: Quaternion,
}

impl RosMessage for Transform {
    const DATATYPE: &'static str = "geometry_msgs/Transform";
    const DEFINITION: &'static str = "\
geometry_msgs/Vector3 translation
geometry_msgs/Quaternion rotation
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.translation.serialize(buf);
        self.rotation.serialize(buf);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Transform {
            translation: Vector3::deserialize(cur)?,
            rotation: Quaternion::deserialize(cur)?,
        })
    }

    fn wire_len(&self) -> usize {
        self.translation.wire_len() + self.rotation.wire_len()
    }
}

/// `geometry_msgs/TransformStamped` — the payload carried by `/tf` (the
/// message the paper's Fig. 2 database experiment inserts 49,233 of).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransformStamped {
    pub header: Header,
    pub child_frame_id: String,
    pub transform: Transform,
}

impl RosMessage for TransformStamped {
    const DATATYPE: &'static str = "geometry_msgs/TransformStamped";
    const DEFINITION: &'static str = "\
std_msgs/Header header
string child_frame_id
geometry_msgs/Transform transform
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_string(&self.child_frame_id);
        self.transform.serialize(buf);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TransformStamped {
            header: Header::deserialize(cur)?,
            child_frame_id: cur.get_string()?,
            transform: Transform::deserialize(cur)?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 4 + self.child_frame_id.len() + self.transform.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn vector3_round_trip() {
        let v = Vector3::new(1.0, -2.5, 3.25);
        assert_eq!(Vector3::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn quaternion_default_is_identity() {
        let q = Quaternion::default();
        assert_eq!(q.w, 1.0);
        assert_eq!(Quaternion::from_bytes(&q.to_bytes()).unwrap(), q);
    }

    #[test]
    fn transform_stamped_round_trip() {
        let mut ts = TransformStamped::default();
        ts.header.seq = 7;
        ts.header.stamp = Time::new(3, 14);
        ts.header.frame_id = "world".into();
        ts.child_frame_id = "base_link".into();
        ts.transform.translation = Vector3::new(0.5, 1.5, 2.5);
        let bytes = ts.to_bytes();
        assert_eq!(bytes.len(), ts.wire_len());
        assert_eq!(TransformStamped::from_bytes(&bytes).unwrap(), ts);
    }

    #[test]
    fn pose_round_trip() {
        let p =
            Pose { position: Point { x: 1.0, y: 2.0, z: 3.0 }, orientation: Quaternion::default() };
        assert_eq!(Pose::from_bytes(&p.to_bytes()).unwrap(), p);
    }
}
