//! `visualization_msgs` types: `Marker` and `MarkerArray`.
//!
//! The paper's Handheld-SLAM bag publishes `/cortex_marker_array`
//! (Table II, row E): 14,487 MarkerArray messages, ~8.4 MB — small
//! structured messages interleaved with the large image stream.

use crate::geometry_msgs::{Point, Pose, Vector3};
use crate::msg::{read_seq, RosMessage};
use crate::std_msgs::{ColorRgba, Header};
use crate::time::RosDuration;
use crate::wire::{WireError, WireRead, WireWrite};

/// Marker geometric primitive kinds (subset of `visualization_msgs/Marker`
/// constants; values match ROS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i32)]
#[derive(Default)]
pub enum MarkerType {
    Arrow = 0,
    #[default]
    Cube = 1,
    Sphere = 2,
    Cylinder = 3,
    LineStrip = 4,
    LineList = 5,
    Points = 8,
    TextViewFacing = 9,
}

impl MarkerType {
    pub fn from_i32(v: i32) -> Result<Self, WireError> {
        Ok(match v {
            0 => MarkerType::Arrow,
            1 => MarkerType::Cube,
            2 => MarkerType::Sphere,
            3 => MarkerType::Cylinder,
            4 => MarkerType::LineStrip,
            5 => MarkerType::LineList,
            8 => MarkerType::Points,
            9 => MarkerType::TextViewFacing,
            other => return Err(WireError::Invalid(format!("unknown marker type {other}"))),
        })
    }
}

/// Marker action constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(i32)]
pub enum MarkerAction {
    #[default]
    Add = 0,
    Modify = 1,
    Delete = 2,
}

impl MarkerAction {
    pub fn from_i32(v: i32) -> Result<Self, WireError> {
        Ok(match v {
            0 => MarkerAction::Add,
            1 => MarkerAction::Modify,
            2 => MarkerAction::Delete,
            other => return Err(WireError::Invalid(format!("unknown marker action {other}"))),
        })
    }
}

/// `visualization_msgs/Marker` (trimmed to the fields the workloads use;
/// layout follows the ROS definition order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Marker {
    pub header: Header,
    pub ns: String,
    pub id: i32,
    pub marker_type: MarkerType,
    pub action: MarkerAction,
    pub pose: Pose,
    pub scale: Vector3,
    pub color: ColorRgba,
    pub lifetime: RosDuration,
    pub frame_locked: bool,
    pub points: Vec<Point>,
    pub colors: Vec<ColorRgba>,
    pub text: String,
}

impl RosMessage for Marker {
    const DATATYPE: &'static str = "visualization_msgs/Marker";
    const DEFINITION: &'static str = "\
std_msgs/Header header
string ns
int32 id
int32 type
int32 action
geometry_msgs/Pose pose
geometry_msgs/Vector3 scale
std_msgs/ColorRGBA color
duration lifetime
bool frame_locked
geometry_msgs/Point[] points
std_msgs/ColorRGBA[] colors
string text
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_string(&self.ns);
        buf.put_i32(self.id);
        buf.put_i32(self.marker_type as i32);
        buf.put_i32(self.action as i32);
        self.pose.serialize(buf);
        self.scale.serialize(buf);
        self.color.serialize(buf);
        buf.put_duration(self.lifetime);
        buf.put_bool(self.frame_locked);
        buf.put_u32(self.points.len() as u32);
        for p in &self.points {
            p.serialize(buf);
        }
        buf.put_u32(self.colors.len() as u32);
        for c in &self.colors {
            c.serialize(buf);
        }
        buf.put_string(&self.text);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Marker {
            header: Header::deserialize(cur)?,
            ns: cur.get_string()?,
            id: cur.get_i32()?,
            marker_type: MarkerType::from_i32(cur.get_i32()?)?,
            action: MarkerAction::from_i32(cur.get_i32()?)?,
            pose: Pose::deserialize(cur)?,
            scale: Vector3::deserialize(cur)?,
            color: ColorRgba::deserialize(cur)?,
            lifetime: cur.get_duration()?,
            frame_locked: cur.get_bool()?,
            points: read_seq(cur, Point::deserialize)?,
            colors: read_seq(cur, ColorRgba::deserialize)?,
            text: cur.get_string()?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len()
            + (4 + self.ns.len())
            + 12
            + self.pose.wire_len()
            + self.scale.wire_len()
            + self.color.wire_len()
            + 8
            + 1
            + (4 + self.points.len() * 24)
            + (4 + self.colors.len() * 16)
            + (4 + self.text.len())
    }
}

/// `visualization_msgs/MarkerArray`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarkerArray {
    pub markers: Vec<Marker>,
}

impl RosMessage for MarkerArray {
    const DATATYPE: &'static str = "visualization_msgs/MarkerArray";
    const DEFINITION: &'static str = "\
visualization_msgs/Marker[] markers
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.markers.len() as u32);
        for m in &self.markers {
            m.serialize(buf);
        }
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(MarkerArray { markers: read_seq(cur, Marker::deserialize)? })
    }

    fn wire_len(&self) -> usize {
        4 + self.markers.iter().map(|m| m.wire_len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn sample_marker() -> Marker {
        let mut m = Marker::default();
        m.header.stamp = Time::new(9, 9);
        m.header.frame_id = "map".into();
        m.ns = "cortex".into();
        m.id = 17;
        m.marker_type = MarkerType::Sphere;
        m.scale = Vector3::new(0.1, 0.1, 0.1);
        m.color = ColorRgba { r: 1.0, g: 0.0, b: 0.0, a: 1.0 };
        m.points = vec![Point { x: 1.0, y: 2.0, z: 3.0 }];
        m.text = "landmark".into();
        m
    }

    #[test]
    fn marker_round_trip() {
        let m = sample_marker();
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_len());
        assert_eq!(Marker::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn marker_array_round_trip() {
        let arr = MarkerArray { markers: vec![sample_marker(), Marker::default()] };
        let bytes = arr.to_bytes();
        assert_eq!(bytes.len(), arr.wire_len());
        assert_eq!(MarkerArray::from_bytes(&bytes).unwrap(), arr);
    }

    #[test]
    fn unknown_marker_type_is_rejected() {
        let mut bytes = sample_marker().to_bytes();
        // type field sits after header + ns + id
        let off = sample_marker().header.wire_len() + 4 + "cortex".len() + 4;
        bytes[off..off + 4].copy_from_slice(&77i32.to_le_bytes());
        assert!(Marker::from_bytes(&bytes).is_err());
    }
}
