//! `tf2_msgs/TFMessage` — the `/tf` transform stream.

use crate::geometry_msgs::TransformStamped;
use crate::msg::{read_seq, RosMessage};
use crate::wire::{WireError, WireWrite};

/// `tf2_msgs/TFMessage`: a batch of stamped transforms. The `/tf` topic in
/// the paper's Handheld-SLAM bag carries 16,411 of these in 3.6 MB
/// (Table II, row G).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TfMessage {
    pub transforms: Vec<TransformStamped>,
}

impl RosMessage for TfMessage {
    const DATATYPE: &'static str = "tf2_msgs/TFMessage";
    const DEFINITION: &'static str = "\
geometry_msgs/TransformStamped[] transforms
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.transforms.len() as u32);
        for t in &self.transforms {
            t.serialize(buf);
        }
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TfMessage { transforms: read_seq(cur, TransformStamped::deserialize)? })
    }

    fn wire_len(&self) -> usize {
        4 + self.transforms.iter().map(|t| t.wire_len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry_msgs::Vector3;
    use crate::time::Time;

    #[test]
    fn empty_round_trip() {
        let m = TfMessage::default();
        assert_eq!(TfMessage::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn multi_transform_round_trip() {
        let mut m = TfMessage::default();
        for i in 0..3 {
            let mut ts = TransformStamped::default();
            ts.header.seq = i;
            ts.header.stamp = Time::new(i, 0);
            ts.header.frame_id = "odom".into();
            ts.child_frame_id = format!("link_{i}");
            ts.transform.translation = Vector3::new(i as f64, 0.0, 0.0);
            m.transforms.push(ts);
        }
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.wire_len());
        assert_eq!(TfMessage::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn absurd_count_is_rejected() {
        let mut bytes = Vec::new();
        bytes.put_u32(1_000_000);
        assert!(TfMessage::from_bytes(&bytes).is_err());
    }
}
