//! ROS1 wire-format primitives.
//!
//! ROS1 serialization is little-endian and self-delimiting only through
//! length prefixes: scalars are fixed-width, strings and dynamic arrays are
//! prefixed with a `u32` element/byte count, and fixed-size arrays are laid
//! out raw. These helpers are shared by every message implementation and by
//! the bag record grammar in the `rosbag` crate (bag record headers use the
//! same length-prefixed encoding).

use std::fmt;

use crate::time::{RosDuration, Time};

/// Error produced when decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the expected number of bytes.
    Truncated { needed: usize, available: usize },
    /// A length prefix exceeded a sanity limit or the remaining input.
    BadLength(u64),
    /// String data was not valid UTF-8.
    BadUtf8,
    /// A domain-specific invariant was violated (free-form context).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            WireError::BadLength(n) => write!(f, "implausible length prefix: {n}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Invalid(msg) => write!(f, "invalid wire data: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serialization sink: everything is appended to a `Vec<u8>`.
///
/// All writers are infallible; buffers grow as needed. The trait exists so
/// message code reads symmetrically with [`WireRead`].
pub trait WireWrite {
    fn put_u8(&mut self, v: u8);
    fn put_bytes(&mut self, v: &[u8]);

    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
    #[inline]
    fn put_i16(&mut self, v: i16) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_i32(&mut self, v: i32) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_i64(&mut self, v: i64) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_f32(&mut self, v: f32) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_f64(&mut self, v: f64) {
        self.put_bytes(&v.to_le_bytes());
    }
    #[inline]
    fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// `u32` byte-length prefix + UTF-8 bytes.
    #[inline]
    fn put_string(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v.as_bytes());
    }

    /// `u32` byte-length prefix + raw bytes (ROS `uint8[]`).
    #[inline]
    fn put_byte_array(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    #[inline]
    fn put_time(&mut self, t: Time) {
        self.put_u32(t.sec);
        self.put_u32(t.nsec);
    }

    #[inline]
    fn put_duration(&mut self, d: RosDuration) {
        self.put_u32(d.sec);
        self.put_u32(d.nsec);
    }
}

impl WireWrite for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_bytes(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Deserialization source: a shrinking `&[u8]` cursor.
///
/// Implemented for `&[u8]` so callers write
/// `let mut cur: &[u8] = &buf; Msg::deserialize(&mut cur)`.
pub trait WireRead<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError>;
    fn remaining(&self) -> usize;

    #[inline]
    fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    #[inline]
    fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    #[inline]
    fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    #[inline]
    fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    #[inline]
    fn get_i8(&mut self) -> Result<i8, WireError> {
        Ok(self.get_u8()? as i8)
    }
    #[inline]
    fn get_i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    #[inline]
    fn get_i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    #[inline]
    fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    #[inline]
    fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    #[inline]
    fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    #[inline]
    fn get_bool(&mut self) -> Result<bool, WireError> {
        Ok(self.get_u8()? != 0)
    }

    #[inline]
    fn get_string(&mut self) -> Result<String, WireError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| WireError::BadUtf8)
    }

    #[inline]
    fn get_byte_array(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    #[inline]
    fn get_time(&mut self) -> Result<Time, WireError> {
        let sec = self.get_u32()?;
        let nsec = self.get_u32()?;
        Ok(Time { sec, nsec })
    }

    #[inline]
    fn get_duration(&mut self) -> Result<RosDuration, WireError> {
        let sec = self.get_u32()?;
        let nsec = self.get_u32()?;
        Ok(RosDuration { sec, nsec })
    }
}

impl<'a> WireRead<'a> for &'a [u8] {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.len() < n {
            return Err(WireError::Truncated { needed: n, available: self.len() });
        }
        let (head, tail) = self.split_at(n);
        *self = tail;
        Ok(head)
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_i32(-42);
        buf.put_f64(3.5);
        buf.put_bool(true);

        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u8().unwrap(), 0xAB);
        assert_eq!(cur.get_u16().unwrap(), 0x1234);
        assert_eq!(cur.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(cur.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_i32().unwrap(), -42);
        assert_eq!(cur.get_f64().unwrap(), 3.5);
        assert!(cur.get_bool().unwrap());
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn string_round_trip() {
        let mut buf = Vec::new();
        buf.put_string("/camera/rgb/image_color");
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_string().unwrap(), "/camera/rgb/image_color");
    }

    #[test]
    fn empty_string() {
        let mut buf = Vec::new();
        buf.put_string("");
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_string().unwrap(), "");
    }

    #[test]
    fn truncated_scalar_errors() {
        let mut cur: &[u8] = &[1, 2];
        assert!(matches!(cur.get_u32(), Err(WireError::Truncated { needed: 4, available: 2 })));
    }

    #[test]
    fn truncated_string_errors() {
        let mut buf = Vec::new();
        buf.put_u32(100);
        buf.put_bytes(b"short");
        let mut cur: &[u8] = &buf;
        assert!(matches!(cur.get_string(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut buf = Vec::new();
        buf.put_u32(2);
        buf.put_bytes(&[0xFF, 0xFE]);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_string(), Err(WireError::BadUtf8));
    }

    #[test]
    fn time_round_trip() {
        let t = Time::new(1234, 567_890);
        let mut buf = Vec::new();
        buf.put_time(t);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_time().unwrap(), t);
    }

    #[test]
    fn byte_array_round_trip() {
        let data = vec![7u8; 1024];
        let mut buf = Vec::new();
        buf.put_byte_array(&data);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_byte_array().unwrap(), data);
    }
}
