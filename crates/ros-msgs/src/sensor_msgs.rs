//! `sensor_msgs` types: `Image`, `CameraInfo` (+ `RegionOfInterest`), `Imu`.
//!
//! These are the bulk of the paper's Handheld-SLAM bag (Table II): depth and
//! RGB images account for >98% of the bytes, while `CameraInfo` and `Imu`
//! are the small structured messages whose queries BORA accelerates most.

use crate::geometry_msgs::{Quaternion, Vector3};
use crate::msg::RosMessage;
use crate::std_msgs::Header;
use crate::wire::{WireError, WireRead, WireWrite};

/// `sensor_msgs/Image` — an uncompressed camera frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Image {
    pub header: Header,
    pub height: u32,
    pub width: u32,
    /// Pixel encoding, e.g. `rgb8` or `32FC1` (TUM depth images).
    pub encoding: String,
    pub is_bigendian: u8,
    /// Row length in bytes.
    pub step: u32,
    pub data: Vec<u8>,
}

impl Image {
    /// Consistency check: `data.len() == step * height`.
    pub fn geometry_is_consistent(&self) -> bool {
        self.data.len() as u64 == self.step as u64 * self.height as u64
    }
}

impl RosMessage for Image {
    const DATATYPE: &'static str = "sensor_msgs/Image";
    const DEFINITION: &'static str = "\
std_msgs/Header header
uint32 height
uint32 width
string encoding
uint8 is_bigendian
uint32 step
uint8[] data
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_u32(self.height);
        buf.put_u32(self.width);
        buf.put_string(&self.encoding);
        buf.put_u8(self.is_bigendian);
        buf.put_u32(self.step);
        buf.put_byte_array(&self.data);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Image {
            header: Header::deserialize(cur)?,
            height: cur.get_u32()?,
            width: cur.get_u32()?,
            encoding: cur.get_string()?,
            is_bigendian: cur.get_u8()?,
            step: cur.get_u32()?,
            data: cur.get_byte_array()?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 4 + 4 + (4 + self.encoding.len()) + 1 + 4 + (4 + self.data.len())
    }
}

/// `sensor_msgs/RegionOfInterest` — sub-window of a camera image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionOfInterest {
    pub x_offset: u32,
    pub y_offset: u32,
    pub height: u32,
    pub width: u32,
    pub do_rectify: bool,
}

impl RosMessage for RegionOfInterest {
    const DATATYPE: &'static str = "sensor_msgs/RegionOfInterest";
    const DEFINITION: &'static str = "\
uint32 x_offset
uint32 y_offset
uint32 height
uint32 width
bool do_rectify
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.x_offset);
        buf.put_u32(self.y_offset);
        buf.put_u32(self.height);
        buf.put_u32(self.width);
        buf.put_bool(self.do_rectify);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RegionOfInterest {
            x_offset: cur.get_u32()?,
            y_offset: cur.get_u32()?,
            height: cur.get_u32()?,
            width: cur.get_u32()?,
            do_rectify: cur.get_bool()?,
        })
    }

    fn wire_len(&self) -> usize {
        17
    }
}

/// `sensor_msgs/CameraInfo` — calibration for one camera ("CameraPose Info"
/// in the paper's Table II; the topic whose time-range query BORA speeds up
/// by 11x in Fig. 13d because the messages are tiny but the baseline still
/// indexes the whole bag).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CameraInfo {
    pub header: Header,
    pub height: u32,
    pub width: u32,
    pub distortion_model: String,
    /// Distortion coefficients (dynamic array `float64[] D`).
    pub d: Vec<f64>,
    /// Intrinsic matrix, row-major 3x3 (`float64[9] K`).
    pub k: [f64; 9],
    /// Rectification matrix (`float64[9] R`).
    pub r: [f64; 9],
    /// Projection matrix (`float64[12] P`).
    pub p: [f64; 12],
    pub binning_x: u32,
    pub binning_y: u32,
    pub roi: RegionOfInterest,
}

impl RosMessage for CameraInfo {
    const DATATYPE: &'static str = "sensor_msgs/CameraInfo";
    const DEFINITION: &'static str = "\
std_msgs/Header header
uint32 height
uint32 width
string distortion_model
float64[] D
float64[9] K
float64[9] R
float64[12] P
uint32 binning_x
uint32 binning_y
sensor_msgs/RegionOfInterest roi
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_u32(self.height);
        buf.put_u32(self.width);
        buf.put_string(&self.distortion_model);
        buf.put_u32(self.d.len() as u32);
        for v in &self.d {
            buf.put_f64(*v);
        }
        for v in &self.k {
            buf.put_f64(*v);
        }
        for v in &self.r {
            buf.put_f64(*v);
        }
        for v in &self.p {
            buf.put_f64(*v);
        }
        buf.put_u32(self.binning_x);
        buf.put_u32(self.binning_y);
        self.roi.serialize(buf);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let height = cur.get_u32()?;
        let width = cur.get_u32()?;
        let distortion_model = cur.get_string()?;
        let nd = cur.get_u32()? as usize;
        if nd * 8 > cur.remaining() {
            return Err(WireError::BadLength(nd as u64));
        }
        let mut d = Vec::with_capacity(nd);
        for _ in 0..nd {
            d.push(cur.get_f64()?);
        }
        let mut k = [0.0; 9];
        for v in &mut k {
            *v = cur.get_f64()?;
        }
        let mut r = [0.0; 9];
        for v in &mut r {
            *v = cur.get_f64()?;
        }
        let mut p = [0.0; 12];
        for v in &mut p {
            *v = cur.get_f64()?;
        }
        Ok(CameraInfo {
            header,
            height,
            width,
            distortion_model,
            d,
            k,
            r,
            p,
            binning_x: cur.get_u32()?,
            binning_y: cur.get_u32()?,
            roi: RegionOfInterest::deserialize(cur)?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len()
            + 8
            + (4 + self.distortion_model.len())
            + (4 + self.d.len() * 8)
            + 9 * 8
            + 9 * 8
            + 12 * 8
            + 8
            + self.roi.wire_len()
    }
}

/// `sensor_msgs/Imu` — inertial measurement. The paper highlights that an
/// IMU message carries several 3x3 float64 covariance arrays, a structure
/// time-series databases could not represent (Section II.B).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Imu {
    pub header: Header,
    pub orientation: Quaternion,
    pub orientation_covariance: [f64; 9],
    pub angular_velocity: Vector3,
    pub angular_velocity_covariance: [f64; 9],
    pub linear_acceleration: Vector3,
    pub linear_acceleration_covariance: [f64; 9],
}

impl RosMessage for Imu {
    const DATATYPE: &'static str = "sensor_msgs/Imu";
    const DEFINITION: &'static str = "\
std_msgs/Header header
geometry_msgs/Quaternion orientation
float64[9] orientation_covariance
geometry_msgs/Vector3 angular_velocity
float64[9] angular_velocity_covariance
geometry_msgs/Vector3 linear_acceleration
float64[9] linear_acceleration_covariance
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        self.orientation.serialize(buf);
        for v in &self.orientation_covariance {
            buf.put_f64(*v);
        }
        self.angular_velocity.serialize(buf);
        for v in &self.angular_velocity_covariance {
            buf.put_f64(*v);
        }
        self.linear_acceleration.serialize(buf);
        for v in &self.linear_acceleration_covariance {
            buf.put_f64(*v);
        }
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let orientation = Quaternion::deserialize(cur)?;
        let mut oc = [0.0; 9];
        for v in &mut oc {
            *v = cur.get_f64()?;
        }
        let angular_velocity = Vector3::deserialize(cur)?;
        let mut avc = [0.0; 9];
        for v in &mut avc {
            *v = cur.get_f64()?;
        }
        let linear_acceleration = Vector3::deserialize(cur)?;
        let mut lac = [0.0; 9];
        for v in &mut lac {
            *v = cur.get_f64()?;
        }
        Ok(Imu {
            header,
            orientation,
            orientation_covariance: oc,
            angular_velocity,
            angular_velocity_covariance: avc,
            linear_acceleration,
            linear_acceleration_covariance: lac,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 32 + 72 + 24 + 72 + 24 + 72
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn sample_image() -> Image {
        Image {
            header: Header { seq: 1, stamp: Time::new(100, 0), frame_id: "camera_rgb".into() },
            height: 4,
            width: 8,
            encoding: "rgb8".into(),
            is_bigendian: 0,
            step: 24,
            data: (0..96).map(|i| i as u8).collect(),
        }
    }

    #[test]
    fn image_round_trip() {
        let img = sample_image();
        let bytes = img.to_bytes();
        assert_eq!(bytes.len(), img.wire_len());
        assert_eq!(Image::from_bytes(&bytes).unwrap(), img);
    }

    #[test]
    fn image_geometry_check() {
        let mut img = sample_image();
        assert!(img.geometry_is_consistent());
        img.data.pop();
        assert!(!img.geometry_is_consistent());
    }

    #[test]
    fn camera_info_round_trip() {
        let mut ci = CameraInfo {
            height: 480,
            width: 640,
            distortion_model: "plumb_bob".into(),
            d: vec![0.1, -0.2, 0.0, 0.0, 0.05],
            ..Default::default()
        };
        ci.k[0] = 525.0;
        ci.k[4] = 525.0;
        ci.k[8] = 1.0;
        ci.p[0] = 525.0;
        let bytes = ci.to_bytes();
        assert_eq!(bytes.len(), ci.wire_len());
        assert_eq!(CameraInfo::from_bytes(&bytes).unwrap(), ci);
    }

    #[test]
    fn imu_round_trip() {
        let mut imu = Imu::default();
        imu.header.stamp = Time::new(5, 5);
        imu.orientation_covariance[4] = 0.01;
        imu.linear_acceleration = Vector3::new(0.0, 0.0, 9.81);
        let bytes = imu.to_bytes();
        assert_eq!(bytes.len(), imu.wire_len());
        assert_eq!(Imu::from_bytes(&bytes).unwrap(), imu);
    }

    #[test]
    fn camera_info_rejects_absurd_d_length() {
        let ci = CameraInfo::default();
        let mut bytes = ci.to_bytes();
        // Corrupt the D-array length prefix (after header(4+8+4+frame len=0)
        // + height(4) + width(4) + distortion string len(4)).
        let d_len_off = ci.header.wire_len() + 4 + 4 + 4 + ci.distortion_model.len();
        bytes[d_len_off..d_len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(CameraInfo::from_bytes(&bytes).is_err());
    }

    #[test]
    fn imu_wire_len_matches_paper_scale() {
        // Table II: 24,367 IMU messages total 8.4 MB => ~345 B/message wire
        // size + bag record overhead. Our Imu with a short frame_id should
        // land in the low-300s.
        let mut imu = Imu::default();
        imu.header.frame_id = "imu_link".into();
        assert!((300..400).contains(&imu.wire_len()), "len={}", imu.wire_len());
    }
}

/// `sensor_msgs/LaserScan` — one sweep of a planar lidar (an unstructured
/// stream the paper lists among bag contents).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LaserScan {
    pub header: Header,
    pub angle_min: f32,
    pub angle_max: f32,
    pub angle_increment: f32,
    pub time_increment: f32,
    pub scan_time: f32,
    pub range_min: f32,
    pub range_max: f32,
    pub ranges: Vec<f32>,
    pub intensities: Vec<f32>,
}

impl RosMessage for LaserScan {
    const DATATYPE: &'static str = "sensor_msgs/LaserScan";
    const DEFINITION: &'static str = "\
std_msgs/Header header
float32 angle_min
float32 angle_max
float32 angle_increment
float32 time_increment
float32 scan_time
float32 range_min
float32 range_max
float32[] ranges
float32[] intensities
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        for v in [
            self.angle_min,
            self.angle_max,
            self.angle_increment,
            self.time_increment,
            self.scan_time,
            self.range_min,
            self.range_max,
        ] {
            buf.put_f32(v);
        }
        buf.put_u32(self.ranges.len() as u32);
        for v in &self.ranges {
            buf.put_f32(*v);
        }
        buf.put_u32(self.intensities.len() as u32);
        for v in &self.intensities {
            buf.put_f32(*v);
        }
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let angle_min = cur.get_f32()?;
        let angle_max = cur.get_f32()?;
        let angle_increment = cur.get_f32()?;
        let time_increment = cur.get_f32()?;
        let scan_time = cur.get_f32()?;
        let range_min = cur.get_f32()?;
        let range_max = cur.get_f32()?;
        let read_f32s = |cur: &mut &[u8]| -> Result<Vec<f32>, WireError> {
            let n = cur.get_u32()? as usize;
            if n * 4 > cur.remaining() {
                return Err(WireError::BadLength(n as u64));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(cur.get_f32()?);
            }
            Ok(out)
        };
        let ranges = read_f32s(cur)?;
        let intensities = read_f32s(cur)?;
        Ok(LaserScan {
            header,
            angle_min,
            angle_max,
            angle_increment,
            time_increment,
            scan_time,
            range_min,
            range_max,
            ranges,
            intensities,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 28 + (4 + self.ranges.len() * 4) + (4 + self.intensities.len() * 4)
    }
}

/// GPS fix status constants (subset of `sensor_msgs/NavSatStatus`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(i8)]
pub enum NavSatStatus {
    NoFix = -1,
    #[default]
    Fix = 0,
    SbasFix = 1,
    GbasFix = 2,
}

impl NavSatStatus {
    pub fn from_i8(v: i8) -> Result<Self, WireError> {
        Ok(match v {
            -1 => NavSatStatus::NoFix,
            0 => NavSatStatus::Fix,
            1 => NavSatStatus::SbasFix,
            2 => NavSatStatus::GbasFix,
            other => return Err(WireError::Invalid(format!("bad NavSatStatus {other}"))),
        })
    }
}

/// `sensor_msgs/NavSatFix` — GPS position (the "GPS locations" structured
/// data the paper's intro lists).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NavSatFix {
    pub header: Header,
    pub status: NavSatStatus,
    /// Which constellations contributed (bitmask; GPS=1, GLONASS=2, ...).
    pub service: u16,
    pub latitude: f64,
    pub longitude: f64,
    pub altitude: f64,
    pub position_covariance: [f64; 9],
    pub position_covariance_type: u8,
}

impl RosMessage for NavSatFix {
    const DATATYPE: &'static str = "sensor_msgs/NavSatFix";
    const DEFINITION: &'static str = "\
std_msgs/Header header
sensor_msgs/NavSatStatus status
float64 latitude
float64 longitude
float64 altitude
float64[9] position_covariance
uint8 position_covariance_type
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_i8(self.status as i8);
        buf.put_u16(self.service);
        buf.put_f64(self.latitude);
        buf.put_f64(self.longitude);
        buf.put_f64(self.altitude);
        for v in &self.position_covariance {
            buf.put_f64(*v);
        }
        buf.put_u8(self.position_covariance_type);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let status = NavSatStatus::from_i8(cur.get_i8()?)?;
        let service = cur.get_u16()?;
        let latitude = cur.get_f64()?;
        let longitude = cur.get_f64()?;
        let altitude = cur.get_f64()?;
        let mut cov = [0.0; 9];
        for v in &mut cov {
            *v = cur.get_f64()?;
        }
        Ok(NavSatFix {
            header,
            status,
            service,
            latitude,
            longitude,
            altitude,
            position_covariance: cov,
            position_covariance_type: cur.get_u8()?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 1 + 2 + 24 + 72 + 1
    }
}

/// `sensor_msgs/CompressedImage` — an encoded camera frame (the form
/// camera drivers often publish alongside raw images).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompressedImage {
    pub header: Header,
    /// e.g. `jpeg`, `png`.
    pub format: String,
    pub data: Vec<u8>,
}

impl RosMessage for CompressedImage {
    const DATATYPE: &'static str = "sensor_msgs/CompressedImage";
    const DEFINITION: &'static str = "\
std_msgs/Header header
string format
uint8[] data
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_string(&self.format);
        buf.put_byte_array(&self.data);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CompressedImage {
            header: Header::deserialize(cur)?,
            format: cur.get_string()?,
            data: cur.get_byte_array()?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len() + 4 + self.format.len() + 4 + self.data.len()
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn laser_scan_round_trip() {
        let mut scan = LaserScan::default();
        scan.header.stamp = Time::new(4, 2);
        scan.angle_min = -1.57;
        scan.angle_max = 1.57;
        scan.angle_increment = 0.01;
        scan.range_max = 30.0;
        scan.ranges = (0..314).map(|i| 0.5 + i as f32 * 0.01).collect();
        scan.intensities = vec![100.0; 314];
        let bytes = scan.to_bytes();
        assert_eq!(bytes.len(), scan.wire_len());
        assert_eq!(LaserScan::from_bytes(&bytes).unwrap(), scan);
    }

    #[test]
    fn laser_scan_absurd_length_rejected() {
        let scan = LaserScan::default();
        let mut bytes = scan.to_bytes();
        let off = scan.header.wire_len() + 28;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(LaserScan::from_bytes(&bytes).is_err());
    }

    #[test]
    fn nav_sat_fix_round_trip() {
        let mut fix = NavSatFix {
            status: NavSatStatus::SbasFix,
            service: 1,
            latitude: 31.1791,
            longitude: 121.5907,
            altitude: 12.2,
            ..Default::default()
        };
        fix.position_covariance[0] = 2.5;
        fix.position_covariance_type = 2;
        let bytes = fix.to_bytes();
        assert_eq!(bytes.len(), fix.wire_len());
        assert_eq!(NavSatFix::from_bytes(&bytes).unwrap(), fix);
    }

    #[test]
    fn nav_sat_bad_status_rejected() {
        let fix = NavSatFix::default();
        let mut bytes = fix.to_bytes();
        let off = fix.header.wire_len();
        bytes[off] = 9;
        assert!(NavSatFix::from_bytes(&bytes).is_err());
    }

    #[test]
    fn compressed_image_round_trip() {
        let img = CompressedImage {
            format: "jpeg".into(),
            data: vec![0xFF, 0xD8, 0xFF, 0xE0, 1, 2, 3],
            ..Default::default()
        };
        assert_eq!(CompressedImage::from_bytes(&img.to_bytes()).unwrap(), img);
    }
}

/// Datatype codes for [`PointField`] (values match ROS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PointFieldType {
    Int8 = 1,
    Uint8 = 2,
    Int16 = 3,
    Uint16 = 4,
    Int32 = 5,
    Uint32 = 6,
    Float32 = 7,
    Float64 = 8,
}

impl PointFieldType {
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => PointFieldType::Int8,
            2 => PointFieldType::Uint8,
            3 => PointFieldType::Int16,
            4 => PointFieldType::Uint16,
            5 => PointFieldType::Int32,
            6 => PointFieldType::Uint32,
            7 => PointFieldType::Float32,
            8 => PointFieldType::Float64,
            other => return Err(WireError::Invalid(format!("bad PointFieldType {other}"))),
        })
    }

    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            PointFieldType::Int8 | PointFieldType::Uint8 => 1,
            PointFieldType::Int16 | PointFieldType::Uint16 => 2,
            PointFieldType::Int32 | PointFieldType::Uint32 | PointFieldType::Float32 => 4,
            PointFieldType::Float64 => 8,
        }
    }
}

/// `sensor_msgs/PointField` — one field of a point cloud's point layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointField {
    pub name: String,
    pub offset: u32,
    pub datatype: PointFieldType,
    pub count: u32,
}

impl RosMessage for PointField {
    const DATATYPE: &'static str = "sensor_msgs/PointField";
    const DEFINITION: &'static str = "\
string name
uint32 offset
uint8 datatype
uint32 count
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_string(&self.name);
        buf.put_u32(self.offset);
        buf.put_u8(self.datatype as u8);
        buf.put_u32(self.count);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PointField {
            name: cur.get_string()?,
            offset: cur.get_u32()?,
            datatype: PointFieldType::from_u8(cur.get_u8()?)?,
            count: cur.get_u32()?,
        })
    }

    fn wire_len(&self) -> usize {
        4 + self.name.len() + 9
    }
}

/// `sensor_msgs/PointCloud2` — the point-cloud format SLAM pipelines build
/// from depth images (the paper's motivating SLAM workload produces these).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointCloud2 {
    pub header: Header,
    pub height: u32,
    pub width: u32,
    pub fields: Vec<PointField>,
    pub is_bigendian: bool,
    pub point_step: u32,
    pub row_step: u32,
    pub data: Vec<u8>,
    pub is_dense: bool,
}

impl PointCloud2 {
    /// Standard XYZ float32 layout helper.
    pub fn xyz_layout() -> Vec<PointField> {
        ["x", "y", "z"]
            .iter()
            .enumerate()
            .map(|(i, n)| PointField {
                name: (*n).to_owned(),
                offset: (i * 4) as u32,
                datatype: PointFieldType::Float32,
                count: 1,
            })
            .collect()
    }

    /// Number of points implied by the dimensions.
    pub fn point_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Layout sanity: data must be `row_step * height` and `point_step`
    /// must cover every field.
    pub fn layout_is_consistent(&self) -> bool {
        let fields_end = self
            .fields
            .iter()
            .map(|f| f.offset as usize + f.datatype.size() * f.count as usize)
            .max()
            .unwrap_or(0);
        fields_end <= self.point_step as usize
            && self.row_step as u64 >= self.point_step as u64 * self.width as u64
            && self.data.len() as u64 == self.row_step as u64 * self.height as u64
    }
}

impl RosMessage for PointCloud2 {
    const DATATYPE: &'static str = "sensor_msgs/PointCloud2";
    const DEFINITION: &'static str = "\
std_msgs/Header header
uint32 height
uint32 width
sensor_msgs/PointField[] fields
bool is_bigendian
uint32 point_step
uint32 row_step
uint8[] data
bool is_dense
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_u32(self.height);
        buf.put_u32(self.width);
        buf.put_u32(self.fields.len() as u32);
        for f in &self.fields {
            f.serialize(buf);
        }
        buf.put_bool(self.is_bigendian);
        buf.put_u32(self.point_step);
        buf.put_u32(self.row_step);
        buf.put_byte_array(&self.data);
        buf.put_bool(self.is_dense);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let height = cur.get_u32()?;
        let width = cur.get_u32()?;
        let fields = crate::msg::read_seq(cur, PointField::deserialize)?;
        Ok(PointCloud2 {
            header,
            height,
            width,
            fields,
            is_bigendian: cur.get_bool()?,
            point_step: cur.get_u32()?,
            row_step: cur.get_u32()?,
            data: cur.get_byte_array()?,
            is_dense: cur.get_bool()?,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len()
            + 8
            + 4
            + self.fields.iter().map(|f| f.wire_len()).sum::<usize>()
            + 1
            + 8
            + (4 + self.data.len())
            + 1
    }
}

#[cfg(test)]
mod pointcloud_tests {
    use super::*;

    fn sample_cloud(points: u32) -> PointCloud2 {
        let mut pc = PointCloud2::default();
        pc.header.frame_id = "map".into();
        pc.height = 1;
        pc.width = points;
        pc.fields = PointCloud2::xyz_layout();
        pc.point_step = 12;
        pc.row_step = 12 * points;
        pc.data = (0..12 * points).map(|i| i as u8).collect();
        pc.is_dense = true;
        pc
    }

    #[test]
    fn point_cloud_round_trip() {
        let pc = sample_cloud(64);
        let bytes = pc.to_bytes();
        assert_eq!(bytes.len(), pc.wire_len());
        assert_eq!(PointCloud2::from_bytes(&bytes).unwrap(), pc);
    }

    #[test]
    fn layout_checks() {
        let pc = sample_cloud(8);
        assert!(pc.layout_is_consistent());
        assert_eq!(pc.point_count(), 8);
        let mut bad = sample_cloud(8);
        bad.point_step = 8; // xyz needs 12
        assert!(!bad.layout_is_consistent());
        let mut short = sample_cloud(8);
        short.data.pop();
        assert!(!short.layout_is_consistent());
    }

    #[test]
    fn bad_field_type_rejected() {
        let pc = sample_cloud(1);
        let mut bytes = pc.to_bytes();
        // First field's datatype byte: header + h/w + field count + name(4+1) + offset(4)
        let off = pc.header.wire_len() + 8 + 4 + 5 + 4;
        bytes[off] = 99;
        assert!(PointCloud2::from_bytes(&bytes).is_err());
    }

    #[test]
    fn field_sizes() {
        assert_eq!(PointFieldType::Float64.size(), 8);
        assert_eq!(PointFieldType::Uint8.size(), 1);
        assert!(PointFieldType::from_u8(0).is_err());
    }
}
