//! `std_msgs` primitives: `Header` and `ColorRGBA`.

use crate::msg::RosMessage;
use crate::time::Time;
use crate::wire::{WireError, WireRead, WireWrite};

/// `std_msgs/Header` — sequence number, stamp, and coordinate frame id.
/// Present at the front of every stamped sensor message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Header {
    pub seq: u32,
    pub stamp: Time,
    pub frame_id: String,
}

impl RosMessage for Header {
    const DATATYPE: &'static str = "std_msgs/Header";
    const DEFINITION: &'static str = "\
uint32 seq
time stamp
string frame_id
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.seq);
        buf.put_time(self.stamp);
        buf.put_string(&self.frame_id);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Header { seq: cur.get_u32()?, stamp: cur.get_time()?, frame_id: cur.get_string()? })
    }

    fn wire_len(&self) -> usize {
        4 + 8 + 4 + self.frame_id.len()
    }
}

/// `std_msgs/ColorRGBA` — used by visualization markers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ColorRgba {
    pub r: f32,
    pub g: f32,
    pub b: f32,
    pub a: f32,
}

impl RosMessage for ColorRgba {
    const DATATYPE: &'static str = "std_msgs/ColorRGBA";
    const DEFINITION: &'static str = "\
float32 r
float32 g
float32 b
float32 a
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        buf.put_f32(self.r);
        buf.put_f32(self.g);
        buf.put_f32(self.b);
        buf.put_f32(self.a);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ColorRgba { r: cur.get_f32()?, g: cur.get_f32()?, b: cur.get_f32()?, a: cur.get_f32()? })
    }

    fn wire_len(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = Header { seq: 42, stamp: Time::new(100, 5), frame_id: "base_link".into() };
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), h.wire_len());
        assert_eq!(Header::from_bytes(&bytes).unwrap(), h);
    }

    #[test]
    fn color_round_trip() {
        let c = ColorRgba { r: 0.1, g: 0.2, b: 0.3, a: 1.0 };
        assert_eq!(ColorRgba::from_bytes(&c.to_bytes()).unwrap(), c);
    }
}
