//! The [`RosMessage`] trait and dynamic message handling.

use crate::md5;
use crate::wire::{WireError, WireRead};

/// A serializable ROS1 message type.
///
/// Implementations mirror ROS1's generated message classes: a datatype name
/// (`package/Type`), the full `.msg` definition text (stored verbatim in bag
/// connection records), and little-endian field serialization.
pub trait RosMessage: Sized {
    /// Fully qualified datatype, e.g. `sensor_msgs/Imu`.
    const DATATYPE: &'static str;
    /// The `.msg` definition text recorded in connection headers.
    const DEFINITION: &'static str;

    /// Append the wire encoding of `self` to `buf`.
    fn serialize(&self, buf: &mut Vec<u8>);

    /// Decode one message from the front of `cur`, advancing it.
    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError>;

    /// Exact wire size in bytes (used to pre-size buffers).
    fn wire_len(&self) -> usize;

    /// The `md5sum` connection-header field: digest of the canonical
    /// definition text, as ROS does for type compatibility checks.
    fn md5sum() -> String {
        md5::hex_digest(Self::DEFINITION.as_bytes())
    }

    /// Serialize into a fresh, exactly-sized buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.serialize(&mut buf);
        debug_assert_eq!(buf.len(), self.wire_len(), "wire_len mismatch for {}", Self::DATATYPE);
        buf
    }

    /// Decode from an exact buffer, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut cur = bytes;
        let msg = Self::deserialize(&mut cur)?;
        if !cur.is_empty() {
            return Err(WireError::Invalid(format!(
                "{} decode left {} trailing bytes",
                Self::DATATYPE,
                cur.len()
            )));
        }
        Ok(msg)
    }
}

/// Type metadata for a message class, independent of any instance — what a
/// bag *connection record* carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageDescriptor {
    pub datatype: String,
    pub md5sum: String,
    pub definition: String,
}

impl MessageDescriptor {
    pub fn of<M: RosMessage>() -> Self {
        MessageDescriptor {
            datatype: M::DATATYPE.to_owned(),
            md5sum: M::md5sum(),
            definition: M::DEFINITION.to_owned(),
        }
    }
}

/// A dynamically typed message: any of the concrete types the BORA
/// workloads use, or an opaque payload for types this crate does not model.
///
/// Bags and BORA containers move messages as raw bytes; `AnyMessage` is the
/// decoded view used by examples and analysis code.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMessage {
    Image(crate::sensor_msgs::Image),
    CameraInfo(crate::sensor_msgs::CameraInfo),
    Imu(crate::sensor_msgs::Imu),
    TfMessage(crate::tf2_msgs::TfMessage),
    MarkerArray(crate::visualization_msgs::MarkerArray),
    /// A message of a type this crate has no struct for.
    Opaque {
        datatype: String,
        bytes: Vec<u8>,
    },
}

impl AnyMessage {
    /// Decode `bytes` according to `datatype`; unknown types are kept opaque.
    pub fn decode(datatype: &str, bytes: &[u8]) -> Result<Self, WireError> {
        use crate::{sensor_msgs, tf2_msgs, visualization_msgs};
        Ok(match datatype {
            sensor_msgs::Image::DATATYPE => {
                AnyMessage::Image(sensor_msgs::Image::from_bytes(bytes)?)
            }
            sensor_msgs::CameraInfo::DATATYPE => {
                AnyMessage::CameraInfo(sensor_msgs::CameraInfo::from_bytes(bytes)?)
            }
            sensor_msgs::Imu::DATATYPE => AnyMessage::Imu(sensor_msgs::Imu::from_bytes(bytes)?),
            tf2_msgs::TfMessage::DATATYPE => {
                AnyMessage::TfMessage(tf2_msgs::TfMessage::from_bytes(bytes)?)
            }
            visualization_msgs::MarkerArray::DATATYPE => {
                AnyMessage::MarkerArray(visualization_msgs::MarkerArray::from_bytes(bytes)?)
            }
            other => AnyMessage::Opaque { datatype: other.to_owned(), bytes: bytes.to_vec() },
        })
    }

    /// The datatype string of the contained message.
    pub fn datatype(&self) -> &str {
        match self {
            AnyMessage::Image(_) => crate::sensor_msgs::Image::DATATYPE,
            AnyMessage::CameraInfo(_) => crate::sensor_msgs::CameraInfo::DATATYPE,
            AnyMessage::Imu(_) => crate::sensor_msgs::Imu::DATATYPE,
            AnyMessage::TfMessage(_) => crate::tf2_msgs::TfMessage::DATATYPE,
            AnyMessage::MarkerArray(_) => crate::visualization_msgs::MarkerArray::DATATYPE,
            AnyMessage::Opaque { datatype, .. } => datatype,
        }
    }

    /// Re-encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AnyMessage::Image(m) => m.to_bytes(),
            AnyMessage::CameraInfo(m) => m.to_bytes(),
            AnyMessage::Imu(m) => m.to_bytes(),
            AnyMessage::TfMessage(m) => m.to_bytes(),
            AnyMessage::MarkerArray(m) => m.to_bytes(),
            AnyMessage::Opaque { bytes, .. } => bytes.clone(),
        }
    }
}

/// Helper used by generated-style code: read a length-prefixed sequence of
/// `T` messages.
pub fn read_seq<'a, T, R, F>(cur: &mut R, mut read_one: F) -> Result<Vec<T>, WireError>
where
    R: WireRead<'a>,
    F: FnMut(&mut R) -> Result<T, WireError>,
{
    let n = cur.get_u32()? as usize;
    // Sanity bound: each element needs at least one byte on the wire.
    if n > cur.remaining() {
        return Err(WireError::BadLength(n as u64));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_one(cur)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor_msgs::Imu;

    #[test]
    fn md5sum_is_stable_and_distinct() {
        let imu = Imu::md5sum();
        let img = crate::sensor_msgs::Image::md5sum();
        assert_eq!(imu.len(), 32);
        assert_ne!(imu, img);
        assert_eq!(imu, Imu::md5sum());
    }

    #[test]
    fn descriptor_carries_definition() {
        let d = MessageDescriptor::of::<Imu>();
        assert_eq!(d.datatype, "sensor_msgs/Imu");
        assert!(d.definition.contains("angular_velocity"));
        assert_eq!(d.md5sum, Imu::md5sum());
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = Imu::default().to_bytes();
        bytes.push(0xFF);
        assert!(Imu::from_bytes(&bytes).is_err());
    }

    #[test]
    fn any_message_round_trip() {
        let mut imu = Imu::default();
        imu.angular_velocity.x = 0.25;
        let bytes = imu.to_bytes();
        let any = AnyMessage::decode(Imu::DATATYPE, &bytes).unwrap();
        assert_eq!(any.datatype(), Imu::DATATYPE);
        assert_eq!(any.encode(), bytes);
        match any {
            AnyMessage::Imu(m) => assert_eq!(m.angular_velocity.x, 0.25),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn unknown_datatype_stays_opaque() {
        let any = AnyMessage::decode("nav_msgs/Odometry", &[1, 2, 3]).unwrap();
        assert_eq!(any.datatype(), "nav_msgs/Odometry");
        assert_eq!(any.encode(), vec![1, 2, 3]);
    }
}
