//! A from-scratch MD5 implementation (RFC 1321).
//!
//! ROS identifies message types by the MD5 digest of a canonicalized
//! message definition; `rosbag` stores that digest in every connection
//! record's `md5sum` field. The reproduction computes real digests so
//! connection records are faithful to the format, and so two bags that
//! disagree on a message definition are detectably incompatible — the same
//! property ROS relies on.
//!
//! MD5 is used here strictly as a *format fingerprint*, never for security.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Binary integer parts of sin(i+1) * 2^32 (the RFC 1321 T table).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 context.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    /// Buffer for a partial trailing block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Feed bytes into the digest.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let want = 64 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish the digest and return the 16-byte result.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until length ≡ 56 (mod 64).
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is appended outside `update` accounting.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.compress(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }

        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot digest of `data`, as a lowercase hex string (the form ROS stores
/// in connection headers).
pub fn hex_digest(data: &[u8]) -> String {
    let mut ctx = Md5::new();
    ctx.update(data);
    to_hex(&ctx.finalize())
}

fn to_hex(bytes: &[u8; 16]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(32);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xF) as usize] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex_digest(input.as_bytes()), *want, "input: {input:?}");
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let one_shot = hex_digest(&data);

        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut ctx = Md5::new();
            for chunk in data.chunks(chunk_size) {
                ctx.update(chunk);
            }
            assert_eq!(to_hex(&ctx.finalize()), one_shot, "chunk={chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths straddling the 56-byte padding boundary and block size.
        for len in 54..=70usize {
            let data = vec![b'x'; len];
            // Just ensure no panic and stable output across calls.
            assert_eq!(hex_digest(&data), hex_digest(&data));
        }
    }
}
