//! ROS1 message model and wire serialization, implemented from scratch.
//!
//! The BORA paper (SC20) operates on ROS *bags*: files of timestamped,
//! serialized ROS messages. This crate provides the message layer that the
//! rest of the reproduction is built on:
//!
//! * [`Time`] / [`RosDuration`] — ROS1 time representation (`u32` seconds +
//!   `u32` nanoseconds since the epoch).
//! * [`RosMessage`] — the serialization trait implemented by every message
//!   type, mirroring ROS1's little-endian wire format (fixed-width scalars,
//!   `u32`-length-prefixed strings and dynamic arrays).
//! * Message types used by the paper's workloads (Table II of the paper):
//!   `sensor_msgs/Image`, `sensor_msgs/CameraInfo`, `sensor_msgs/Imu`,
//!   `tf2_msgs/TFMessage`, `visualization_msgs/MarkerArray`, and the
//!   `std_msgs`/`geometry_msgs` primitives they are composed of.
//! * [`md5`] — a from-scratch MD5 implementation used to derive the
//!   `md5sum` field of bag connection headers from message definitions,
//!   exactly as `rosbag` stores it.
//!
//! # Example
//!
//! ```
//! use ros_msgs::{sensor_msgs::Imu, RosMessage, Time};
//!
//! let mut imu = Imu::default();
//! imu.header.stamp = Time::from_sec_f64(12.5);
//! imu.linear_acceleration.z = 9.81;
//!
//! let mut buf = Vec::new();
//! imu.serialize(&mut buf);
//! let back = Imu::deserialize(&mut buf.as_slice()).unwrap();
//! assert_eq!(back.linear_acceleration.z, 9.81);
//! ```

pub mod geometry_msgs;
pub mod md5;
pub mod msg;
pub mod nav_msgs;
pub mod sensor_msgs;
pub mod std_msgs;
pub mod tf2_msgs;
pub mod time;
pub mod visualization_msgs;
pub mod wire;

pub use msg::{AnyMessage, MessageDescriptor, RosMessage};
pub use time::{RosDuration, Time};
pub use wire::{WireError, WireRead, WireWrite};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WireError>;
