//! `nav_msgs` types: `Odometry` (pose + twist with covariances).

use crate::geometry_msgs::{Pose, Vector3};
use crate::msg::RosMessage;
use crate::std_msgs::Header;
use crate::wire::{WireError, WireRead, WireWrite};

/// `geometry_msgs/Twist` — linear + angular velocity (defined here as it
/// is only used by `Odometry` in this workspace).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Twist {
    pub linear: Vector3,
    pub angular: Vector3,
}

impl RosMessage for Twist {
    const DATATYPE: &'static str = "geometry_msgs/Twist";
    const DEFINITION: &'static str = "\
geometry_msgs/Vector3 linear
geometry_msgs/Vector3 angular
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.linear.serialize(buf);
        self.angular.serialize(buf);
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Twist { linear: Vector3::deserialize(cur)?, angular: Vector3::deserialize(cur)? })
    }

    fn wire_len(&self) -> usize {
        48
    }
}

/// `nav_msgs/Odometry` — estimated pose and twist in two frames, each
/// with a 6x6 covariance (more nested arrays no flat store can hold).
#[derive(Debug, Clone, PartialEq)]
pub struct Odometry {
    pub header: Header,
    pub child_frame_id: String,
    pub pose: Pose,
    pub pose_covariance: [f64; 36],
    pub twist: Twist,
    pub twist_covariance: [f64; 36],
}

impl Default for Odometry {
    fn default() -> Self {
        Odometry {
            header: Header::default(),
            child_frame_id: String::new(),
            pose: Pose::default(),
            pose_covariance: [0.0; 36],
            twist: Twist::default(),
            twist_covariance: [0.0; 36],
        }
    }
}

impl RosMessage for Odometry {
    const DATATYPE: &'static str = "nav_msgs/Odometry";
    const DEFINITION: &'static str = "\
std_msgs/Header header
string child_frame_id
geometry_msgs/PoseWithCovariance pose
geometry_msgs/TwistWithCovariance twist
";

    fn serialize(&self, buf: &mut Vec<u8>) {
        self.header.serialize(buf);
        buf.put_string(&self.child_frame_id);
        self.pose.serialize(buf);
        for v in &self.pose_covariance {
            buf.put_f64(*v);
        }
        self.twist.serialize(buf);
        for v in &self.twist_covariance {
            buf.put_f64(*v);
        }
    }

    fn deserialize(cur: &mut &[u8]) -> Result<Self, WireError> {
        let header = Header::deserialize(cur)?;
        let child_frame_id = cur.get_string()?;
        let pose = Pose::deserialize(cur)?;
        let mut pc = [0.0; 36];
        for v in &mut pc {
            *v = cur.get_f64()?;
        }
        let twist = Twist::deserialize(cur)?;
        let mut tc = [0.0; 36];
        for v in &mut tc {
            *v = cur.get_f64()?;
        }
        Ok(Odometry {
            header,
            child_frame_id,
            pose,
            pose_covariance: pc,
            twist,
            twist_covariance: tc,
        })
    }

    fn wire_len(&self) -> usize {
        self.header.wire_len()
            + 4
            + self.child_frame_id.len()
            + self.pose.wire_len()
            + 288
            + self.twist.wire_len()
            + 288
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn odometry_round_trip() {
        let mut o = Odometry::default();
        o.header.stamp = Time::new(9, 1);
        o.child_frame_id = "base_link".into();
        o.pose.position.x = 1.5;
        o.pose_covariance[0] = 0.01;
        o.twist.linear.x = 0.4;
        o.twist_covariance[35] = 0.2;
        let bytes = o.to_bytes();
        assert_eq!(bytes.len(), o.wire_len());
        assert_eq!(Odometry::from_bytes(&bytes).unwrap(), o);
    }

    #[test]
    fn twist_round_trip() {
        let t =
            Twist { linear: Vector3::new(1.0, 2.0, 3.0), angular: Vector3::new(-0.1, 0.0, 0.1) };
        assert_eq!(Twist::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn junk_rejected() {
        assert!(Odometry::from_bytes(&[1, 2, 3]).is_err());
    }
}
