//! ROS1 time representation.
//!
//! ROS1 represents instants as `(u32 sec, u32 nsec)` since the Unix epoch
//! and durations the same way (signed in real ROS; our workloads only need
//! unsigned durations). Bags store both message *receive* timestamps (in
//! record headers) and any stamps embedded in message bodies using this
//! encoding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

pub const NSEC_PER_SEC: u64 = 1_000_000_000;

/// An instant in ROS1 time: seconds + nanoseconds since the epoch.
///
/// Ordering is chronological. The type is `Copy` and 8 bytes, so it is used
/// pervasively in index entries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time {
    pub sec: u32,
    pub nsec: u32,
}

impl Time {
    pub const ZERO: Time = Time { sec: 0, nsec: 0 };
    pub const MAX: Time = Time { sec: u32::MAX, nsec: (NSEC_PER_SEC - 1) as u32 };

    /// Construct from components, normalizing `nsec >= 1e9` overflow.
    pub fn new(sec: u32, nsec: u32) -> Self {
        let extra = nsec as u64 / NSEC_PER_SEC;
        Time { sec: sec + extra as u32, nsec: (nsec as u64 % NSEC_PER_SEC) as u32 }
    }

    /// Total nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.sec as u64 * NSEC_PER_SEC + self.nsec as u64
    }

    /// Construct from total nanoseconds since the epoch.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        Time { sec: (ns / NSEC_PER_SEC) as u32, nsec: (ns % NSEC_PER_SEC) as u32 }
    }

    /// Construct from floating-point seconds (convenient in workloads).
    pub fn from_sec_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0);
        Self::from_nanos((s * NSEC_PER_SEC as f64).round() as u64)
    }

    /// Seconds as `f64` (lossy; for reporting only).
    pub fn as_sec_f64(self) -> f64 {
        self.sec as f64 + self.nsec as f64 / NSEC_PER_SEC as f64
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_duration_since(self, earlier: Time) -> RosDuration {
        RosDuration::from_nanos(self.as_nanos().saturating_sub(earlier.as_nanos()))
    }

    /// True if `self` lies in the half-open range `[start, end)`.
    pub fn in_range(self, start: Time, end: Time) -> bool {
        self >= start && self < end
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({}.{:09})", self.sec, self.nsec)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:09}", self.sec, self.nsec)
    }
}

/// A span of ROS1 time (unsigned; the reproduction never needs negative
/// durations).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct RosDuration {
    pub sec: u32,
    pub nsec: u32,
}

impl RosDuration {
    pub const ZERO: RosDuration = RosDuration { sec: 0, nsec: 0 };

    pub fn from_nanos(ns: u64) -> Self {
        RosDuration { sec: (ns / NSEC_PER_SEC) as u32, nsec: (ns % NSEC_PER_SEC) as u32 }
    }

    pub fn from_sec_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0);
        Self::from_nanos((s * NSEC_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.sec as u64 * NSEC_PER_SEC + self.nsec as u64
    }

    pub fn as_sec_f64(self) -> f64 {
        self.sec as f64 + self.nsec as f64 / NSEC_PER_SEC as f64
    }
}

impl Add<RosDuration> for Time {
    type Output = Time;
    fn add(self, rhs: RosDuration) -> Time {
        Time::from_nanos(self.as_nanos() + rhs.as_nanos())
    }
}

impl AddAssign<RosDuration> for Time {
    fn add_assign(&mut self, rhs: RosDuration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = RosDuration;
    fn sub(self, rhs: Time) -> RosDuration {
        self.saturating_duration_since(rhs)
    }
}

impl Add for RosDuration {
    type Output = RosDuration;
    fn add(self, rhs: RosDuration) -> RosDuration {
        RosDuration::from_nanos(self.as_nanos() + rhs.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_round_trip() {
        for ns in [0u64, 1, 999_999_999, 1_000_000_000, 1_234_567_891_234] {
            assert_eq!(Time::from_nanos(ns).as_nanos(), ns);
        }
    }

    #[test]
    fn new_normalizes_nsec_overflow() {
        let t = Time::new(1, 2_500_000_000);
        assert_eq!(t.sec, 3);
        assert_eq!(t.nsec, 500_000_000);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Time::new(5, 10);
        let b = Time::new(5, 11);
        let c = Time::new(6, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn arithmetic() {
        let t = Time::new(10, 500_000_000);
        let d = RosDuration::from_sec_f64(1.75);
        let u = t + d;
        assert_eq!(u, Time::new(12, 250_000_000));
        assert_eq!((u - t).as_nanos(), d.as_nanos());
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = Time::new(1, 0);
        let b = Time::new(2, 0);
        assert_eq!((a - b).as_nanos(), 0);
    }

    #[test]
    fn from_sec_f64_rounds() {
        let t = Time::from_sec_f64(1.5);
        assert_eq!(t.sec, 1);
        assert_eq!(t.nsec, 500_000_000);
    }

    #[test]
    fn in_range_is_half_open() {
        let s = Time::new(10, 0);
        let e = Time::new(20, 0);
        assert!(Time::new(10, 0).in_range(s, e));
        assert!(Time::new(19, 999_999_999).in_range(s, e));
        assert!(!Time::new(20, 0).in_range(s, e));
        assert!(!Time::new(9, 999_999_999).in_range(s, e));
    }
}
