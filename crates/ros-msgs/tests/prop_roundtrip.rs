//! Property-based round-trip tests for the wire format: for every message
//! type, `deserialize(serialize(m)) == m` and `serialize` produces exactly
//! `wire_len()` bytes, for arbitrary field values.

use proptest::prelude::*;
use ros_msgs::geometry_msgs::{Point, Pose, Quaternion, Transform, TransformStamped, Vector3};
use ros_msgs::sensor_msgs::{CameraInfo, Image, Imu, RegionOfInterest};
use ros_msgs::std_msgs::{ColorRgba, Header};
use ros_msgs::tf2_msgs::TfMessage;
use ros_msgs::visualization_msgs::{Marker, MarkerArray, MarkerType};
use ros_msgs::{RosMessage, Time};

fn arb_time() -> impl Strategy<Value = Time> {
    (any::<u32>(), 0u32..1_000_000_000).prop_map(|(sec, nsec)| Time { sec, nsec })
}

fn arb_header() -> impl Strategy<Value = Header> {
    (any::<u32>(), arb_time(), "[a-z_/]{0,24}").prop_map(|(seq, stamp, frame_id)| Header {
        seq,
        stamp,
        frame_id,
    })
}

fn arb_vector3() -> impl Strategy<Value = Vector3> {
    (any::<f64>(), any::<f64>(), any::<f64>()).prop_map(|(x, y, z)| Vector3 { x, y, z })
}

fn arb_quat() -> impl Strategy<Value = Quaternion> {
    (any::<f64>(), any::<f64>(), any::<f64>(), any::<f64>()).prop_map(|(x, y, z, w)| Quaternion {
        x,
        y,
        z,
        w,
    })
}

fn arb_transform_stamped() -> impl Strategy<Value = TransformStamped> {
    (arb_header(), "[a-z_]{0,16}", arb_vector3(), arb_quat()).prop_map(|(header, child, t, r)| {
        TransformStamped {
            header,
            child_frame_id: child,
            transform: Transform { translation: t, rotation: r },
        }
    })
}

fn arb_marker() -> impl Strategy<Value = Marker> {
    (
        arb_header(),
        "[a-z]{0,8}",
        any::<i32>(),
        prop::sample::select(vec![
            MarkerType::Arrow,
            MarkerType::Cube,
            MarkerType::Sphere,
            MarkerType::LineStrip,
        ]),
        arb_vector3(),
        prop::collection::vec(
            (any::<f64>(), any::<f64>(), any::<f64>()).prop_map(|(x, y, z)| Point { x, y, z }),
            0..8,
        ),
    )
        .prop_map(|(header, ns, id, marker_type, scale, points)| Marker {
            header,
            ns,
            id,
            marker_type,
            scale,
            points,
            color: ColorRgba { r: 0.5, g: 0.5, b: 0.5, a: 1.0 },
            ..Default::default()
        })
}

/// Bit-exact comparison for messages containing floats (NaN != NaN under
/// PartialEq, so compare serialized bytes instead).
fn assert_roundtrip<M: RosMessage + std::fmt::Debug>(m: &M) {
    let bytes = m.to_bytes();
    assert_eq!(bytes.len(), m.wire_len(), "wire_len mismatch");
    let back = M::from_bytes(&bytes).expect("deserialize");
    assert_eq!(back.to_bytes(), bytes, "re-serialization differs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn header_roundtrip(h in arb_header()) {
        assert_roundtrip(&h);
    }

    #[test]
    fn vector3_roundtrip(v in arb_vector3()) {
        assert_roundtrip(&v);
    }

    #[test]
    fn quaternion_roundtrip(q in arb_quat()) {
        assert_roundtrip(&q);
    }

    #[test]
    fn pose_roundtrip(p in (arb_vector3(), arb_quat())) {
        let pose = Pose {
            position: Point { x: p.0.x, y: p.0.y, z: p.0.z },
            orientation: p.1,
        };
        assert_roundtrip(&pose);
    }

    #[test]
    fn transform_stamped_roundtrip(ts in arb_transform_stamped()) {
        assert_roundtrip(&ts);
    }

    #[test]
    fn tf_message_roundtrip(transforms in prop::collection::vec(arb_transform_stamped(), 0..6)) {
        assert_roundtrip(&TfMessage { transforms });
    }

    #[test]
    fn image_roundtrip(
        header in arb_header(),
        height in 0u32..64,
        width in 0u32..64,
        encoding in "[a-zA-Z0-9]{0,8}",
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let img = Image {
            header,
            height,
            width,
            encoding,
            is_bigendian: 0,
            step: width * 3,
            data,
        };
        assert_roundtrip(&img);
    }

    #[test]
    fn camera_info_roundtrip(
        header in arb_header(),
        d in prop::collection::vec(any::<f64>(), 0..8),
        k0 in any::<f64>(),
    ) {
        let mut ci = CameraInfo { header, d, ..Default::default() };
        ci.k[0] = k0;
        ci.roi = RegionOfInterest { x_offset: 1, y_offset: 2, height: 3, width: 4, do_rectify: true };
        assert_roundtrip(&ci);
    }

    #[test]
    fn imu_roundtrip(header in arb_header(), av in arb_vector3(), la in arb_vector3()) {
        let imu =
            Imu { header, angular_velocity: av, linear_acceleration: la, ..Default::default() };
        assert_roundtrip(&imu);
    }

    #[test]
    fn marker_array_roundtrip(markers in prop::collection::vec(arb_marker(), 0..4)) {
        assert_roundtrip(&MarkerArray { markers });
    }

    /// Decoding arbitrary junk must never panic — it may only error.
    #[test]
    fn decode_junk_never_panics(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Imu::from_bytes(&junk);
        let _ = Image::from_bytes(&junk);
        let _ = CameraInfo::from_bytes(&junk);
        let _ = TfMessage::from_bytes(&junk);
        let _ = MarkerArray::from_bytes(&junk);
        let _ = Header::from_bytes(&junk);
    }
}
