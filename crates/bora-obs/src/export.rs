//! Exporters for drained span events.
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON array format, with
//!   one complete (`"ph":"X"`) event per span. Load the file in
//!   `about://tracing` or <https://ui.perfetto.dev> to see the paper's
//!   latency decomposition as a timeline. Virtual (cost-model) nanoseconds
//!   travel in each event's `args.virt_ns`.
//! * [`folded_stacks`] — `path;to;span <self_wall_ns>` lines, directly
//!   consumable by `flamegraph.pl` / `inferno-flamegraph`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::registry::json_string;
use crate::trace::SpanEvent;

/// Serialize events as a Chrome `trace_event` JSON object. `dropped` is
/// recorded in the top-level metadata so a truncated trace is honest
/// about it.
pub fn chrome_trace(events: &[SpanEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    let _ = write!(out, "\"otherData\":{{\"dropped_events\":{dropped}}},");
    out.push_str("\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"bora\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
            json_string(e.name),
            e.tid,
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        );
        match e.virt_ns {
            Some(v) => {
                let _ =
                    write!(out, ",\"args\":{{\"virt_ns\":{v},\"path\":{}}}", json_string(&e.path));
            }
            None => {
                let _ = write!(out, ",\"args\":{{\"path\":{}}}", json_string(&e.path));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Render folded stacks: one line per distinct span path, weighted by
/// **self** wall time (total minus the time spent in child spans), the
/// convention flamegraph tools expect. Lines are sorted for determinism.
pub fn folded_stacks(events: &[SpanEvent]) -> String {
    let mut total: HashMap<&str, u64> = HashMap::new();
    for e in events {
        *total.entry(e.path.as_str()).or_default() += e.dur_ns;
    }
    // Self time = total − Σ direct children's totals.
    let mut self_ns: HashMap<&str, u64> = total.clone();
    for (path, ns) in &total {
        if let Some((parent, _)) = path.rsplit_once(';') {
            if let Some(p) = self_ns.get_mut(parent) {
                *p = p.saturating_sub(*ns);
            }
        }
    }
    let mut lines: Vec<String> =
        self_ns.into_iter().map(|(path, ns)| format!("{path} {ns}")).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, path: &str, start: u64, dur: u64, virt: Option<u64>) -> SpanEvent {
        SpanEvent {
            name,
            path: path.to_owned(),
            tid: 0,
            start_ns: start,
            dur_ns: dur,
            virt_ns: virt,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            ev("open", "open", 0, 5_000, Some(77)),
            ev("read", "open;read", 1_000, 2_000, None),
        ];
        let json = chrome_trace(&events, 3);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dropped_events\":3"));
        assert!(json.contains("\"name\":\"open\""));
        assert!(json.contains("\"virt_ns\":77"));
        assert!(json.contains("\"ts\":1.000"));
        // Exactly one traceEvents array with both events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn folded_self_time_subtracts_children() {
        let events = vec![
            ev("a", "a", 0, 100, None),
            ev("b", "a;b", 10, 30, None),
            ev("b", "a;b", 50, 20, None),
            ev("c", "a;b;c", 12, 5, None),
        ];
        let folded = folded_stacks(&events);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["a 50", "a;b 45", "a;b;c 5"]);
    }

    #[test]
    fn empty_events_export_cleanly() {
        assert_eq!(folded_stacks(&[]), "");
        let json = chrome_trace(&[], 0);
        assert!(json.contains("\"traceEvents\":[]"));
    }
}
