//! Exporters for drained span events.
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON array format, with
//!   one complete (`"ph":"X"`) event per span. Load the file in
//!   `about://tracing` or <https://ui.perfetto.dev> to see the paper's
//!   latency decomposition as a timeline. Virtual (cost-model) nanoseconds
//!   travel in each event's `args.virt_ns`; causal links travel as
//!   `args.trace_id` / `args.span_id` / `args.parent_span`. Each node lane
//!   ([`crate::set_thread_node`]) becomes its own process (`pid`), named by
//!   a metadata event, so a merged multi-node trace reads as parallel
//!   per-node timelines.
//! * [`merge_chrome_traces`] — splice several nodes' [`chrome_trace`]
//!   outputs into one causally-linked timeline (drop counts are summed).
//! * [`folded_stacks`] — `path;to;span <self_wall_ns>` lines, directly
//!   consumable by `flamegraph.pl` / `inferno-flamegraph`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::registry::json_string;
use crate::trace::SpanEvent;

/// Serialize events as a Chrome `trace_event` JSON object. `dropped` is
/// recorded in the top-level metadata so a truncated trace is honest
/// about it.
pub fn chrome_trace(events: &[SpanEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    let _ = write!(out, "\"otherData\":{{\"dropped_events\":{dropped}}},");
    out.push_str("\"traceEvents\":[");
    // One named process per node lane, so merged multi-node traces keep
    // their timelines apart. Lane 0 is the client (untagged threads).
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    for n in nodes {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if n == 0 { "client".to_owned() } else { format!("node-{}", n - 1) };
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"args\":{{\"name\":{}}}}}",
            json_string(&label),
        );
    }
    for e in events.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"bora\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
            json_string(e.name),
            e.node,
            e.tid,
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
        );
        out.push_str(",\"args\":{");
        if let Some(v) = e.virt_ns {
            let _ = write!(out, "\"virt_ns\":{v},");
        }
        if e.span_id != 0 {
            let _ = write!(
                out,
                "\"trace_id\":{},\"span_id\":{},\"parent_span\":{},",
                e.trace_id, e.span_id, e.parent_span
            );
        }
        if e.cancelled {
            out.push_str("\"cancelled\":true,");
        }
        let _ = write!(out, "\"path\":{}}}", json_string(&e.path));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Merge several [`chrome_trace`] outputs — typically one per node,
/// scraped over the wire — into a single trace object. Event arrays are
/// spliced and `dropped_events` counts are summed; causal links survive
/// because span ids are carried in each event's `args`. Inputs must be
/// `chrome_trace`-shaped; anything else is skipped.
pub fn merge_chrome_traces(parts: &[String]) -> String {
    let mut dropped_total: u64 = 0;
    let mut bodies: Vec<&str> = Vec::new();
    for part in parts {
        if let Some(i) = part.find("\"dropped_events\":") {
            let rest = &part[i + "\"dropped_events\":".len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            dropped_total = dropped_total.saturating_add(digits.parse().unwrap_or(0));
        }
        let Some(start) = part.find("\"traceEvents\":[") else { continue };
        let body_start = start + "\"traceEvents\":[".len();
        // chrome_trace always ends with `]}`; the event array is what is
        // between the opening bracket and that tail.
        let Some(body_end) = part.rfind("]}") else { continue };
        if body_end < body_start {
            continue;
        }
        let body = &part[body_start..body_end];
        if !body.is_empty() {
            bodies.push(body);
        }
    }
    let mut out = String::with_capacity(bodies.iter().map(|b| b.len() + 1).sum::<usize>() + 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    let _ = write!(out, "\"otherData\":{{\"dropped_events\":{dropped_total}}},");
    out.push_str("\"traceEvents\":[");
    out.push_str(&bodies.join(","));
    out.push_str("]}");
    out
}

/// Render folded stacks: one line per distinct span path, weighted by
/// **self** wall time (total minus the time spent in child spans), the
/// convention flamegraph tools expect. Lines are sorted for determinism.
pub fn folded_stacks(events: &[SpanEvent]) -> String {
    let mut total: HashMap<&str, u64> = HashMap::new();
    for e in events {
        *total.entry(e.path.as_str()).or_default() += e.dur_ns;
    }
    // Self time = total − Σ direct children's totals.
    let mut self_ns: HashMap<&str, u64> = total.clone();
    for (path, ns) in &total {
        if let Some((parent, _)) = path.rsplit_once(';') {
            if let Some(p) = self_ns.get_mut(parent) {
                *p = p.saturating_sub(*ns);
            }
        }
    }
    let mut lines: Vec<String> =
        self_ns.into_iter().map(|(path, ns)| format!("{path} {ns}")).collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, path: &str, start: u64, dur: u64, virt: Option<u64>) -> SpanEvent {
        SpanEvent {
            name,
            path: path.to_owned(),
            tid: 0,
            start_ns: start,
            dur_ns: dur,
            virt_ns: virt,
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
            node: 0,
            cancelled: false,
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            ev("open", "open", 0, 5_000, Some(77)),
            ev("read", "open;read", 1_000, 2_000, None),
        ];
        let json = chrome_trace(&events, 3);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dropped_events\":3"));
        assert!(json.contains("\"name\":\"open\""));
        assert!(json.contains("\"virt_ns\":77"));
        assert!(json.contains("\"ts\":1.000"));
        // Exactly one traceEvents array with both events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // Lane 0 is named "client" via a metadata event.
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"client\""));
        // Id-less events (span_id 0) carry no causal args.
        assert!(!json.contains("\"span_id\""));
    }

    #[test]
    fn chrome_trace_carries_ids_nodes_and_cancellation() {
        let mut a = ev("cluster.read", "cluster.read", 0, 9_000, None);
        a.trace_id = 41;
        a.span_id = 41;
        let mut b = ev("serve.read", "serve.read", 2_000, 3_000, None);
        b.trace_id = 41;
        b.span_id = 43;
        b.parent_span = 41;
        b.node = 2; // server node 1
        let mut c = ev("hedge_leg", "cluster.read;hedge_leg", 2_500, 4_000, None);
        c.trace_id = 41;
        c.span_id = 44;
        c.parent_span = 41;
        c.cancelled = true;
        let json = chrome_trace(&[a, b, c], 0);
        assert!(json.contains("\"trace_id\":41,\"span_id\":43,\"parent_span\":41"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"name\":\"node-1\""));
        assert!(json.contains("\"cancelled\":true"));
        // One metadata event per distinct lane: client (0) and node-1 (2).
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
    }

    #[test]
    fn merge_splices_events_and_sums_drops() {
        let mut a = ev("client_op", "client_op", 0, 100, None);
        a.span_id = 10;
        a.trace_id = 10;
        let mut b = ev("server_op", "server_op", 20, 50, None);
        b.span_id = 11;
        b.trace_id = 10;
        b.parent_span = 10;
        b.node = 1;
        let part_client = chrome_trace(&[a], 2);
        let part_node = chrome_trace(&[b], 5);
        let merged = merge_chrome_traces(&[part_client, part_node]);
        assert!(merged.contains("\"dropped_events\":7"));
        assert!(merged.contains("\"client_op\""));
        assert!(merged.contains("\"server_op\""));
        assert_eq!(merged.matches("\"ph\":\"X\"").count(), 2);
        // Parent link survives the merge.
        assert!(merged.contains("\"parent_span\":10"));
        // Still one valid object: empty parts and the two bodies spliced.
        assert!(merged.starts_with('{') && merged.ends_with('}'));
        let remerged = merge_chrome_traces(&[merged.clone(), chrome_trace(&[], 0)]);
        assert_eq!(remerged.matches("\"ph\":\"X\"").count(), 2);
        assert!(remerged.contains("\"dropped_events\":7"));
    }

    #[test]
    fn folded_self_time_subtracts_children() {
        let events = vec![
            ev("a", "a", 0, 100, None),
            ev("b", "a;b", 10, 30, None),
            ev("b", "a;b", 50, 20, None),
            ev("c", "a;b;c", 12, 5, None),
        ];
        let folded = folded_stacks(&events);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["a 50", "a;b 45", "a;b;c 5"]);
    }

    #[test]
    fn empty_events_export_cleanly() {
        assert_eq!(folded_stacks(&[]), "");
        let json = chrome_trace(&[], 0);
        assert!(json.contains("\"traceEvents\":[]"));
        let merged = merge_chrome_traces(&[json]);
        assert!(merged.contains("\"traceEvents\":[]"));
    }
}
