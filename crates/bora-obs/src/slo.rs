//! [`SloTracker`]: per-op latency-objective evaluation over sliding
//! windows.
//!
//! Each registered op gets a [`WindowedHistogram`] and a [`SloTarget`]
//! (p50/p99 ceilings). [`SloTracker::evaluate_at`] snapshots every op's
//! current window, compares the observed percentiles against the target
//! and bumps a per-op breach counter on violation — the signal the
//! ROADMAP's SLO-driven elasticity consumes ("node X's read p99 has been
//! over target for N evaluations → add a replica"). Evaluation is
//! explicit rather than continuous: the caller (a telemetry poller, a
//! test) decides the cadence, and a breach shows up on the first
//! evaluation after the offending window — within one window rotation of
//! the regression itself.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::window::WindowedHistogram;

/// Latency objective for one op: percentile ceilings in nanoseconds.
/// A ceiling of `u64::MAX` means "don't care".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTarget {
    pub p50_ns: u64,
    pub p99_ns: u64,
}

impl SloTarget {
    /// Only bound the tail.
    pub fn p99(p99_ns: u64) -> Self {
        SloTarget { p50_ns: u64::MAX, p99_ns }
    }
}

/// One evaluation's verdict for one op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloStatus {
    pub name: String,
    pub target: SloTarget,
    /// Observed percentiles over the current window (bucket ceilings).
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Samples in the window this verdict is based on.
    pub samples: u64,
    /// Did this evaluation observe a violation? (Empty windows never
    /// breach.)
    pub breached: bool,
    /// Total evaluations that found this op in breach, ever.
    pub breaches: u64,
}

struct SloEntry {
    name: String,
    target: Mutex<SloTarget>,
    window: WindowedHistogram,
    breaches: AtomicU64,
}

/// Tracks latency SLOs for a set of named ops. Recording is cheap (one
/// uncontended lock to resolve the op, then lock-free histogram writes);
/// entries live for the tracker's lifetime.
pub struct SloTracker {
    ops: Mutex<Vec<Arc<SloEntry>>>,
    nslots: usize,
    slot_ns: u64,
}

impl SloTracker {
    /// A tracker whose per-op windows are `nslots × slot_ns`.
    pub fn new(nslots: usize, slot_ns: u64) -> Self {
        SloTracker { ops: Mutex::new(Vec::new()), nslots, slot_ns }
    }

    /// The conventional 60 × 1 s window per op.
    pub fn per_second_minute() -> Self {
        Self::new(60, 1_000_000_000)
    }

    /// Register (or re-target) an op. Re-registering keeps the op's
    /// window and breach history; only the target changes.
    pub fn register(&self, name: &str, target: SloTarget) {
        let mut ops = self.ops.lock();
        if let Some(e) = ops.iter().find(|e| e.name == name) {
            *e.target.lock() = target;
            return;
        }
        ops.push(Arc::new(SloEntry {
            name: name.to_owned(),
            target: Mutex::new(target),
            window: WindowedHistogram::new(self.nslots, self.slot_ns),
            breaches: AtomicU64::new(0),
        }));
    }

    fn entry(&self, name: &str) -> Option<Arc<SloEntry>> {
        self.ops.lock().iter().find(|e| e.name == name).map(Arc::clone)
    }

    /// Record a sample for `name` at explicit time `t_ns`. Unregistered
    /// ops are ignored (callers record unconditionally; only ops someone
    /// set a target for are tracked).
    pub fn record_at(&self, name: &str, t_ns: u64, v: u64) {
        if let Some(e) = self.entry(name) {
            e.window.record_at(t_ns, v);
        }
    }

    /// [`Self::record_at`] on the trace clock.
    pub fn record(&self, name: &str, v: u64) {
        self.record_at(name, crate::trace::now_ns(), v);
    }

    /// Evaluate every registered op's window ending at `t_ns`, bumping
    /// breach counters. Results are in registration order.
    pub fn evaluate_at(&self, t_ns: u64) -> Vec<SloStatus> {
        let ops: Vec<Arc<SloEntry>> = self.ops.lock().iter().map(Arc::clone).collect();
        ops.iter()
            .map(|e| {
                let target = *e.target.lock();
                let s = e.window.snapshot_at(t_ns);
                let (p50, p99) = (s.percentile(0.50), s.percentile(0.99));
                let breached = s.count > 0 && (p50 > target.p50_ns || p99 > target.p99_ns);
                let breaches = if breached {
                    e.breaches.fetch_add(1, Relaxed) + 1
                } else {
                    e.breaches.load(Relaxed)
                };
                SloStatus {
                    name: e.name.clone(),
                    target,
                    p50_ns: p50,
                    p99_ns: p99,
                    samples: s.count,
                    breached,
                    breaches,
                }
            })
            .collect()
    }

    /// [`Self::evaluate_at`] on the trace clock.
    pub fn evaluate(&self) -> Vec<SloStatus> {
        self.evaluate_at(crate::trace::now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;

    #[test]
    fn healthy_op_never_breaches() {
        let t = SloTracker::new(60, S);
        t.register("read", SloTarget { p50_ns: 10 * MS, p99_ns: 100 * MS });
        for i in 0..100 {
            t.record_at("read", i % 60 * S, MS); // 1 ms, well under target
        }
        let st = &t.evaluate_at(59 * S)[0];
        assert!(!st.breached);
        assert_eq!(st.breaches, 0);
        assert_eq!(st.samples, 100);
    }

    #[test]
    fn synthetic_p99_breach_flags_within_one_rotation() {
        let t = SloTracker::new(60, S);
        t.register("read", SloTarget::p99(10 * MS));
        // 99 fast samples, then a tail blowup in the most recent second.
        for i in 0..99 {
            t.record_at("read", (i % 59) * S, MS);
        }
        t.record_at("read", 59 * S, 500 * MS);
        t.record_at("read", 59 * S, 500 * MS);
        let st = &t.evaluate_at(59 * S)[0];
        assert!(st.p99_ns > 10 * MS);
        assert!(st.breached, "breach must be visible on the first evaluation after it lands");
        assert_eq!(st.breaches, 1);
        // A second evaluation of the same bad window counts again …
        assert_eq!(t.evaluate_at(59 * S)[0].breaches, 2);
        // … and once the slow second ages out, the op is healthy again
        // (one full rotation later the window holds nothing slow).
        let later = &t.evaluate_at(120 * S)[0];
        assert!(!later.breached);
        assert_eq!(later.breaches, 2, "history is kept");
    }

    #[test]
    fn empty_window_is_not_a_breach() {
        let t = SloTracker::new(4, S);
        t.register("seal", SloTarget { p50_ns: 0, p99_ns: 0 }); // impossible target
        assert!(!t.evaluate_at(0)[0].breached);
    }

    #[test]
    fn unregistered_records_are_ignored_and_retarget_keeps_history() {
        let t = SloTracker::new(4, S);
        t.record_at("ghost", 0, 1); // no-op
        assert!(t.evaluate_at(0).is_empty());
        t.register("op", SloTarget::p99(1));
        t.record_at("op", 0, 100);
        assert_eq!(t.evaluate_at(0)[0].breaches, 1);
        t.register("op", SloTarget::p99(u64::MAX)); // relax the target
        assert_eq!(t.evaluate_at(0)[0].breaches, 1, "breach history survives re-target");
        assert!(!t.evaluate_at(0)[0].breached);
    }
}
