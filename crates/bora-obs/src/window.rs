//! [`WindowedHistogram`]: a sliding-window exponential histogram built as
//! a ring of time-sliced [`ExpHistogram`]-shaped slots.
//!
//! The cumulative histograms in [`crate::registry`] answer "what happened
//! since process start"; SLO questions need "what is the p99 *right
//! now*". A `WindowedHistogram` keeps `nslots` slots of `slot_ns` each
//! (e.g. 60 × 1 s); a sample lands in the slot owned by its timestamp,
//! and a snapshot merges every slot still inside the window. Memory is
//! fixed at construction: `nslots × (4 + BUCKETS)` u64 atomics (epoch,
//! count, sum, min + 64 buckets) — for the default 60 × 1 s window that
//! is ~32 KiB per histogram, independent of traffic.
//!
//! ## Concurrency
//!
//! Recording is lock-free in the steady state: a `fetch_add` into the
//! live slot. When the window advances onto a stale slot, the first
//! recorder to arrive claims it with a compare-exchange (a transient
//! `LOCKED` epoch), zeroes it and publishes the new epoch; concurrent
//! recorders spin for the handful of stores that takes. Samples older
//! than the window (a thread descheduled mid-record) are dropped rather
//! than pollute a newer slot.
//!
//! All time is explicit (`record_at` / `snapshot_at`, nanoseconds on the
//! caller's clock — use [`crate::now_ns`]), so tests are deterministic;
//! [`WindowedHistogram::record`] / [`WindowedHistogram::snapshot`] are
//! thin wrappers over the trace clock.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::hist::{bucket_of, HistSummary, BUCKETS};
use crate::trace::now_ns;

/// Transient epoch marker while a slot is being recycled.
const LOCKED: u64 = u64::MAX;

/// One time slice of the window. Epoch is stored as `slot_index + 1`
/// (0 = never used) so a fresh ring needs no initialization pass.
struct Slot {
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Slot {
    fn new() -> Self {
        Slot {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    fn merge_into(&self, acc: &mut HistSummary) {
        acc.count = acc.count.saturating_add(self.count.load(Relaxed));
        acc.sum = acc.sum.saturating_add(self.sum.load(Relaxed));
        acc.min = acc.min.min(self.min.load(Relaxed));
        for (i, b) in self.buckets.iter().enumerate() {
            acc.buckets[i] = acc.buckets[i].saturating_add(b.load(Relaxed));
        }
    }
}

/// A sliding-window histogram: the last `nslots × slot_ns` nanoseconds of
/// samples, at slot granularity. See the module docs for semantics.
pub struct WindowedHistogram {
    slot_ns: u64,
    slots: Vec<Slot>,
}

impl WindowedHistogram {
    /// A window of `nslots` slices of `slot_ns` nanoseconds each. Both
    /// must be non-zero.
    pub fn new(nslots: usize, slot_ns: u64) -> Self {
        assert!(nslots > 0 && slot_ns > 0, "window needs at least one non-empty slot");
        WindowedHistogram { slot_ns, slots: (0..nslots).map(|_| Slot::new()).collect() }
    }

    /// The conventional 60 × 1 s window.
    pub fn per_second_minute() -> Self {
        Self::new(60, 1_000_000_000)
    }

    /// Total window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slot_ns.saturating_mul(self.slots.len() as u64)
    }

    /// Record `v` at explicit time `t_ns`. Samples older than the window
    /// relative to the newest epoch already seen are dropped.
    pub fn record_at(&self, t_ns: u64, v: u64) {
        let slot_idx = t_ns / self.slot_ns;
        let epoch = slot_idx + 1; // stored form; 0 = never used
        let slot = &self.slots[(slot_idx % self.slots.len() as u64) as usize];
        loop {
            let cur = slot.epoch.load(Relaxed);
            if cur == epoch {
                slot.record(v);
                return;
            }
            if cur == LOCKED {
                std::hint::spin_loop();
                continue;
            }
            if cur > epoch {
                // The ring lapped this sample's slot: the sample is older
                // than the window. Drop it.
                return;
            }
            // Stale slot: claim, recycle, publish, record.
            if slot.epoch.compare_exchange(cur, LOCKED, Relaxed, Relaxed).is_ok() {
                slot.reset();
                slot.epoch.store(epoch, Relaxed);
                slot.record(v);
                return;
            }
        }
    }

    /// Merge every slot still inside the window ending at `t_ns` into one
    /// summary. A slot being concurrently recycled is skipped (its old
    /// samples are leaving the window anyway).
    pub fn snapshot_at(&self, t_ns: u64) -> HistSummary {
        let newest = t_ns / self.slot_ns + 1;
        let oldest = newest.saturating_sub(self.slots.len() as u64 - 1);
        let mut acc = HistSummary::default();
        for slot in &self.slots {
            let e = slot.epoch.load(Relaxed);
            if e != 0 && e != LOCKED && e >= oldest && e <= newest {
                slot.merge_into(&mut acc);
            }
        }
        acc
    }

    /// [`Self::record_at`] on the trace clock.
    pub fn record(&self, v: u64) {
        self.record_at(now_ns(), v);
    }

    /// [`Self::snapshot_at`] on the trace clock.
    pub fn snapshot(&self) -> HistSummary {
        self.snapshot_at(now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000; // one second in ns

    #[test]
    fn samples_inside_window_are_visible() {
        let w = WindowedHistogram::new(60, S);
        w.record_at(0, 100);
        w.record_at(5 * S, 200);
        w.record_at(59 * S, 300);
        let s = w.snapshot_at(59 * S);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 600);
        assert_eq!(s.min, 100);
    }

    #[test]
    fn old_slots_age_out_as_the_window_slides() {
        let w = WindowedHistogram::new(60, S);
        w.record_at(0, 7); // slot 0
        assert_eq!(w.snapshot_at(30 * S).count, 1);
        // At t = 59 s slot 0 is the oldest live slot; at 60 s it is out.
        assert_eq!(w.snapshot_at(59 * S).count, 1);
        assert_eq!(w.snapshot_at(60 * S).count, 0);
        // The ring position is recycled by the next write that lands there.
        w.record_at(60 * S, 9);
        let s = w.snapshot_at(60 * S);
        assert_eq!((s.count, s.sum), (1, 9));
    }

    #[test]
    fn lapped_samples_are_dropped_not_misfiled() {
        let w = WindowedHistogram::new(4, S);
        // Slot index 8 and slot index 0 share ring position 0 (8 % 4).
        w.record_at(8 * S, 5); // establishes the late epoch at position 0
        w.record_at(0, 999); // lapped: same ring position, older epoch
        let s = w.snapshot_at(8 * S);
        assert_eq!(s.count, 1, "the lapped sample must be dropped, not misfiled");
        assert_eq!(s.sum, 5);
    }

    #[test]
    fn percentiles_track_the_window_not_history() {
        let w = WindowedHistogram::new(10, S);
        // A slow past: p99 ≈ 1 ms, all in the first 5 slots.
        for i in 0..5u64 {
            for _ in 0..100 {
                w.record_at(i * S, 1_000_000);
            }
        }
        // A fast present, slots 10..15 — past has fully aged out at t=14s.
        for i in 10..15u64 {
            for _ in 0..100 {
                w.record_at(i * S, 1_000);
            }
        }
        let s = w.snapshot_at(14 * S);
        assert_eq!(s.count, 500);
        assert!(s.percentile(0.99) < 2_048, "old slow samples leaked into the window");
    }

    #[test]
    fn window_memory_is_fixed() {
        // The documented bound: nslots × (4 + BUCKETS) u64 atomics.
        let per_slot = std::mem::size_of::<Slot>();
        assert_eq!(per_slot, (4 + BUCKETS) * 8);
        let w = WindowedHistogram::per_second_minute();
        assert_eq!(w.window_ns(), 60 * S);
        assert_eq!(w.slots.len() * per_slot, 60 * (4 + BUCKETS) * 8);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let w = std::sync::Arc::new(WindowedHistogram::new(8, 1_000));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let w = std::sync::Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        // All within one window: times in [0, 8000).
                        w.record_at((t * 997 + i) % 8_000, i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let s = w.snapshot_at(7_999);
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}
