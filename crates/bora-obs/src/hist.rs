//! [`ExpHistogram`]: a fixed exponential histogram — one bucket per power
//! of two — generalized out of `bora-serve`'s per-op recorders so every
//! crate shares one percentile implementation.
//!
//! All state is atomic (relaxed), so recording from many threads needs no
//! lock and no allocation: a `fetch_add` on the bucket, sum and count plus
//! a `fetch_min` for the minimum. Percentile error is bounded by the 2x
//! bucket width, which is plenty for "did the tail blow up" questions; the
//! reported value is the bucket *ceiling*, so tails are never
//! under-reported.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of power-of-two buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index of a sample: `ilog2(v)`, with 0 mapping to bucket 0.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize
    }
}

/// Upper bound of a bucket — the value reported for percentiles landing in
/// it (conservative: never under-reports the tail).
#[inline]
pub fn bucket_ceiling(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A concurrent exponential histogram with exact count/sum/min.
#[derive(Debug)]
pub struct ExpHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for ExpHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ExpHistogram {
    pub fn new() -> Self {
        ExpHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Point-in-time copy of the histogram's state. Reads are relaxed, so
    /// a snapshot taken during concurrent recording may be off by the
    /// in-flight samples — fine for reporting, not a barrier.
    pub fn snapshot(&self) -> HistSummary {
        HistSummary {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
        }
    }

    /// Shorthand for `snapshot().percentile(p)`.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    pub fn mean(&self) -> u64 {
        self.snapshot().mean()
    }
}

/// Immutable copy of an [`ExpHistogram`], carrying the full bucket array
/// so percentiles can be computed after the fact (e.g. from a snapshot
/// embedded in bench results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    /// `u64::MAX` when no samples were recorded.
    pub min: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary { count: 0, sum: 0, min: u64::MAX, buckets: [0; BUCKETS] }
    }
}

impl HistSummary {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Minimum sample, or 0 when empty (reporting-friendly).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `p`-quantile (`0.0 < p <= 1.0`) as the ceiling of the bucket
    /// holding the ceil(count·p)-th smallest sample.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_ceiling(i);
            }
        }
        bucket_ceiling(BUCKETS - 1)
    }

    /// Combine two summaries bucket-wise, as if every sample of both had
    /// been recorded into one histogram: counts, sums and buckets add
    /// (saturating), minima take the min. This is exact — merging N
    /// nodes' summaries equals the summary of one histogram fed all N
    /// nodes' samples — which is what makes cluster-wide percentiles
    /// honest rather than an average-of-percentiles.
    pub fn merge(&self, other: &HistSummary) -> HistSummary {
        HistSummary {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
        }
    }

    /// This summary minus an `earlier` one of the same histogram
    /// (per-interval deltas; `min` is kept from `self` since minima are
    /// not subtractable).
    pub fn delta_since(&self, earlier: &HistSummary) -> HistSummary {
        HistSummary {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_percentiles() {
        let h = ExpHistogram::new();
        h.record(1000);
        // count=1: every percentile is the one bucket's ceiling.
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1000);
        assert_eq!(s.mean(), 1000);
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(p), 1023, "p={p}");
        }
    }

    #[test]
    fn all_zero_samples() {
        let h = ExpHistogram::new();
        for _ in 0..100 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0);
        // Bucket 0's ceiling is 1: the conservative upper bound for {0, 1}.
        assert_eq!(s.percentile(0.99), 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = ExpHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.min_or_zero(), 0);
    }

    #[test]
    fn p99_at_power_of_two_edges() {
        // Exact 2^i boundary samples: 2^i lands in bucket i (ceiling
        // 2^(i+1)-1), while 2^i - 1 lands in bucket i-1 (ceiling 2^i - 1).
        for i in [1u32, 4, 9, 20, 40, 62] {
            let h = ExpHistogram::new();
            h.record(1u64 << i);
            assert_eq!(h.percentile(0.99), (2u64 << i) - 1, "2^{i}");
            let h = ExpHistogram::new();
            h.record((1u64 << i) - 1);
            assert_eq!(h.percentile(0.99), (1u64 << i) - 1, "2^{i}-1");
        }
    }

    #[test]
    fn p99_rank_selection() {
        let h = ExpHistogram::new();
        for _ in 0..99 {
            h.record(1000); // bucket 9 → ceiling 1023
        }
        h.record(1 << 20); // single outlier: p100, not p99
        assert_eq!(h.percentile(0.99), 1023);
        assert_eq!(h.percentile(1.0), (2u64 << 20) - 1);
    }

    #[test]
    fn top_bucket_saturates_to_max() {
        let h = ExpHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        assert_eq!(s.percentile(0.5), u64::MAX);
        assert_eq!(s.percentile(1.0), u64::MAX);
        // Sum wraps only via saturation in delta, not record; here the sum
        // overflows u64 deliberately — mean is still defined (mod 2^64).
        assert_eq!(s.count, 2);
    }

    #[test]
    fn merge_is_bucket_exact() {
        // Merging per-node summaries must equal a single histogram fed
        // every node's samples — the property cluster aggregation rests on.
        let a = ExpHistogram::new();
        let b = ExpHistogram::new();
        let combined = ExpHistogram::new();
        for v in [3u64, 900, 1_000_000, 17] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 5_000, u64::MAX, 900] {
            b.record(v);
            combined.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
        // Identity: merging with an empty summary changes nothing.
        assert_eq!(merged.merge(&HistSummary::default()), merged);
        // Commutative.
        assert_eq!(b.snapshot().merge(&a.snapshot()), merged);
    }

    #[test]
    fn delta_since_subtracts() {
        let h = ExpHistogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(1000);
        h.record(2000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 3000);
        assert_eq!(d.percentile(1.0), 2047);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(ExpHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
        assert_eq!(s.min, 0);
    }
}
