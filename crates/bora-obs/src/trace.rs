//! Structured spans recorded into per-thread ring buffers with a global
//! drain.
//!
//! ## Cost model
//!
//! The *disabled* path — the default — is one relaxed atomic load per span
//! site ([`enabled`]); no clock read, no thread-local touch, no
//! allocation. When enabled, a span start pushes its name onto a
//! thread-local stack and reads the monotonic clock; the finished event is
//! appended to the thread's own ring buffer under an uncontended mutex, so
//! threads never serialize against each other on the hot path — only a
//! [`drain`] briefly locks each buffer.
//!
//! ## Drop policy
//!
//! Each thread's ring holds [`RING_CAPACITY`] finished spans; when it is
//! full the *oldest* event is overwritten and a global drop counter
//! ([`dropped`]) is incremented. Traces therefore always show the most
//! recent window of activity, and the exporter records how much history
//! was lost.
//!
//! ## Virtual time
//!
//! Spans measure wall time. Code that runs against the `simfs` cost model
//! additionally attaches the **virtual** nanoseconds the model charged for
//! the spanned region via [`Span::end_virt`] — the number the paper's
//! figures are made of. Sibling spans that partition a region's work
//! partition its virtual charge, so summing a span's direct children
//! reproduces the parent's cost.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Finished spans kept per thread before the oldest are overwritten.
pub const RING_CAPACITY: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Is tracing on? One relaxed load — this is the entire disabled-path
/// cost of a span site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn tracing on or off. Spans already in flight when the flag flips
/// keep the activation state they started with.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Initialize from the environment: `BORA_TRACE` set to anything but
/// `""`/`"0"` enables tracing. Returns the resulting state.
pub fn init_from_env() -> bool {
    let on = std::env::var("BORA_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    set_enabled(on);
    on
}

/// Trace output path from `BORA_TRACE_OUT`, if set.
pub fn out_path_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("BORA_TRACE_OUT").map(std::path::PathBuf::from)
}

/// Events overwritten because a thread's ring was full, process-wide.
pub fn dropped() -> u64 {
    DROPPED.load(Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch (first span or drain).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// `;`-joined ancestry ending in `name` (e.g.
    /// `bora.open;bora.open.tag_rebuild`), for folded-stack export.
    pub path: String,
    /// Small dense thread id (registration order, not the OS tid).
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Virtual nanoseconds charged by the storage cost model, when the
    /// instrumentation site had a cost-model context to measure.
    pub virt_ns: Option<u64>,
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

fn sinks() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: (Arc<ThreadBuf>, std::cell::RefCell<Vec<&'static str>>) = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Relaxed),
            ring: Mutex::new(VecDeque::with_capacity(64)),
        });
        sinks().lock().push(Arc::clone(&buf));
        (buf, std::cell::RefCell::new(Vec::new()))
    };
}

fn push_event(ev: SpanEvent) {
    LOCAL.with(|(buf, _)| {
        let mut ring = buf.ring.lock();
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            DROPPED.fetch_add(1, Relaxed);
        }
        ring.push_back(ev);
    });
}

/// Collect every buffered event from every thread (past and present),
/// clearing the buffers. Events come back sorted by start time.
pub fn drain() -> Vec<SpanEvent> {
    let sinks = sinks().lock();
    let mut out = Vec::new();
    for buf in sinks.iter() {
        out.extend(buf.ring.lock().drain(..));
    }
    drop(sinks);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// An in-flight span. Create with [`span`]; finish by dropping, or with
/// [`Span::end_virt`] to attach the cost model's virtual charge.
///
/// Spans are strictly thread-local and must be dropped in LIFO order,
/// which Rust's scope-based drop order gives for free.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

/// Start a span. No-op (and no clock read) while tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start_ns: 0, active: false };
    }
    LOCAL.with(|(_, stack)| stack.borrow_mut().push(name));
    Span { name, start_ns: now_ns(), active: true }
}

impl Span {
    /// Finish, attaching the virtual nanoseconds the cost model charged
    /// while the span was open (caller computes the delta from its
    /// `IoCtx`).
    pub fn end_virt(mut self, virt_ns: u64) {
        self.finish(Some(virt_ns));
    }

    /// Finish without a virtual charge (same as dropping).
    pub fn end(mut self) {
        self.finish(None);
    }

    fn finish(&mut self, virt_ns: Option<u64>) {
        if !self.active {
            return;
        }
        self.active = false;
        let end = now_ns();
        let (path, tid) = LOCAL.with(|(buf, stack)| {
            let mut stack = stack.borrow_mut();
            let path = stack.join(";");
            debug_assert_eq!(stack.last().copied(), Some(self.name), "span drop out of order");
            stack.pop();
            (path, buf.tid)
        });
        push_event(SpanEvent {
            name: self.name,
            path,
            tid,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            virt_ns,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(None);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Trace state is process-global; tests that enable it serialize here
    // so parallel test threads don't drain each other's events.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        set_enabled(false);
        drain();
        {
            let _s = span("never");
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_builds_paths() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        {
            let outer = span("outer");
            {
                let inner = span("inner");
                inner.end_virt(42);
            }
            outer.end_virt(100);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.path, "outer;inner");
        assert_eq!(inner.virt_ns, Some(42));
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.path, "outer");
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn early_return_drop_still_records() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        fn faillible() -> Result<(), ()> {
            let _s = span("try_block");
            Err(())?; // guard dropped on the error path
            Ok(())
        }
        let _ = faillible();
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "try_block");
        assert_eq!(events[0].virt_ns, None);
    }

    #[test]
    fn eight_threads_hammering_lose_only_by_policy() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        let dropped_before = dropped();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 40_000; // > RING_CAPACITY: forces overwrites
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let s = span("hammer");
                        s.end_virt(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let events: Vec<SpanEvent> = drain().into_iter().filter(|e| e.name == "hammer").collect();
        let newly_dropped = dropped() - dropped_before;

        // No event is torn: every survivor is internally consistent.
        for e in &events {
            assert_eq!(e.name, "hammer");
            assert_eq!(e.path, "hammer");
            let v = e.virt_ns.expect("hammer spans always carry virt");
            assert!(v < THREADS * PER_THREAD);
        }
        // Each ring keeps at most RING_CAPACITY events; every other write
        // is accounted for by the drop counter — nothing vanishes.
        assert_eq!(events.len() as u64 + newly_dropped, THREADS * PER_THREAD);
        // Per-thread survivors are the *most recent* spans of that thread
        // (drop policy overwrites the oldest first) and respect capacity.
        for t in 0..THREADS {
            let lo = t * PER_THREAD;
            let hi = lo + PER_THREAD;
            let of_thread: Vec<u64> =
                events.iter().filter_map(|e| e.virt_ns).filter(|v| (lo..hi).contains(v)).collect();
            assert!(of_thread.len() <= RING_CAPACITY);
            let min_kept = of_thread.iter().min().copied().unwrap_or(hi);
            assert!(
                min_kept >= hi - of_thread.len() as u64,
                "thread {t} kept older events than its ring could hold"
            );
        }
    }
}
