//! Structured spans recorded into per-thread ring buffers with a global
//! drain.
//!
//! ## Cost model
//!
//! The *disabled* path — the default — is one relaxed atomic load per span
//! site ([`enabled`]); no clock read, no thread-local touch, no id
//! allocation. When enabled, a span start allocates a process-unique span
//! id, pushes a frame onto a thread-local stack and reads the monotonic
//! clock; the finished event is appended to the thread's own ring buffer
//! under an uncontended mutex, so threads never serialize against each
//! other on the hot path — only a [`drain`] briefly locks each buffer.
//!
//! ## Causality
//!
//! Every span carries a `trace_id` (the id of the root span of its tree),
//! its own `span_id`, and a `parent_span` (0 = root). Within a thread,
//! parentage follows the span stack. *Across* threads and processes it
//! follows an explicit [`TraceContext`]: a client captures
//! [`current_context`] (its trace id + open span id), ships it — e.g. in
//! the serve wire protocol's trace header — and the server worker adopts
//! it with [`adopt_context`], so server-side spans parent under the
//! client's span even though they live in a different ring on a different
//! node. [`set_thread_node`] tags a thread's events with a node lane so a
//! merged multi-node trace keeps per-node timelines apart.
//!
//! ## Drop policy
//!
//! Each thread's ring holds [`RING_CAPACITY`] finished spans; when it is
//! full the *oldest* event is overwritten and a global drop counter
//! ([`dropped`]) is incremented. Traces therefore always show the most
//! recent window of activity, and the exporter records how much history
//! was lost.
//!
//! ## Virtual time
//!
//! Spans measure wall time. Code that runs against the `simfs` cost model
//! additionally attaches the **virtual** nanoseconds the model charged for
//! the spanned region via [`Span::end_virt`] — the number the paper's
//! figures are made of. Sibling spans that partition a region's work
//! partition its virtual charge, so summing a span's direct children
//! reproduces the parent's cost.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Finished spans kept per thread before the oldest are overwritten.
pub const RING_CAPACITY: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
// Span ids start at 1 so 0 unambiguously means "no span" in parent links
// and wire headers.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Is tracing on? One relaxed load — this is the entire disabled-path
/// cost of a span site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn tracing on or off. Spans already in flight when the flag flips
/// keep the activation state they started with.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Initialize from the environment: `BORA_TRACE` set to anything but
/// `""`/`"0"` enables tracing. Returns the resulting state.
pub fn init_from_env() -> bool {
    let on = std::env::var("BORA_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    set_enabled(on);
    on
}

/// Trace output path from `BORA_TRACE_OUT`, if set.
pub fn out_path_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("BORA_TRACE_OUT").map(std::path::PathBuf::from)
}

/// Events overwritten because a thread's ring was full, process-wide.
pub fn dropped() -> u64 {
    DROPPED.load(Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch (first span or drain).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Portable trace context: everything a remote hop needs to parent its
/// spans under the caller's. This is what travels in the serve wire
/// protocol's optional trace header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Id of the root span of the trace tree.
    pub trace_id: u64,
    /// Span the next hop should parent under (0 = none).
    pub parent_span: u64,
    /// Sampling decision: when false, receivers record nothing for this
    /// request (and [`adopt_context`] treats the context as absent).
    pub sampled: bool,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// `;`-joined ancestry ending in `name` (e.g.
    /// `bora.open;bora.open.tag_rebuild`), for folded-stack export.
    pub path: String,
    /// Small dense thread id (registration order, not the OS tid).
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Virtual nanoseconds charged by the storage cost model, when the
    /// instrumentation site had a cost-model context to measure.
    pub virt_ns: Option<u64>,
    /// Id of the root span of this span's trace tree (local or remote).
    pub trace_id: u64,
    /// Process-unique id of this span (never 0).
    pub span_id: u64,
    /// Id of the parent span — an enclosing local span, or the remote
    /// caller's span adopted via [`adopt_context`]. 0 = root.
    pub parent_span: u64,
    /// Node lane ([`set_thread_node`]): 0 = client / untagged threads,
    /// `n + 1` = server node `n`.
    pub node: u32,
    /// True when the work was abandoned (e.g. a hedged read's loser leg).
    pub cancelled: bool,
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

/// Per-thread trace state: the open-span stack, the adopted remote
/// context (if any) and the node lane tag.
struct ThreadState {
    /// Open spans: (name, span_id), innermost last.
    stack: Vec<(&'static str, u64)>,
    /// Trace id the current stack belongs to (valid while non-empty).
    trace_id: u64,
    /// Remote caller's context adopted for the current unit of work.
    remote: Option<TraceContext>,
    /// Node lane for events recorded by this thread.
    node: u32,
}

fn sinks() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: (Arc<ThreadBuf>, RefCell<ThreadState>) = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Relaxed),
            ring: Mutex::new(VecDeque::with_capacity(64)),
        });
        sinks().lock().push(Arc::clone(&buf));
        (buf, RefCell::new(ThreadState { stack: Vec::new(), trace_id: 0, remote: None, node: 0 }))
    };
}

fn push_event(ev: SpanEvent) {
    LOCAL.with(|(buf, _)| {
        let mut ring = buf.ring.lock();
        if ring.len() >= RING_CAPACITY {
            ring.pop_front();
            DROPPED.fetch_add(1, Relaxed);
        }
        ring.push_back(ev);
    });
}

/// Collect every buffered event from every thread (past and present),
/// clearing the buffers. Events come back sorted by start time.
pub fn drain() -> Vec<SpanEvent> {
    let sinks = sinks().lock();
    let mut out = Vec::new();
    for buf in sinks.iter() {
        out.extend(buf.ring.lock().drain(..));
    }
    drop(sinks);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// The caller's current context, for propagation to a remote hop: the
/// innermost open span on this thread, or the context this thread itself
/// adopted (so a pass-through layer keeps the chain intact). `None` while
/// tracing is disabled or no span is open — callers then send nothing on
/// the wire, which keeps the untraced request encoding byte-identical to
/// an untrace-aware client's.
pub fn current_context() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    LOCAL.with(|(_, st)| {
        let st = st.borrow();
        match st.stack.last() {
            Some(&(_, span_id)) => {
                Some(TraceContext { trace_id: st.trace_id, parent_span: span_id, sampled: true })
            }
            None => st.remote,
        }
    })
}

/// Restores the thread's previously-adopted context when dropped; see
/// [`adopt_context`].
#[must_use = "dropping the guard ends the adoption"]
pub struct ContextGuard {
    prev: Option<Option<TraceContext>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            LOCAL.with(|(_, st)| st.borrow_mut().remote = prev);
        }
    }
}

/// Adopt a remote caller's context for the current unit of work: until
/// the returned guard drops, root spans opened on this thread parent
/// under `ctx.parent_span` and share its trace id. Unsampled or absent
/// contexts clear any previously-adopted one (a worker thread's state
/// never leaks across requests). No-op while tracing is disabled.
pub fn adopt_context(ctx: Option<TraceContext>) -> ContextGuard {
    if !enabled() {
        return ContextGuard { prev: None };
    }
    let ctx = ctx.filter(|c| c.sampled);
    let prev = LOCAL.with(|(_, st)| std::mem::replace(&mut st.borrow_mut().remote, ctx));
    ContextGuard { prev: Some(prev) }
}

/// Tag this thread's future events with a node lane. Convention: 0 (the
/// default) is the client / untagged threads; server workers pass
/// `server_id + 1`. The Chrome exporter renders each lane as a process.
pub fn set_thread_node(node: u32) {
    LOCAL.with(|(_, st)| st.borrow_mut().node = node);
}

/// Record an already-measured interval as a complete span, parented
/// exactly as a [`span`] opened now would be (enclosing local span, else
/// the adopted remote context). Used for intervals that end where they
/// are observed but started elsewhere — e.g. a request's queue wait,
/// measured by the worker but started at submit time. No-op while
/// tracing is disabled.
pub fn record_complete(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    let span_id = NEXT_SPAN.fetch_add(1, Relaxed);
    let ev = LOCAL.with(|(buf, st)| {
        let st = st.borrow();
        let (trace_id, parent_span) = match st.stack.last() {
            Some(&(_, pid)) => (st.trace_id, pid),
            None => match st.remote {
                Some(c) => (c.trace_id, c.parent_span),
                None => (span_id, 0),
            },
        };
        let mut path = String::new();
        for (n, _) in &st.stack {
            path.push_str(n);
            path.push(';');
        }
        path.push_str(name);
        SpanEvent {
            name,
            path,
            tid: buf.tid,
            start_ns,
            dur_ns,
            virt_ns: None,
            trace_id,
            span_id,
            parent_span,
            node: st.node,
            cancelled: false,
        }
    });
    push_event(ev);
}

/// An in-flight span. Create with [`span`]; finish by dropping, or with
/// [`Span::end_virt`] to attach the cost model's virtual charge, or with
/// [`Span::cancel`] to mark the work abandoned.
///
/// Spans are strictly thread-local and must be dropped in LIFO order,
/// which Rust's scope-based drop order gives for free.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    active: bool,
    span_id: u64,
    trace_id: u64,
    parent_span: u64,
    cancelled: bool,
}

/// Start a span. No-op (and no clock read, no id allocation) while
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            start_ns: 0,
            active: false,
            span_id: 0,
            trace_id: 0,
            parent_span: 0,
            cancelled: false,
        };
    }
    let span_id = NEXT_SPAN.fetch_add(1, Relaxed);
    let (trace_id, parent_span) = LOCAL.with(|(_, st)| {
        let mut st = st.borrow_mut();
        let (trace_id, parent) = match st.stack.last() {
            Some(&(_, pid)) => (st.trace_id, pid),
            None => match st.remote {
                Some(c) => (c.trace_id, c.parent_span),
                None => (span_id, 0),
            },
        };
        st.trace_id = trace_id;
        st.stack.push((name, span_id));
        (trace_id, parent)
    });
    Span {
        name,
        start_ns: now_ns(),
        active: true,
        span_id,
        trace_id,
        parent_span,
        cancelled: false,
    }
}

impl Span {
    /// This span's id, for hand-rolled context plumbing. 0 while tracing
    /// is disabled.
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Finish, attaching the virtual nanoseconds the cost model charged
    /// while the span was open (caller computes the delta from its
    /// `IoCtx`).
    pub fn end_virt(mut self, virt_ns: u64) {
        self.finish(Some(virt_ns));
    }

    /// Finish without a virtual charge (same as dropping).
    pub fn end(mut self) {
        self.finish(None);
    }

    /// Finish, marking the spanned work abandoned (e.g. the loser leg of
    /// a hedged read). The event records its full duration with
    /// `cancelled = true`.
    pub fn cancel(mut self) {
        self.cancelled = true;
        self.finish(None);
    }

    fn finish(&mut self, virt_ns: Option<u64>) {
        if !self.active {
            return;
        }
        self.active = false;
        let end = now_ns();
        let (path, tid, node) = LOCAL.with(|(buf, st)| {
            let mut st = st.borrow_mut();
            let path = st.stack.iter().map(|&(n, _)| n).collect::<Vec<_>>().join(";");
            debug_assert_eq!(
                st.stack.last().map(|&(n, _)| n),
                Some(self.name),
                "span drop out of order"
            );
            st.stack.pop();
            (path, buf.tid, st.node)
        });
        push_event(SpanEvent {
            name: self.name,
            path,
            tid,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            virt_ns,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
            node,
            cancelled: self.cancelled,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(None);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // Trace state is process-global; tests that enable it serialize here
    // so parallel test threads don't drain each other's events.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        set_enabled(false);
        drain();
        {
            let _s = span("never");
        }
        assert!(drain().is_empty());
        assert_eq!(current_context(), None);
    }

    #[test]
    fn nesting_builds_paths() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        {
            let outer = span("outer");
            {
                let inner = span("inner");
                inner.end_virt(42);
            }
            outer.end_virt(100);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.path, "outer;inner");
        assert_eq!(inner.virt_ns, Some(42));
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.path, "outer");
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        // Causality: both spans share a trace rooted at `outer`.
        assert_eq!(outer.parent_span, 0);
        assert_eq!(outer.trace_id, outer.span_id);
        assert_eq!(inner.parent_span, outer.span_id);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_ne!(inner.span_id, outer.span_id);
        assert!(!inner.cancelled && !outer.cancelled);
    }

    #[test]
    fn early_return_drop_still_records() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        fn faillible() -> Result<(), ()> {
            let _s = span("try_block");
            Err(())?; // guard dropped on the error path
            Ok(())
        }
        let _ = faillible();
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "try_block");
        assert_eq!(events[0].virt_ns, None);
    }

    #[test]
    fn adopted_context_parents_root_spans() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        let remote = TraceContext { trace_id: 7_000, parent_span: 7_001, sampled: true };
        {
            let guard = adopt_context(Some(remote));
            let s = span("server_side");
            // A nested remote hop sees this thread's innermost span.
            let ctx = current_context().unwrap();
            assert_eq!(ctx.trace_id, 7_000);
            assert_eq!(ctx.parent_span, s.id());
            s.end();
            drop(guard);
        }
        // After the guard drops, the remote context is gone.
        {
            let s = span("local_root");
            s.end();
        }
        set_enabled(false);
        let events = drain();
        let srv = events.iter().find(|e| e.name == "server_side").unwrap();
        assert_eq!(srv.trace_id, 7_000);
        assert_eq!(srv.parent_span, 7_001);
        let local = events.iter().find(|e| e.name == "local_root").unwrap();
        assert_eq!(local.parent_span, 0);
        assert_eq!(local.trace_id, local.span_id);
    }

    #[test]
    fn unsampled_context_is_not_adopted() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        {
            let _guard =
                adopt_context(Some(TraceContext { trace_id: 5, parent_span: 6, sampled: false }));
            let s = span("root");
            s.end();
        }
        set_enabled(false);
        let events = drain();
        let root = events.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(root.parent_span, 0, "unsampled context must not parent spans");
        assert_ne!(root.trace_id, 5);
    }

    #[test]
    fn record_complete_parents_like_span_would() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        let remote = TraceContext { trace_id: 9_000, parent_span: 9_001, sampled: true };
        {
            let _guard = adopt_context(Some(remote));
            record_complete("queue_wait", 10, 20);
            let s = span("service");
            record_complete("inner_interval", 30, 5);
            s.end();
        }
        set_enabled(false);
        let events = drain();
        let qw = events.iter().find(|e| e.name == "queue_wait").unwrap();
        assert_eq!(qw.trace_id, 9_000);
        assert_eq!(qw.parent_span, 9_001);
        assert_eq!(qw.path, "queue_wait");
        assert_eq!((qw.start_ns, qw.dur_ns), (10, 20));
        let service = events.iter().find(|e| e.name == "service").unwrap();
        let inner = events.iter().find(|e| e.name == "inner_interval").unwrap();
        assert_eq!(inner.parent_span, service.span_id);
        assert_eq!(inner.path, "service;inner_interval");
    }

    #[test]
    fn cancelled_span_is_flagged() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        {
            let s = span("loser_leg");
            s.cancel();
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert!(events[0].cancelled);
        assert_eq!(events[0].name, "loser_leg");
    }

    #[test]
    fn node_lane_tags_events() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        let h = std::thread::spawn(|| {
            set_thread_node(3);
            let s = span("on_node_2");
            s.end();
        });
        h.join().unwrap();
        {
            let s = span("on_client");
            s.end();
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.iter().find(|e| e.name == "on_node_2").unwrap().node, 3);
        assert_eq!(events.iter().find(|e| e.name == "on_client").unwrap().node, 0);
    }

    #[test]
    fn eight_threads_hammering_lose_only_by_policy() {
        let _g = test_lock();
        set_enabled(true);
        drain();
        let dropped_before = dropped();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 40_000; // > RING_CAPACITY: forces overwrites
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let s = span("hammer");
                        s.end_virt(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let events: Vec<SpanEvent> = drain().into_iter().filter(|e| e.name == "hammer").collect();
        let newly_dropped = dropped() - dropped_before;

        // No event is torn: every survivor is internally consistent.
        for e in &events {
            assert_eq!(e.name, "hammer");
            assert_eq!(e.path, "hammer");
            let v = e.virt_ns.expect("hammer spans always carry virt");
            assert!(v < THREADS * PER_THREAD);
        }
        // Each ring keeps at most RING_CAPACITY events; every other write
        // is accounted for by the drop counter — nothing vanishes.
        assert_eq!(events.len() as u64 + newly_dropped, THREADS * PER_THREAD);
        // Per-thread survivors are the *most recent* spans of that thread
        // (drop policy overwrites the oldest first) and respect capacity.
        for t in 0..THREADS {
            let lo = t * PER_THREAD;
            let hi = lo + PER_THREAD;
            let of_thread: Vec<u64> =
                events.iter().filter_map(|e| e.virt_ns).filter(|v| (lo..hi).contains(v)).collect();
            assert!(of_thread.len() <= RING_CAPACITY);
            let min_kept = of_thread.iter().min().copied().unwrap_or(hi);
            assert!(
                min_kept >= hi - of_thread.len() as u64,
                "thread {t} kept older events than its ring could hold"
            );
        }
    }
}
