//! **bora-obs** — the workspace's shared observability layer.
//!
//! The BORA paper's whole argument is a latency decomposition: where the
//! seven seconds of a 21 GB bag `open` go, and what the hash-lookup +
//! sequential-read path costs instead. This crate gives every layer of the
//! reproduction the same three primitives to make that decomposition
//! visible end to end:
//!
//! 1. **Spans** ([`trace`]) — structured begin/end regions with wall
//!    duration and an optional *virtual* (cost-model) charge, recorded
//!    into lock-cheap per-thread ring buffers with a global [`drain`].
//!    Sites are gated on one relaxed atomic load ([`enabled`]), so the
//!    disabled path — the default — costs a branch and nothing else.
//!    Enable with `BORA_TRACE=1` (see [`init_from_env`]) or
//!    programmatically via [`set_enabled`].
//! 2. **Metrics** ([`registry`]) — process-wide named counters, gauges,
//!    and the power-of-two exponential histograms ([`hist`]) generalized
//!    out of `bora-serve`; always on, snapshot-and-diffable so the bench
//!    harness can attribute activity to individual experiments.
//! 3. **Exporters** ([`export`]) — Chrome `trace_event` JSON (load in
//!    `about://tracing` / Perfetto) and folded stacks for flamegraphs.
//!    [`write_trace_if_enabled`] is the one-call flush binaries use at
//!    exit.
//!
//! The crate depends only on the workspace's vendored shims — it sits
//! below `simfs` in the dependency DAG so every other crate can use it.
//!
//! ```
//! bora_obs::set_enabled(true);
//! {
//!     let outer = bora_obs::span("demo.outer");
//!     let inner = bora_obs::span("demo.inner");
//!     inner.end_virt(1_000); // attach a cost-model charge
//!     outer.end();
//! }
//! bora_obs::set_enabled(false);
//! let events = bora_obs::drain();
//! assert!(events.iter().any(|e| e.path == "demo.outer;demo.inner"));
//! let json = bora_obs::chrome_trace(&events, bora_obs::dropped());
//! assert!(json.contains("demo.inner"));
//! ```

pub mod export;
pub mod hist;
pub mod registry;
pub mod slo;
pub mod trace;
pub mod window;

pub use export::{chrome_trace, folded_stacks, merge_chrome_traces};
pub use hist::{ExpHistogram, HistSummary, BUCKETS};
pub use registry::{
    counter, gauge, histogram, json_string, snapshot, Counter, Gauge, Histogram, MetricsSnapshot,
    Registry,
};
pub use slo::{SloStatus, SloTarget, SloTracker};
pub use trace::{
    adopt_context, current_context, drain, dropped, enabled, init_from_env, now_ns,
    out_path_from_env, record_complete, set_enabled, set_thread_node, span, ContextGuard, Span,
    SpanEvent, TraceContext, RING_CAPACITY,
};
pub use window::WindowedHistogram;

/// If tracing is enabled, drain everything recorded so far and write a
/// Chrome trace JSON to `BORA_TRACE_OUT` (or `default_path` when unset).
/// Returns the path written, if any. Binaries call this at exit.
pub fn write_trace_if_enabled(default_path: &str) -> std::io::Result<Option<std::path::PathBuf>> {
    if !enabled() {
        return Ok(None);
    }
    let path = out_path_from_env().unwrap_or_else(|| std::path::PathBuf::from(default_path));
    let events = drain();
    let json = chrome_trace(&events, dropped());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&path, json)?;
    Ok(Some(path))
}
