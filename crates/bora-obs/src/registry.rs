//! The named-metrics registry: process-wide counters, gauges, and
//! exponential histograms, addressed by string name.
//!
//! Handles are cheap `Arc` clones of the underlying atomics, so the
//! intended pattern is *resolve once, record many*: look a metric up by
//! name at construction time (or lazily in a cold path) and keep the
//! handle. Recording through a handle is a relaxed atomic op — always on,
//! independent of the [`crate::trace`] enable flag, because counters are
//! cheap enough to leave running and bench snapshots depend on them.
//!
//! [`snapshot`] produces a [`MetricsSnapshot`]: a sorted, immutable copy
//! that can be diffed against an earlier one ([`MetricsSnapshot::delta_since`])
//! to attribute activity to one experiment, rendered as key/value rows for
//! CSV embedding, or serialized as JSON for the bench telemetry archive.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::hist::{ExpHistogram, HistSummary};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-writer-wins signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Shared handle to a registered histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<ExpHistogram>);

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    pub fn snapshot(&self) -> HistSummary {
        self.0.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, Counter>,
    gauges: HashMap<String, Gauge>,
    hists: HashMap<String, Histogram>,
}

/// A metrics registry. Most code uses the process-wide [`global`] one;
/// owning a private `Registry` is useful for tests that must not observe
/// other tests' metrics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        g.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock();
        g.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock();
        g.hists.entry(name.to_owned()).or_default().clone()
    }

    /// Sorted point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock();
        let mut counters: Vec<(String, u64)> =
            g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let mut gauges: Vec<(String, i64)> =
            g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let mut hists: Vec<(String, HistSummary)> =
            g.hists.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, hists }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-create a counter in the [`global`] registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Get-or-create a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Get-or-create a histogram in the [`global`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Snapshot the [`global`] registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Immutable, sorted copy of a registry's metrics at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub hists: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Counters and histograms as activity *since* `earlier` (gauges keep
    /// their current value — they are levels, not flows). Metrics absent
    /// from `earlier` are passed through whole; zero-activity entries are
    /// dropped so per-experiment sections only list what the experiment
    /// actually touched.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let prev_c: HashMap<&str, u64> =
            earlier.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let prev_h: HashMap<&str, &HistSummary> =
            earlier.hists.iter().map(|(k, v)| (k.as_str(), v)).collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (k.clone(), v.saturating_sub(prev_c.get(k.as_str()).copied().unwrap_or(0)))
                })
                .filter(|(_, v)| *v > 0)
                .collect(),
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| match prev_h.get(k.as_str()) {
                    Some(p) => (k.clone(), h.delta_since(p)),
                    None => (k.clone(), *h),
                })
                .filter(|(_, h)| h.count > 0)
                .collect(),
        }
    }

    /// Flatten to `(name, value)` rows for CSV embedding: counters and
    /// gauges verbatim, histograms as `.count/.mean/.p50/.p99/.min` rows.
    pub fn to_rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, h) in &self.hists {
            rows.push((format!("{k}.count"), h.count.to_string()));
            rows.push((format!("{k}.min"), h.min_or_zero().to_string()));
            rows.push((format!("{k}.mean"), h.mean().to_string()));
            rows.push((format!("{k}.p50"), h.percentile(0.5).to_string()));
            rows.push((format!("{k}.p99"), h.percentile(0.99).to_string()));
        }
        rows
    }

    /// Hand-rolled JSON object (the workspace vendors no serde): counters
    /// and gauges as numbers, histograms as `{count, min, mean, p50, p99}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, key: &str, value: String| {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_string(key), value);
        };
        for (k, v) in &self.counters {
            field(&mut out, k, v.to_string());
        }
        for (k, v) in &self.gauges {
            field(&mut out, k, v.to_string());
        }
        for (k, h) in &self.hists {
            field(
                &mut out,
                k,
                format!(
                    "{{\"count\":{},\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                    h.count,
                    h.min_or_zero(),
                    h.mean(),
                    h.percentile(0.5),
                    h.percentile(0.99)
                ),
            );
        }
        out.push('}');
        out
    }
}

/// Quote `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(-5);
        assert_eq!(r.gauge("g").get(), -5);
        r.histogram("h").record(100);
        assert_eq!(r.histogram("h").snapshot().count, 1);
    }

    #[test]
    fn snapshot_sorted_and_delta() {
        let r = Registry::new();
        r.counter("b").add(10);
        r.counter("a").add(1);
        r.histogram("h").record(50);
        let before = r.snapshot();
        assert_eq!(before.counters[0].0, "a");

        r.counter("b").add(5);
        r.histogram("h").record(70);
        let d = r.snapshot().delta_since(&before);
        // `a` had no activity in the interval → dropped from the delta.
        assert_eq!(d.counters, vec![("b".to_string(), 5)]);
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.hists[0].1.count, 1);
        assert_eq!(d.hists[0].1.sum, 70);
    }

    #[test]
    fn rows_and_json_render() {
        let r = Registry::new();
        r.counter("ops").add(3);
        r.gauge("depth").set(2);
        r.histogram("lat_ns").record(1000);
        let snap = r.snapshot();
        let rows = snap.to_rows();
        assert!(rows.contains(&("ops".to_string(), "3".to_string())));
        assert!(rows.contains(&("lat_ns.p99".to_string(), "1023".to_string())));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ops\":3"));
        assert!(json.contains("\"lat_ns\":{\"count\":1"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
