//! Write-ahead log: length-prefixed, CRC32C-framed records with
//! fsync-batched group commit.
//!
//! Frame layout: `[u32 payload_len][u32 crc32c(payload)][payload]`, where
//! the payload is `(seq u64, time u64 ns, topic string, data bytes)`. A
//! torn tail — truncated frame, short payload, or CRC mismatch — ends the
//! log: recovery keeps every frame before the first bad one and truncates
//! the rest, exactly like the container commit protocol treats a torn
//! MANIFEST as "never happened".
//!
//! Durability is batched: [`WalShard::append`] buffers encoded frames in
//! memory and [`WalShard::sync`] (called every `group_commit` records and
//! at every seal) lands them with one `append` + one `flush`, so the
//! fsync cost is amortized over the batch (counter `wal.fsync`).

use bora::checksum::crc32c;
use bora::error::{BoraError, BoraResult};
use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;
use simfs::{IoCtx, Storage};

/// Frame header: payload length + payload CRC32C.
pub const FRAME_HEADER: usize = 8;

/// One appended message, as logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global append sequence number (monotonic across all shards).
    pub seq: u64,
    pub topic: String,
    pub time: Time,
    pub data: Vec<u8>,
}

/// Encode one record as a framed WAL entry.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(24 + rec.topic.len() + rec.data.len());
    payload.put_u64(rec.seq);
    payload.put_u64(rec.time.as_nanos());
    payload.put_string(&rec.topic);
    payload.put_byte_array(&rec.data);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_u32(crc32c(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(mut cur: &[u8]) -> BoraResult<WalRecord> {
    let seq = cur.get_u64()?;
    let time = Time::from_nanos(cur.get_u64()?);
    let topic = cur.get_string()?;
    let data = cur.get_byte_array()?;
    if cur.remaining() != 0 {
        return Err(BoraError::Corrupt("trailing bytes in WAL payload".into()));
    }
    Ok(WalRecord { seq, topic, time, data })
}

/// Scan a WAL image: every record before the first bad frame, plus the
/// byte length of that good prefix (`== bytes.len()` iff the log is whole).
pub fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let Some(payload) = bytes.get(off + FRAME_HEADER..off + FRAME_HEADER + len) else {
            break; // torn tail: frame extends past EOF
        };
        if crc32c(payload) != crc {
            break; // bit rot or a torn write inside the frame
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        off += FRAME_HEADER + len;
    }
    (records, off)
}

/// One shard's writer: group-commit buffer + durable-record counter.
#[derive(Debug)]
pub struct WalShard {
    pub path: String,
    /// Encoded frames not yet on storage.
    buf: Vec<u8>,
    buf_records: u64,
    /// Records landed (and fsynced) in the file since the last reset.
    pub durable_records: u64,
}

impl WalShard {
    pub fn new(path: String) -> Self {
        WalShard { path, buf: Vec::new(), buf_records: 0, durable_records: 0 }
    }

    /// Buffer one record; call [`WalShard::sync`] to make it durable.
    pub fn append(&mut self, rec: &WalRecord) {
        self.buf.extend_from_slice(&encode_record(rec));
        self.buf_records += 1;
    }

    pub fn buffered_records(&self) -> u64 {
        self.buf_records
    }

    /// Land the buffered frames with one append + one fsync.
    pub fn sync<S: Storage>(&mut self, storage: &S, ctx: &mut IoCtx) -> BoraResult<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        storage.append(&self.path, &self.buf, ctx)?;
        storage.flush(&self.path, ctx)?;
        bora_obs::counter("wal.fsync").inc();
        self.durable_records += self.buf_records;
        self.buf.clear();
        self.buf_records = 0;
        Ok(())
    }

    /// Drop the shard's file (after a seal made its records redundant).
    /// Any still-buffered frames are discarded too — the caller sealed
    /// them out of the memtable already.
    pub fn reset<S: Storage>(&mut self, storage: &S, ctx: &mut IoCtx) -> BoraResult<()> {
        self.buf.clear();
        self.buf_records = 0;
        self.durable_records = 0;
        if storage.exists(&self.path, ctx) {
            storage.remove_file(&self.path, ctx)?;
        }
        Ok(())
    }

    /// Recover this shard: scan the file, truncate at the first bad
    /// frame (rewrite of the good prefix — the `Storage` trait has no
    /// truncate), and return the surviving records.
    pub fn recover<S: Storage>(
        &mut self,
        storage: &S,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<WalRecord>> {
        self.buf.clear();
        self.buf_records = 0;
        if !storage.exists(&self.path, ctx) {
            self.durable_records = 0;
            return Ok(Vec::new());
        }
        let bytes = storage.read_all(&self.path, ctx)?;
        let (records, good_len) = scan(&bytes);
        if good_len < bytes.len() {
            storage.remove_file(&self.path, ctx)?;
            if good_len > 0 {
                storage.append(&self.path, &bytes[..good_len], ctx)?;
            }
            storage.flush(&self.path, ctx).ok();
            bora_obs::counter("wal.torn_tail").inc();
        }
        self.durable_records = records.len() as u64;
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;

    fn rec(seq: u64, topic: &str, ns: u64, data: &[u8]) -> WalRecord {
        WalRecord { seq, topic: topic.into(), time: Time::from_nanos(ns), data: data.to_vec() }
    }

    #[test]
    fn frames_round_trip() {
        let records = vec![rec(0, "/imu", 100, b"alpha"), rec(1, "/camera/rgb", 250, &[0u8; 300])];
        let mut image = Vec::new();
        for r in &records {
            image.extend_from_slice(&encode_record(r));
        }
        let (out, good) = scan(&image);
        assert_eq!(out, records);
        assert_eq!(good, image.len());
    }

    #[test]
    fn torn_tail_truncates_at_first_bad_frame() {
        let a = encode_record(&rec(0, "/imu", 1, b"aa"));
        let b = encode_record(&rec(1, "/imu", 2, b"bb"));
        let mut image = a.clone();
        image.extend_from_slice(&b[..b.len() - 3]); // torn mid-frame
        let (out, good) = scan(&image);
        assert_eq!(out.len(), 1);
        assert_eq!(good, a.len());
    }

    #[test]
    fn corrupt_frame_stops_scan() {
        let a = encode_record(&rec(0, "/imu", 1, b"aa"));
        let b = encode_record(&rec(1, "/imu", 2, b"bb"));
        let mut image = a.clone();
        let mut bad = b.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // payload bit flip → CRC mismatch
        image.extend_from_slice(&bad);
        let (out, good) = scan(&image);
        assert_eq!(out.len(), 1);
        assert_eq!(good, a.len());
    }

    #[test]
    fn sync_lands_batch_and_is_idempotent() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut shard = WalShard::new("/w/shard-0.wal".into());
        for i in 0..5 {
            shard.append(&rec(i, "/imu", i, b"x"));
        }
        assert_eq!(shard.buffered_records(), 5);
        assert_eq!(shard.durable_records, 0, "nothing durable before the group commit");
        shard.sync(&fs, &mut ctx).unwrap();
        assert_eq!(shard.durable_records, 5);
        assert_eq!(shard.buffered_records(), 0);
        let len = fs.len("/w/shard-0.wal", &mut ctx).unwrap();
        let (records, good) = scan(&fs.read_all("/w/shard-0.wal", &mut ctx).unwrap());
        assert_eq!(records.len(), 5);
        assert_eq!(good as u64, len);
        // An empty sync is a no-op: no append, no file growth.
        shard.sync(&fs, &mut ctx).unwrap();
        assert_eq!(fs.len("/w/shard-0.wal", &mut ctx).unwrap(), len);
    }

    #[test]
    fn recover_truncates_and_replays() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let mut shard = WalShard::new("/w/shard-0.wal".into());
        for i in 0..3 {
            shard.append(&rec(i, "/imu", i * 10, b"data"));
        }
        shard.sync(&fs, &mut ctx).unwrap();
        // Simulate a torn append after the good records.
        fs.append("/w/shard-0.wal", &[7, 0, 0, 0, 1, 2], &mut ctx).unwrap();

        let mut fresh = WalShard::new("/w/shard-0.wal".into());
        let recovered = fresh.recover(&fs, &mut ctx).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(fresh.durable_records, 3);
        // The torn tail is gone from the medium.
        let (again, good) = scan(&fs.read_all("/w/shard-0.wal", &mut ctx).unwrap());
        assert_eq!(again.len(), 3);
        assert_eq!(good as u64, fs.len("/w/shard-0.wal", &mut ctx).unwrap());
    }
}
