//! Sealed segments: sorted, time-indexed, CRC-trailed per-topic files,
//! committed batch-at-a-time by a seal marker.
//!
//! A seal freezes the whole memtable: every topic's pending messages
//! become one `.seg` file, and a `.seal` marker — written and fsynced
//! *after* every segment file — lists the files with their lengths and
//! CRCs plus the last WAL sequence number the batch covers. The marker is
//! the commit record: segments without a valid marker are discarded on
//! recovery (the WAL still has their records), and WAL records at or
//! below a valid marker's `last_wal_seq` are skipped on replay (their
//! segments already have them). Either way, every message exists exactly
//! once.

use std::collections::BTreeMap;
use std::sync::Arc;

use bora::checksum::crc32c;
use bora::error::{BoraError, BoraResult};
use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;

const SEG_MAGIC: u32 = 0x42_53_47_31; // "BSG1"
const SEAL_MAGIC: u32 = 0x42_53_4C_31; // "BSL1"

/// One message held in memory (memtable or sealed batch). The payload is
/// shared so snapshots, segments, and tail lanes never copy it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestMessage {
    pub time: Time,
    /// Global WAL sequence number (stable identity across seal/compact).
    pub seq: u64,
    pub data: Arc<[u8]>,
}

/// One topic's sealed messages, as serialized to a `.seg` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    pub topic: String,
    pub seal_seq: u64,
    pub msgs: Vec<IngestMessage>,
}

impl Segment {
    /// Serialize: magic, seal_seq, topic, entry table
    /// `(time, seq, len)*`, concatenated payloads, trailing CRC32C of
    /// everything before it. The sorted entry table doubles as the
    /// segment's time index.
    pub fn encode(&self) -> Vec<u8> {
        let payload_len: usize = self.msgs.iter().map(|m| m.data.len()).sum();
        let mut out = Vec::with_capacity(32 + self.msgs.len() * 20 + payload_len);
        out.put_u32(SEG_MAGIC);
        out.put_u64(self.seal_seq);
        out.put_string(&self.topic);
        out.put_u32(self.msgs.len() as u32);
        for m in &self.msgs {
            out.put_u64(m.time.as_nanos());
            out.put_u64(m.seq);
            out.put_u32(m.data.len() as u32);
        }
        for m in &self.msgs {
            out.extend_from_slice(&m.data);
        }
        let crc = crc32c(&out);
        out.put_u32(crc);
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        if bytes.len() < 4 {
            return Err(BoraError::Corrupt("segment truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32c(body) != stored {
            return Err(BoraError::Corrupt("segment checksum mismatch".into()));
        }
        let mut cur = body;
        if cur.get_u32()? != SEG_MAGIC {
            return Err(BoraError::Corrupt("segment magic mismatch".into()));
        }
        let seal_seq = cur.get_u64()?;
        let topic = cur.get_string()?;
        let n = cur.get_u32()? as usize;
        let mut heads = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let time = Time::from_nanos(cur.get_u64()?);
            let seq = cur.get_u64()?;
            let len = cur.get_u32()? as usize;
            heads.push((time, seq, len));
        }
        let mut msgs = Vec::with_capacity(heads.len());
        for (time, seq, len) in heads {
            if cur.remaining() < len {
                return Err(BoraError::Corrupt("segment payload truncated".into()));
            }
            let (data, rest) = cur.split_at(len);
            msgs.push(IngestMessage { time, seq, data: Arc::from(data) });
            cur = rest;
        }
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in segment".into()));
        }
        Ok(Segment { topic, seal_seq, msgs })
    }
}

/// One committed seal: the per-topic messages of a whole frozen memtable,
/// kept memory-resident until compaction (snapshots pin these, so a
/// compaction can delete the files without invalidating open readers).
#[derive(Debug, Clone)]
pub struct SealedBatch {
    pub seal_seq: u64,
    /// Highest WAL sequence number covered by this batch.
    pub last_wal_seq: u64,
    pub topics: BTreeMap<String, Vec<IngestMessage>>,
}

impl SealedBatch {
    pub fn message_count(&self) -> u64 {
        self.topics.values().map(|v| v.len() as u64).sum()
    }

    pub fn data_bytes(&self) -> u64 {
        self.topics.values().flatten().map(|m| m.data.len() as u64).sum()
    }
}

/// One file the seal marker commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedFile {
    /// File name inside `seg/` (not a full path).
    pub name: String,
    pub len: u64,
    pub crc32c: u32,
}

/// The seal marker (`seg/<n>.seal`): the batch's commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealMarker {
    pub seal_seq: u64,
    pub last_wal_seq: u64,
    pub files: Vec<SealedFile>,
}

impl SealMarker {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(SEAL_MAGIC);
        out.put_u64(self.seal_seq);
        out.put_u64(self.last_wal_seq);
        out.put_u32(self.files.len() as u32);
        for f in &self.files {
            out.put_string(&f.name);
            out.put_u64(f.len);
            out.put_u32(f.crc32c);
        }
        let crc = crc32c(&out);
        out.put_u32(crc);
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        if bytes.len() < 4 {
            return Err(BoraError::Corrupt("seal marker truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32c(body) != stored {
            return Err(BoraError::Corrupt("seal marker checksum mismatch".into()));
        }
        let mut cur = body;
        if cur.get_u32()? != SEAL_MAGIC {
            return Err(BoraError::Corrupt("seal marker magic mismatch".into()));
        }
        let seal_seq = cur.get_u64()?;
        let last_wal_seq = cur.get_u64()?;
        let n = cur.get_u32()? as usize;
        let mut files = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            files.push(SealedFile {
                name: cur.get_string()?,
                len: cur.get_u64()?,
                crc32c: cur.get_u32()?,
            });
        }
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in seal marker".into()));
        }
        Ok(SealMarker { seal_seq, last_wal_seq, files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ns: u64, seq: u64, data: &[u8]) -> IngestMessage {
        IngestMessage { time: Time::from_nanos(ns), seq, data: Arc::from(data) }
    }

    #[test]
    fn segment_round_trip() {
        let seg = Segment {
            topic: "/camera/rgb".into(),
            seal_seq: 3,
            msgs: vec![msg(10, 0, b"alpha"), msg(20, 2, b""), msg(20, 5, &[9u8; 512])],
        };
        assert_eq!(Segment::decode(&seg.encode()).unwrap(), seg);
    }

    #[test]
    fn segment_any_bit_flip_detected() {
        let seg = Segment { topic: "/imu".into(), seal_seq: 0, msgs: vec![msg(1, 1, b"xyz")] };
        let bytes = seg.encode();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(Segment::decode(&bad).is_err(), "flip at byte {pos} undetected");
        }
    }

    #[test]
    fn segment_truncation_detected() {
        let seg = Segment { topic: "/imu".into(), seal_seq: 0, msgs: vec![msg(1, 1, b"xyz")] };
        let bytes = seg.encode();
        for keep in 0..bytes.len() {
            assert!(Segment::decode(&bytes[..keep]).is_err(), "truncation to {keep} undetected");
        }
    }

    #[test]
    fn seal_marker_round_trip() {
        let m = SealMarker {
            seal_seq: 7,
            last_wal_seq: 1234,
            files: vec![
                SealedFile { name: "00000007-imu.seg".into(), len: 99, crc32c: 0xAB },
                SealedFile { name: "00000007-tf.seg".into(), len: 12, crc32c: 0xCD },
            ],
        };
        assert_eq!(SealMarker::decode(&m.encode()).unwrap(), m);
        let mut bad = m.encode();
        bad[6] ^= 1;
        assert!(SealMarker::decode(&bad).is_err());
    }
}
