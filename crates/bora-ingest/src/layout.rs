//! On-disk layout of an ingest root.
//!
//! ```text
//! /live/amr1/                      ← ingest root
//!     .boraingest                  ← marker + config (shard count, window)
//!     wal/
//!         shard-0.wal              ← CRC32C-framed append log, one per shard
//!         shard-1.wal
//!     seg/
//!         00000000-imu.seg         ← sealed segment: <seal_seq>-<topic enc>
//!         00000000.seal            ← seal marker committing seal_seq 0
//!     gen/
//!         C00000000/               ← generation 0: a full BORA container
//!             .bora  .ingest  MANIFEST  imu/{data,index,tindex} ...
//!         C00000001.staging/       ← compaction in flight (PR 3 protocol)
//! ```
//!
//! Topics are sharded over the WAL files by name hash, so one topic's
//! records always share a shard and per-topic append order survives
//! recovery. Seal sequence numbers and generation numbers are fixed-width
//! decimal so `read_dir`'s sorted listing is also numeric order.

use bora::layout::encode_topic;

/// Marker file identifying (and configuring) an ingest root.
pub const INGEST_MARKER: &str = ".boraingest";
/// Marker file inside a generation container recording what it subsumes.
pub const GEN_MARKER: &str = ".ingest";

pub fn marker_path(root: &str) -> String {
    format!("{}/{INGEST_MARKER}", root.trim_end_matches('/'))
}

pub fn wal_dir(root: &str) -> String {
    format!("{}/wal", root.trim_end_matches('/'))
}

pub fn wal_shard_path(root: &str, shard: usize) -> String {
    format!("{}/wal/shard-{shard}.wal", root.trim_end_matches('/'))
}

pub fn seg_dir(root: &str) -> String {
    format!("{}/seg", root.trim_end_matches('/'))
}

/// Segment file for one topic of one seal.
pub fn segment_path(root: &str, seal_seq: u64, topic: &str) -> String {
    format!("{}/seg/{seal_seq:08}-{}.seg", root.trim_end_matches('/'), encode_topic(topic))
}

/// Seal marker committing a whole seal batch.
pub fn seal_marker_path(root: &str, seal_seq: u64) -> String {
    format!("{}/seg/{seal_seq:08}.seal", root.trim_end_matches('/'))
}

pub fn gen_dir(root: &str) -> String {
    format!("{}/gen", root.trim_end_matches('/'))
}

/// Root of one generation's container.
pub fn gen_root(root: &str, generation: u64) -> String {
    format!("{}/gen/C{generation:08}", root.trim_end_matches('/'))
}

/// Parse a `gen/` listing name back into a generation number.
pub fn parse_gen_name(name: &str) -> Option<u64> {
    name.strip_prefix('C').and_then(|n| n.parse().ok())
}

/// Parse a `seg/` listing name: `Some((seal_seq, None))` for a seal
/// marker, `Some((seal_seq, Some(topic)))` for a segment file.
pub fn parse_seg_name(name: &str) -> Option<(u64, Option<String>)> {
    if let Some(stem) = name.strip_suffix(".seal") {
        return stem.parse().ok().map(|n| (n, None));
    }
    let stem = name.strip_suffix(".seg")?;
    let (seq, enc) = stem.split_once('-')?;
    Some((seq.parse().ok()?, Some(bora::layout::decode_topic(enc))))
}

/// WAL shard a topic's records are routed to (stable name hash).
pub fn shard_of(topic: &str, shards: usize) -> usize {
    (simfs::clock::path_key(topic) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_stable() {
        assert_eq!(marker_path("/r/"), "/r/.boraingest");
        assert_eq!(wal_shard_path("/r", 3), "/r/wal/shard-3.wal");
        assert_eq!(segment_path("/r", 7, "/camera/rgb"), "/r/seg/00000007-camera%rgb.seg");
        assert_eq!(seal_marker_path("/r", 7), "/r/seg/00000007.seal");
        assert_eq!(gen_root("/r", 2), "/r/gen/C00000002");
    }

    #[test]
    fn seg_names_round_trip() {
        assert_eq!(parse_seg_name("00000007.seal"), Some((7, None)));
        assert_eq!(parse_seg_name("00000007-imu.seg"), Some((7, Some("/imu".into()))));
        assert_eq!(
            parse_seg_name("00000012-camera%rgb.seg"),
            Some((12, Some("/camera/rgb".into())))
        );
        assert_eq!(parse_seg_name("junk"), None);
    }

    #[test]
    fn gen_names_round_trip() {
        assert_eq!(parse_gen_name("C00000000"), Some(0));
        assert_eq!(parse_gen_name("C00000042"), Some(42));
        assert_eq!(parse_gen_name("C00000001.staging"), None);
        assert_eq!(parse_gen_name("other"), None);
    }

    #[test]
    fn sharding_is_stable_and_bounded() {
        for shards in 1..8 {
            let s = shard_of("/imu", shards);
            assert!(s < shards);
            assert_eq!(s, shard_of("/imu", shards));
        }
        assert_eq!(shard_of("/imu", 0), 0, "zero shards clamps to one");
    }
}
