//! **bora-ingest** — the live write path of the BORA reproduction.
//!
//! The organizer (`bora::organizer`) converts *finished* bags into
//! containers; this crate lets robots write *while recording* and lets
//! analysts query mid-recording data with the same APIs, same merge
//! semantics, and the same crash-consistency story as the offline path:
//!
//! * **WAL** ([`wal`]) — appends land in per-shard, CRC32C-framed,
//!   fsync-batched logs. A torn tail is truncated on recovery; everything
//!   before it replays.
//! * **Seal** ([`segment`]) — the memtable freezes into per-topic sorted
//!   segment files, committed atomically by a fsynced seal marker.
//! * **Compaction** ([`store`]) — sealed batches merge LSM-style into the
//!   next container generation using the staged-manifest commit protocol,
//!   so `bora fsck` accepts every committed generation and a power cut at
//!   any instant loses at most un-fsynced appends.
//! * **MVCC snapshots** ([`snapshot`]) — readers pin an epoch-stamped
//!   view {generation, sealed batches, frozen memtable} and stream it
//!   through `bora`'s k-way merge; results are byte-identical no matter
//!   which layer currently holds a message.
//!
//! ```
//! use bora_ingest::{IngestConfig, IngestStore};
//! use ros_msgs::Time;
//! use simfs::{IoCtx, MemStorage};
//!
//! let fs = MemStorage::new();
//! let mut ctx = IoCtx::new();
//! let store = IngestStore::create(&fs, "/live", IngestConfig::default(), &mut ctx).unwrap();
//! store.append("/imu", Time::from_nanos(100), b"reading", &mut ctx).unwrap();
//! let snap = store.snapshot(&mut ctx).unwrap();
//! let msgs = snap.read_topics(&["/imu"], &mut ctx).unwrap();
//! assert_eq!(msgs[0].data, b"reading");
//! store.seal(&mut ctx).unwrap();
//! store.compact(&mut ctx).unwrap();
//! let again = store.snapshot(&mut ctx).unwrap().read_topics(&["/imu"], &mut ctx).unwrap();
//! // Byte-identical across the state change (conn ids are per-container
//! // artifacts; topic, time, and payload are the message's identity).
//! assert_eq!(again[0].data, msgs[0].data);
//! assert_eq!(again[0].time, msgs[0].time);
//! ```

pub mod layout;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use segment::{IngestMessage, SealMarker, SealedBatch, Segment};
pub use snapshot::Snapshot;
pub use store::{GenHandle, GenMarker, IngestConfig, IngestStat, IngestStore};
pub use wal::{WalRecord, WalShard};
