//! MVCC snapshot reads over a live ingest root.
//!
//! A [`Snapshot`] is an epoch-stamped, immutable view: the generation
//! container that existed when it was taken (pinned via `Arc`, so a
//! concurrent compaction cannot delete its files), the sealed batches,
//! and a frozen copy of the memtable. Reads merge all three through
//! `bora`'s k-way `MessageStream` — the container lane comes from the
//! topic's `data`/`index` files, and the sealed + memtable messages ride
//! the same lane as an in-memory tail — so the result is byte-identical
//! to querying the fully compacted container later.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bora::error::BoraResult;
use bora::{BoraBag, BufferPool, StreamOptions, TailMessage};
use ros_msgs::Time;
use rosbag::MessageRecord;
use simfs::{IoCtx, Storage};

use crate::segment::{IngestMessage, SealedBatch};
use crate::store::GenHandle;

/// An immutable, epoch-stamped view of an ingest root.
pub struct Snapshot<S: Storage> {
    storage: S,
    gen: Arc<GenHandle>,
    sealed: Vec<Arc<SealedBatch>>,
    memtable: BTreeMap<String, Vec<IngestMessage>>,
    epoch: u64,
    /// Shared page cache for container-lane reads (see `bora::bufpool`);
    /// snapshots of the same store share one pool, so a hot topic stays
    /// hot across epochs until compaction invalidates its generation.
    pool: Option<Arc<BufferPool>>,
}

impl<S: Storage + Clone> Snapshot<S> {
    pub(crate) fn new(
        storage: S,
        gen: Arc<GenHandle>,
        sealed: Vec<Arc<SealedBatch>>,
        memtable: BTreeMap<String, Vec<IngestMessage>>,
        epoch: u64,
        pool: Option<Arc<BufferPool>>,
    ) -> Self {
        Snapshot { storage, gen, sealed, memtable, epoch, pool }
    }

    /// The store epoch this snapshot observes. Messages appended after
    /// this epoch are invisible to every read.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn generation(&self) -> u64 {
        self.gen.generation
    }

    /// Container root backing this snapshot's compacted lane.
    pub fn container_root(&self) -> &str {
        &self.gen.root
    }

    /// All topics visible to this snapshot: compacted, sealed, or still
    /// in the memtable.
    pub fn topics(&self, ctx: &mut IoCtx) -> BoraResult<Vec<String>> {
        let bag = self.open_bag(ctx)?;
        let mut set: BTreeSet<String> = bag.meta().topics.iter().map(|t| t.topic.clone()).collect();
        for b in &self.sealed {
            set.extend(b.topics.keys().cloned());
        }
        set.extend(self.memtable.keys().cloned());
        Ok(set.into_iter().collect())
    }

    /// Topic → ROS datatype for every *compacted* topic. A topic that so
    /// far exists only in the tail (sealed batches / memtable) has no
    /// recorded datatype yet and is simply absent — the query layer then
    /// treats its payloads as opaque and field paths read as null until
    /// the next compaction lands the topic in a generation container.
    pub fn datatypes(&self, ctx: &mut IoCtx) -> BoraResult<HashMap<String, String>> {
        let bag = self.open_bag(ctx)?;
        Ok(bag.meta().topics.iter().map(|t| (t.topic.clone(), t.datatype.clone())).collect())
    }

    /// Read whole topics in global time order — the mid-recording
    /// equivalent of `BoraBag::read_topics`. A topic the recording has
    /// not produced yet is empty, not an error (it may start existing
    /// one epoch later); dropping its empty lane cannot change the merge
    /// output.
    pub fn read_topics(&self, topics: &[&str], ctx: &mut IoCtx) -> BoraResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("ingest.snapshot_read");
        let bag = self.open_bag(ctx)?;
        let (topics, tails) = self.known_lanes(&bag, topics);
        let out = bag
            .stream_topics_with_tails(&topics, tails, None, StreamOptions::default(), ctx)?
            .collect_records(ctx);
        sp.end();
        out
    }

    /// Read a half-open `[start, end)` time range across topics.
    pub fn read_time_range(
        &self,
        topics: &[&str],
        start: Time,
        end: Time,
        ctx: &mut IoCtx,
    ) -> BoraResult<Vec<MessageRecord>> {
        let sp = bora_obs::span("ingest.snapshot_read");
        let bag = self.open_bag(ctx)?;
        let (topics, tails) = self.known_lanes(&bag, topics);
        let out = bag
            .stream_topics_with_tails(
                &topics,
                tails,
                Some((start, end)),
                StreamOptions::default(),
                ctx,
            )?
            .collect_records(ctx);
        sp.end();
        out
    }

    /// Keep only lanes this snapshot knows (compacted topic or non-empty
    /// tail). Relative lane order is preserved, so the `(time, lane)`
    /// tie-break among surviving lanes — the only ones that can emit —
    /// is unchanged.
    fn known_lanes<'t>(
        &self,
        bag: &BoraBag<S>,
        topics: &[&'t str],
    ) -> (Vec<&'t str>, Vec<Vec<TailMessage>>) {
        let tails = self.tails_for(topics);
        topics
            .iter()
            .zip(tails)
            .filter(|(t, tail)| bag.meta().topic(t).is_some() || !tail.is_empty())
            .map(|(t, tail)| (*t, tail))
            .unzip()
    }

    fn open_bag(&self, ctx: &mut IoCtx) -> BoraResult<BoraBag<S>> {
        let bag = BoraBag::open(self.storage.clone(), &self.gen.root, ctx)?;
        Ok(match &self.pool {
            Some(p) => bag.with_pool(Arc::clone(p)),
            None => bag,
        })
    }

    /// One tail per requested topic: sealed batches in seal order, then
    /// the frozen memtable — which is exactly append order, so each lane
    /// stays chronological and the `(time, lane)` merge tie-break gives
    /// the same bytes as the compacted layout.
    fn tails_for(&self, topics: &[&str]) -> Vec<Vec<TailMessage>> {
        topics
            .iter()
            .map(|t| {
                let mut tail = Vec::new();
                for b in &self.sealed {
                    if let Some(msgs) = b.topics.get(*t) {
                        tail.extend(msgs.iter().map(to_tail));
                    }
                }
                if let Some(msgs) = self.memtable.get(*t) {
                    tail.extend(msgs.iter().map(to_tail));
                }
                tail
            })
            .collect()
    }
}

fn to_tail(m: &IngestMessage) -> TailMessage {
    TailMessage { time: m.time, data: Arc::clone(&m.data) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{IngestConfig, IngestStore};
    use simfs::MemStorage;

    fn live_store<'a>(fs: &'a MemStorage, ctx: &mut IoCtx) -> IngestStore<&'a MemStorage> {
        IngestStore::create(
            fs,
            "/live",
            IngestConfig { wal_shards: 2, group_commit: 4, window_ns: 1_000, block: None },
            ctx,
        )
        .unwrap()
    }

    fn fill(st: &IngestStore<&MemStorage>, ctx: &mut IoCtx) {
        for i in 0..12u64 {
            st.append("/imu", Time::from_nanos(i * 100), &[i as u8, 0xAA], ctx).unwrap();
            if i % 3 == 0 {
                st.append("/camera", Time::from_nanos(i * 100 + 7), &[i as u8; 64], ctx).unwrap();
            }
        }
    }

    /// Message identity modulo `conn_id`: conn ids are assigned per
    /// container generation (and are not part of the serve wire format),
    /// so cross-layer comparisons use (topic, time, payload).
    fn payloads(msgs: &[MessageRecord]) -> Vec<(String, u64, Vec<u8>)> {
        msgs.iter().map(|m| (m.topic.clone(), m.time.as_nanos(), m.data.clone())).collect()
    }

    #[test]
    fn snapshot_reads_match_across_memtable_seal_compact() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = live_store(&fs, &mut ctx);
        fill(&st, &mut ctx);

        // All in memtable.
        let a = st.snapshot(&mut ctx).unwrap().read_topics(&["/imu", "/camera"], &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        // All in a sealed batch.
        let b = st.snapshot(&mut ctx).unwrap().read_topics(&["/imu", "/camera"], &mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        // All compacted into the container.
        let c = st.snapshot(&mut ctx).unwrap().read_topics(&["/imu", "/camera"], &mut ctx).unwrap();
        assert_eq!(a.len(), 16);
        assert_eq!(payloads(&a), payloads(&b), "memtable vs sealed");
        assert_eq!(payloads(&b), payloads(&c), "sealed vs compacted");
    }

    #[test]
    fn snapshot_never_observes_later_appends() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = live_store(&fs, &mut ctx);
        st.append("/imu", Time::from_nanos(10), b"early", &mut ctx).unwrap();
        let snap = st.snapshot(&mut ctx).unwrap();
        let pinned_epoch = snap.epoch();

        st.append("/imu", Time::from_nanos(20), b"late", &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        assert!(st.epoch() > pinned_epoch);

        let msgs = snap.read_topics(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].data, b"early");

        // A fresh snapshot sees everything.
        let now = st.snapshot(&mut ctx).unwrap();
        assert_eq!(now.read_topics(&["/imu"], &mut ctx).unwrap().len(), 2);
    }

    #[test]
    fn snapshot_pins_generation_across_compaction() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = live_store(&fs, &mut ctx);
        st.append("/imu", Time::from_nanos(1), b"one", &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        let snap = st.snapshot(&mut ctx).unwrap();
        assert_eq!(snap.generation(), 1);

        st.append("/imu", Time::from_nanos(2), b"two", &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        // Generation 1's directory survives while the snapshot lives...
        assert!(fs.exists("/live/gen/C00000001", &mut ctx));
        assert_eq!(snap.read_topics(&["/imu"], &mut ctx).unwrap().len(), 1);
        drop(snap);
        // ...and is garbage-collected at the next snapshot/compaction.
        let _ = st.snapshot(&mut ctx).unwrap();
        assert!(!fs.exists("/live/gen/C00000001", &mut ctx));
    }

    #[test]
    fn time_range_spans_container_and_tail() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = live_store(&fs, &mut ctx);
        for i in 0..6u64 {
            st.append("/imu", Time::from_nanos(i * 100), &[i as u8], &mut ctx).unwrap();
        }
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        for i in 6..12u64 {
            st.append("/imu", Time::from_nanos(i * 100), &[i as u8], &mut ctx).unwrap();
        }
        let snap = st.snapshot(&mut ctx).unwrap();
        let msgs = snap
            .read_time_range(&["/imu"], Time::from_nanos(400), Time::from_nanos(800), &mut ctx)
            .unwrap();
        let got: Vec<u8> = msgs.iter().map(|m| m.data[0]).collect();
        assert_eq!(got, vec![4, 5, 6, 7], "range straddles the compaction boundary");

        // Tail-only topic with the whole tail filtered out: empty, not
        // an UnknownTopic error.
        st.append("/new", Time::from_nanos(10_000), b"x", &mut ctx).unwrap();
        let snap2 = st.snapshot(&mut ctx).unwrap();
        let none = snap2
            .read_time_range(&["/new"], Time::from_nanos(0), Time::from_nanos(5), &mut ctx)
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn topics_unions_all_layers() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = live_store(&fs, &mut ctx);
        st.append("/a", Time::from_nanos(1), b"1", &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        st.append("/b", Time::from_nanos(2), b"2", &mut ctx).unwrap();
        st.seal(&mut ctx).unwrap();
        st.append("/c", Time::from_nanos(3), b"3", &mut ctx).unwrap();
        let snap = st.snapshot(&mut ctx).unwrap();
        assert_eq!(snap.topics(&mut ctx).unwrap(), vec!["/a", "/b", "/c"]);
    }
}
