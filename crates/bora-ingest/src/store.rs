//! The ingest store: WAL → memtable → sealed segments → container
//! generations, with MVCC snapshot reads.
//!
//! ## State machine
//!
//! ```text
//! append ──► WAL shard (group-committed) + memtable
//! seal   ──► per-topic .seg files, then one .seal marker (the commit),
//!            then WAL reset; the frozen memtable becomes a SealedBatch
//! compact ─► generation g+1: full container rewrite (old gen ++ sealed
//!            batches) under .staging, MANIFEST last, one rename commits;
//!            consumed seg/seal files deleted after the rename
//! ```
//!
//! Every arrow is individually crash-atomic: a power cut mid-append leaves
//! a torn WAL tail (truncated on recovery, counter `wal.torn_tail`); one
//! mid-seal leaves segments without a marker (discarded — the WAL still
//! has the records); one mid-compact leaves a `.staging` generation with
//! no MANIFEST (swept at open — the old generation and its seals are
//! intact). Recovery replays durable WAL records with sequence numbers
//! above what the newest generation and valid seals already cover, so a
//! message is never lost once fsynced and never duplicated.
//!
//! ## MVCC
//!
//! The store keeps a single epoch counter, bumped by every append, seal,
//! and compaction. [`IngestStore::snapshot`] pins the current generation
//! (via `Arc` — compaction retires old generation directories only when
//! no snapshot holds them), the sealed batches, and a clone of the
//! memtable (payloads are `Arc<[u8]>`, so the clone is cheap). Reads off
//! a snapshot are byte-identical whether a message is currently in the
//! memtable, a sealed segment, or a compacted container, because all
//! three feed the same `(time, lane)` k-way merge in `bora::stream`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bora::block::{read_logical, BlockCodec, BlockParams, BlockWriter};
use bora::bufpool::BufferPool;
use bora::checksum::crc32c;
use bora::error::{BoraError, BoraResult};
use bora::layout::{manifest_path, meta_path, rel_path, staging_path, TopicPaths, META_FILE};
use bora::manifest::{Manifest, ManifestEntry};
use bora::meta::{ContainerMeta, TopicMeta};
use bora::time_index::{TimeIndex, DEFAULT_WINDOW_NS};
use bora::topic_index::{decode_entries, encode_entries, TopicIndexEntry, ENTRY_SIZE};
use parking_lot::Mutex;
use ros_msgs::wire::{WireRead, WireWrite};
use ros_msgs::Time;
use simfs::{EntryKind, IoCtx, Storage};

use crate::layout::{
    gen_dir, gen_root, marker_path, parse_gen_name, parse_seg_name, seal_marker_path, seg_dir,
    segment_path, shard_of, wal_dir, wal_shard_path, GEN_MARKER,
};
use crate::segment::{IngestMessage, SealMarker, SealedBatch, SealedFile, Segment};
use crate::snapshot::Snapshot;
use crate::wal::{WalRecord, WalShard};

const CFG_MAGIC: u32 = 0x42_49_4E_31; // "BIN1"
const GEN_MAGIC: u32 = 0x42_49_47_31; // "BIG1"

/// Ingest-root configuration, persisted in `.boraingest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Number of WAL shard files appends are hashed over.
    pub wal_shards: usize,
    /// Records buffered per shard before an automatic fsync.
    pub group_commit: u64,
    /// Coarse time-index window width for compacted containers.
    pub window_ns: u64,
    /// Block framing for compacted generations: `Some` makes every
    /// compaction write delta-timestamped, optionally compressed topic
    /// blocks (container metadata v2); `None` keeps the plain v1 layout.
    /// Encoded as an optional trailer so pre-block `.boraingest` files
    /// still decode.
    pub block: Option<BlockParams>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { wal_shards: 4, group_commit: 8, window_ns: DEFAULT_WINDOW_NS, block: None }
    }
}

impl IngestConfig {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(CFG_MAGIC);
        out.put_u32(self.wal_shards as u32);
        out.put_u64(self.group_commit);
        out.put_u64(self.window_ns);
        if let Some(b) = self.block {
            out.push(b.codec.id());
            out.put_u32(b.block_size);
        }
        let crc = crc32c(&out);
        out.put_u32(crc);
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        if bytes.len() < 4 {
            return Err(BoraError::Corrupt("ingest config truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32c(body) != stored {
            return Err(BoraError::Corrupt("ingest config checksum mismatch".into()));
        }
        let mut cur = body;
        if cur.get_u32()? != CFG_MAGIC {
            return Err(BoraError::Corrupt("ingest config magic mismatch".into()));
        }
        let wal_shards = cur.get_u32()? as usize;
        let group_commit = cur.get_u64()?;
        let window_ns = cur.get_u64()?;
        let block = if cur.remaining() == 0 {
            None
        } else {
            let codec = BlockCodec::from_id(cur.get_u8()?)?;
            let block_size = cur.get_u32()?;
            if block_size == 0 {
                return Err(BoraError::Corrupt("ingest config block size is zero".into()));
            }
            Some(BlockParams { codec, block_size })
        };
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in ingest config".into()));
        }
        Ok(IngestConfig { wal_shards, group_commit, window_ns, block })
    }
}

/// The `.ingest` marker inside a generation container: what the
/// generation subsumes, so recovery knows which seals and WAL records are
/// already compacted in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenMarker {
    pub generation: u64,
    /// Highest seal sequence merged into this generation (0 = none).
    pub last_seal_seq: u64,
    /// Highest WAL sequence merged into this generation (0 = none).
    pub last_wal_seq: u64,
}

impl GenMarker {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u32(GEN_MAGIC);
        out.put_u64(self.generation);
        out.put_u64(self.last_seal_seq);
        out.put_u64(self.last_wal_seq);
        let crc = crc32c(&out);
        out.put_u32(crc);
        out
    }

    pub fn decode(bytes: &[u8]) -> BoraResult<Self> {
        if bytes.len() < 4 {
            return Err(BoraError::Corrupt("generation marker truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
        if crc32c(body) != stored {
            return Err(BoraError::Corrupt("generation marker checksum mismatch".into()));
        }
        let mut cur = body;
        if cur.get_u32()? != GEN_MAGIC {
            return Err(BoraError::Corrupt("generation marker magic mismatch".into()));
        }
        let m = GenMarker {
            generation: cur.get_u64()?,
            last_seal_seq: cur.get_u64()?,
            last_wal_seq: cur.get_u64()?,
        };
        if cur.remaining() != 0 {
            return Err(BoraError::Corrupt("trailing bytes in generation marker".into()));
        }
        Ok(m)
    }
}

/// One committed generation. Snapshots hold an `Arc` to it; compaction
/// deletes a retired generation's directory only once no snapshot does.
#[derive(Debug)]
pub struct GenHandle {
    pub generation: u64,
    /// Container root of this generation (`<root>/gen/C<g>`).
    pub root: String,
    pub last_seal_seq: u64,
    pub last_wal_seq: u64,
}

/// Point-in-time counters for `bora-tool ingest-stat` and the serve tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStat {
    pub epoch: u64,
    pub generation: u64,
    pub last_seal_seq: u64,
    /// WAL records fsynced but not yet sealed.
    pub wal_durable_records: u64,
    /// WAL records buffered in memory awaiting group commit.
    pub wal_buffered_records: u64,
    pub active_topics: usize,
    pub active_messages: u64,
    pub active_bytes: u64,
    pub sealed_batches: usize,
    /// Compaction lag: messages sealed but not yet compacted.
    pub sealed_messages: u64,
    pub sealed_bytes: u64,
}

struct IngestState {
    shards: Vec<WalShard>,
    memtable: BTreeMap<String, Vec<IngestMessage>>,
    sealed: Vec<Arc<SealedBatch>>,
    gen: Arc<GenHandle>,
    /// Generations superseded by compaction but possibly still pinned.
    retired: Vec<Arc<GenHandle>>,
    /// Next WAL sequence number (first record is 1; 0 means "none").
    next_seq: u64,
    /// Next seal sequence number (first seal is 1; 0 means "none").
    next_seal_seq: u64,
    epoch: u64,
    /// Per-topic high-water timestamp across container + sealed +
    /// memtable, enforcing the chronological-lane invariant.
    last_time: BTreeMap<String, Time>,
}

impl IngestState {
    fn gc_retired<S: Storage>(
        &mut self,
        storage: &S,
        pool: Option<&Arc<BufferPool>>,
        ctx: &mut IoCtx,
    ) {
        self.retired.retain(|h| {
            if Arc::strong_count(h) == 1 {
                if storage.exists(&h.root, ctx) {
                    let _ = storage.remove_dir_all(&h.root, ctx);
                }
                // The generation's files are gone; drop its cached pages
                // so the budget goes back to live data.
                if let Some(p) = pool {
                    p.invalidate_prefix(&h.root);
                }
                false
            } else {
                true
            }
        });
    }
}

/// A live ingest root: robots append through [`IngestStore::append`],
/// readers query through [`IngestStore::snapshot`].
pub struct IngestStore<S: Storage> {
    storage: S,
    root: String,
    cfg: IngestConfig,
    /// Shared page cache handed to every snapshot's container reads.
    pool: Option<Arc<BufferPool>>,
    inner: Mutex<IngestState>,
}

impl<S: Storage> IngestStore<S> {
    /// Initialize a fresh ingest root. Commits an empty generation-0
    /// container first (so every snapshot has a container to open), then
    /// the `.boraingest` marker last — a crash mid-create leaves debris
    /// but never a root that [`IngestStore::open`] accepts.
    pub fn create(storage: S, root: &str, cfg: IngestConfig, ctx: &mut IoCtx) -> BoraResult<Self> {
        let sp = bora_obs::span("ingest.create");
        let root = root.trim_end_matches('/').to_owned();
        let mp = marker_path(&root);
        if storage.exists(&mp, ctx) {
            return Err(BoraError::Fs(simfs::FsError::AlreadyExists(root)));
        }
        storage.mkdir_all(&wal_dir(&root), ctx)?;
        storage.mkdir_all(&seg_dir(&root), ctx)?;
        storage.mkdir_all(&gen_dir(&root), ctx)?;
        let meta = ContainerMeta {
            window_ns: cfg.window_ns,
            block: cfg.block,
            ..ContainerMeta::default()
        };
        let marker = GenMarker { generation: 0, last_seal_seq: 0, last_wal_seq: 0 };
        let g0 = commit_generation(&storage, &root, &meta, &marker, &BTreeMap::new(), ctx)?;
        storage.append(&mp, &cfg.encode(), ctx)?;
        storage.flush(&mp, ctx)?;
        let gen =
            Arc::new(GenHandle { generation: 0, root: g0, last_seal_seq: 0, last_wal_seq: 0 });
        let shards =
            (0..cfg.wal_shards.max(1)).map(|i| WalShard::new(wal_shard_path(&root, i))).collect();
        sp.end();
        Ok(IngestStore {
            storage,
            root,
            cfg,
            pool: None,
            inner: Mutex::new(IngestState {
                shards,
                memtable: BTreeMap::new(),
                sealed: Vec::new(),
                gen,
                retired: Vec::new(),
                next_seq: 1,
                next_seal_seq: 1,
                epoch: 1,
                last_time: BTreeMap::new(),
            }),
        })
    }

    /// Open (and recover) an existing ingest root:
    ///
    /// 1. newest generation with a valid MANIFEST + `.ingest` marker
    ///    wins; older generations and staging debris are swept;
    /// 2. seals above the generation's watermark with a valid marker are
    ///    loaded memory-resident (verified against the marker's lengths
    ///    and CRCs); unmarked segments are discarded — their records are
    ///    still in the WAL;
    /// 3. WAL shards are truncated at the first torn frame, and surviving
    ///    records above the covered watermark replay into the memtable.
    pub fn open(storage: S, root: &str, ctx: &mut IoCtx) -> BoraResult<Self> {
        let sp = bora_obs::span("ingest.open");
        let root = root.trim_end_matches('/').to_owned();
        let mp = marker_path(&root);
        if !storage.exists(&mp, ctx) {
            return Err(BoraError::NotAContainer(root));
        }
        let cfg = IngestConfig::decode(&storage.read_all(&mp, ctx)?)?;

        // 1. Pick the newest committed generation; everything else in
        // gen/ is debris from crashed compactions.
        let gdir = gen_dir(&root);
        let mut best: Option<(u64, String, GenMarker)> = None;
        let mut junk: Vec<(String, EntryKind)> = Vec::new();
        for e in storage.read_dir(&gdir, ctx)? {
            let path = format!("{gdir}/{}", e.name);
            let committed = match (parse_gen_name(&e.name), e.kind) {
                (Some(g), EntryKind::Dir) => load_gen_marker(&storage, &path, ctx)
                    .ok()
                    .filter(|m| m.generation == g)
                    .map(|m| (g, m)),
                _ => None,
            };
            match committed {
                Some((g, marker)) => match best.take() {
                    Some(prev) if prev.0 > g => {
                        junk.push((path, EntryKind::Dir));
                        best = Some(prev);
                    }
                    Some(prev) => {
                        junk.push((prev.1, EntryKind::Dir));
                        best = Some((g, path, marker));
                    }
                    None => best = Some((g, path, marker)),
                },
                None => junk.push((path, e.kind)),
            }
        }
        let (generation, groot, gmarker) = best.ok_or_else(|| {
            BoraError::Corrupt(format!("ingest root {root} has no committed generation"))
        })?;
        for (path, kind) in junk {
            match kind {
                EntryKind::Dir => storage.remove_dir_all(&path, ctx)?,
                EntryKind::File => storage.remove_file(&path, ctx)?,
            }
        }

        // 2. Load committed seals above the generation's watermark.
        let sdir = seg_dir(&root);
        let mut by_seal: BTreeMap<u64, Vec<(String, bool)>> = BTreeMap::new();
        for e in storage.read_dir(&sdir, ctx)? {
            match parse_seg_name(&e.name) {
                Some((seq, topic)) => {
                    by_seal.entry(seq).or_default().push((e.name, topic.is_none()))
                }
                None => storage.remove_file(&format!("{sdir}/{}", e.name), ctx)?,
            }
        }
        let mut sealed: Vec<Arc<SealedBatch>> = Vec::new();
        for (seq, files) in by_seal {
            let marker = if seq > gmarker.last_seal_seq && files.iter().any(|(_, m)| *m) {
                storage
                    .read_all(&seal_marker_path(&root, seq), ctx)
                    .ok()
                    .and_then(|b| SealMarker::decode(&b).ok())
            } else {
                None
            };
            let Some(m) = marker else {
                // Consumed by the generation, or never committed (the
                // WAL still holds an uncommitted seal's records).
                for (name, _) in &files {
                    storage.remove_file(&format!("{sdir}/{name}"), ctx)?;
                }
                continue;
            };
            let mut topics = BTreeMap::new();
            for f in &m.files {
                let bytes = storage.read_all(&format!("{sdir}/{}", f.name), ctx)?;
                if bytes.len() as u64 != f.len || crc32c(&bytes) != f.crc32c {
                    return Err(BoraError::Corrupt(format!("sealed segment {} damaged", f.name)));
                }
                let seg = Segment::decode(&bytes)?;
                topics.insert(seg.topic, seg.msgs);
            }
            for (name, is_marker) in &files {
                if !is_marker && !m.files.iter().any(|f| &f.name == name) {
                    storage.remove_file(&format!("{sdir}/{name}"), ctx)?;
                }
            }
            sealed.push(Arc::new(SealedBatch {
                seal_seq: seq,
                last_wal_seq: m.last_wal_seq,
                topics,
            }));
        }
        let covered = sealed.iter().map(|b| b.last_wal_seq).fold(gmarker.last_wal_seq, u64::max);

        // 3. Recover WAL shards and replay uncovered records.
        let mut shards: Vec<WalShard> =
            (0..cfg.wal_shards.max(1)).map(|i| WalShard::new(wal_shard_path(&root, i))).collect();
        let mut records: Vec<WalRecord> = Vec::new();
        for sh in &mut shards {
            records.extend(sh.recover(&storage, ctx)?);
        }
        records.retain(|r| r.seq > covered);
        records.sort_by_key(|r| r.seq);
        let mut next_seq = covered + 1;
        let mut memtable: BTreeMap<String, Vec<IngestMessage>> = BTreeMap::new();
        for r in records {
            next_seq = next_seq.max(r.seq + 1);
            memtable.entry(r.topic).or_default().push(IngestMessage {
                time: r.time,
                seq: r.seq,
                data: r.data.into(),
            });
        }

        // High-water timestamps: container topics' last index entry, then
        // sealed batches and the replayed memtable.
        let mut last_time: BTreeMap<String, Time> = BTreeMap::new();
        let meta = ContainerMeta::decode(&storage.read_all(&meta_path(&groot), ctx)?)?;
        for t in &meta.topics {
            if t.message_count == 0 {
                continue;
            }
            let paths = TopicPaths::new(&groot, &t.topic);
            let ilen = storage.len(&paths.index, ctx)?;
            if ilen >= ENTRY_SIZE as u64 {
                let tail =
                    storage.read_at(&paths.index, ilen - ENTRY_SIZE as u64, ENTRY_SIZE, ctx)?;
                let mut cur: &[u8] = &tail;
                last_time.insert(t.topic.clone(), TopicIndexEntry::decode(&mut cur)?.time);
            }
        }
        for batch in &sealed {
            for (topic, msgs) in &batch.topics {
                if let Some(m) = msgs.last() {
                    let e = last_time.entry(topic.clone()).or_insert(m.time);
                    *e = (*e).max(m.time);
                }
            }
        }
        for (topic, msgs) in &memtable {
            if let Some(m) = msgs.last() {
                let e = last_time.entry(topic.clone()).or_insert(m.time);
                *e = (*e).max(m.time);
            }
        }

        let next_seal_seq =
            sealed.iter().map(|b| b.seal_seq).fold(gmarker.last_seal_seq, u64::max) + 1;
        let gen = Arc::new(GenHandle {
            generation,
            root: groot,
            last_seal_seq: gmarker.last_seal_seq,
            last_wal_seq: gmarker.last_wal_seq,
        });
        sp.end();
        Ok(IngestStore {
            storage,
            root,
            cfg,
            pool: None,
            inner: Mutex::new(IngestState {
                shards,
                memtable,
                sealed,
                gen,
                retired: Vec::new(),
                next_seq,
                next_seal_seq,
                epoch: 1,
                last_time,
            }),
        })
    }

    /// Is `root` an ingest root (has the `.boraingest` marker)?
    pub fn is_ingest_root(storage: &S, root: &str, ctx: &mut IoCtx) -> bool {
        storage.exists(&marker_path(root.trim_end_matches('/')), ctx)
    }

    pub fn root(&self) -> &str {
        &self.root
    }

    pub fn config(&self) -> IngestConfig {
        self.cfg
    }

    /// Attach a shared buffer pool: every snapshot taken afterwards
    /// routes its container-lane reads through it.
    pub fn with_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Append one timestamped message. Returns its WAL sequence number.
    /// The record is durable once its shard group-commits (every
    /// `group_commit` records, at [`IngestStore::flush_wal`], and at
    /// every seal). Appends must be per-topic chronological — an
    /// out-of-order timestamp is rejected, which is what keeps every
    /// merge lane sorted and the memtable/segment/container read paths
    /// byte-identical.
    pub fn append(&self, topic: &str, time: Time, data: &[u8], ctx: &mut IoCtx) -> BoraResult<u64> {
        let mut st = self.inner.lock();
        if let Some(last) = st.last_time.get(topic) {
            if time < *last {
                return Err(BoraError::Corrupt(format!(
                    "out-of-order append on {topic}: {} < high-water {}",
                    time.as_nanos(),
                    last.as_nanos()
                )));
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let rec = WalRecord { seq, topic: topic.to_owned(), time, data: data.to_vec() };
        let shard = shard_of(topic, self.cfg.wal_shards.max(1));
        st.shards[shard].append(&rec);
        if st.shards[shard].buffered_records() >= self.cfg.group_commit.max(1) {
            st.shards[shard].sync(&self.storage, ctx)?;
        }
        st.memtable.entry(topic.to_owned()).or_default().push(IngestMessage {
            time,
            seq,
            data: rec.data.into(),
        });
        st.last_time.insert(topic.to_owned(), time);
        st.epoch += 1;
        Ok(seq)
    }

    /// Force-sync every WAL shard (one fsync per non-empty shard).
    pub fn flush_wal(&self, ctx: &mut IoCtx) -> BoraResult<()> {
        let st = &mut *self.inner.lock();
        for sh in &mut st.shards {
            sh.sync(&self.storage, ctx)?;
        }
        Ok(())
    }

    /// Seal the memtable: write one sorted, time-indexed segment file per
    /// topic, commit them with a fsynced seal marker, then retire the WAL
    /// shards. Returns the seal sequence, or `None` if there was nothing
    /// to seal.
    pub fn seal(&self, ctx: &mut IoCtx) -> BoraResult<Option<u64>> {
        let sp = bora_obs::span("ingest.seal");
        let st = &mut *self.inner.lock();
        // Anything still buffered must land before its only copy moves
        // out of the WAL path.
        for sh in &mut st.shards {
            sh.sync(&self.storage, ctx)?;
        }
        if st.memtable.is_empty() {
            sp.end();
            return Ok(None);
        }
        let seal_seq = st.next_seal_seq;
        let last_wal_seq = st.next_seq - 1;
        let mut files = Vec::with_capacity(st.memtable.len());
        for (topic, msgs) in &st.memtable {
            let seg = Segment { topic: topic.clone(), seal_seq, msgs: msgs.clone() };
            let bytes = seg.encode();
            let path = segment_path(&self.root, seal_seq, topic);
            self.storage.append(&path, &bytes, ctx)?;
            self.storage.flush(&path, ctx)?;
            let name = path.rsplit('/').next().expect("segment file name").to_owned();
            files.push(SealedFile { name, len: bytes.len() as u64, crc32c: crc32c(&bytes) });
        }
        // The marker is the commit: before it, recovery discards the
        // segments (the WAL has the records); after it, the batch is
        // durable independent of the WAL.
        let marker = SealMarker { seal_seq, last_wal_seq, files };
        let mpath = seal_marker_path(&self.root, seal_seq);
        self.storage.append(&mpath, &marker.encode(), ctx)?;
        self.storage.flush(&mpath, ctx)?;
        for sh in &mut st.shards {
            sh.reset(&self.storage, ctx)?;
        }
        let topics = std::mem::take(&mut st.memtable);
        st.sealed.push(Arc::new(SealedBatch { seal_seq, last_wal_seq, topics }));
        st.next_seal_seq = seal_seq + 1;
        st.epoch += 1;
        bora_obs::counter("ingest.seal").inc();
        sp.end();
        Ok(Some(seal_seq))
    }

    /// Merge every sealed batch into a new container generation — a full
    /// LSM-style rewrite committed with the staged-manifest protocol, so
    /// a power cut at any point leaves either the old or the new
    /// generation, never a mix. Returns the current generation number
    /// (unchanged when there was nothing to compact).
    pub fn compact(&self, ctx: &mut IoCtx) -> BoraResult<u64> {
        let sp = bora_obs::span("ingest.compact");
        let st = &mut *self.inner.lock();
        st.gc_retired(&self.storage, self.pool.as_ref(), ctx);
        if st.sealed.is_empty() {
            sp.end();
            return Ok(st.gen.generation);
        }
        let old = Arc::clone(&st.gen);
        let old_meta = ContainerMeta::decode(&self.storage.read_all(&meta_path(&old.root), ctx)?)?;
        let mut topics: BTreeSet<String> =
            old_meta.topics.iter().map(|t| t.topic.clone()).collect();
        for b in &st.sealed {
            topics.extend(b.topics.keys().cloned());
        }
        let mut topic_files: TopicFiles = BTreeMap::new();
        let mut topic_meta = Vec::with_capacity(topics.len());
        let mut bytes_written = 0u64;
        let (mut start, mut end, mut any) = (Time::MAX, Time::ZERO, false);
        for topic in &topics {
            let paths = TopicPaths::new(&old.root, topic);
            let (mut data, mut entries) = if old_meta.topic(topic).is_some() {
                // `read_logical` transparently de-frames a blocked old
                // generation, so compaction works across a codec change
                // in either direction.
                (
                    read_logical(&self.storage, &paths, ctx)?,
                    decode_entries(&self.storage.read_all(&paths.index, ctx)?)?,
                )
            } else {
                (Vec::new(), Vec::new())
            };
            for b in &st.sealed {
                if let Some(msgs) = b.topics.get(topic) {
                    for m in msgs {
                        entries.push(TopicIndexEntry {
                            time: m.time,
                            offset: data.len() as u64,
                            len: m.data.len() as u32,
                        });
                        data.extend_from_slice(&m.data);
                    }
                }
            }
            if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
                any = true;
                start = start.min(first.time);
                end = end.max(last.time);
            }
            let index = encode_entries(&entries);
            let tindex = TimeIndex::build(&entries, self.cfg.window_ns).encode();
            let tm = old_meta.topic(topic);
            topic_meta.push(TopicMeta {
                topic: topic.clone(),
                datatype: tm.map(|t| t.datatype.clone()).unwrap_or_default(),
                md5sum: tm.map(|t| t.md5sum.clone()).unwrap_or_default(),
                definition: tm.map(|t| t.definition.clone()).unwrap_or_default(),
                message_count: entries.len() as u64,
                bytes: data.len() as u64,
            });
            // Index entries keep logical offsets; only the staged `data`
            // bytes change representation when block framing is on.
            let (data, blocks) = match self.cfg.block {
                Some(params) => {
                    let mut w = BlockWriter::new(params);
                    for e in &entries {
                        let (off, end) = (e.offset as usize, e.end() as usize);
                        w.push(e.time, &data[off..end], ctx);
                    }
                    let (framed, map, _, _) = w.finish(ctx);
                    (framed, Some(map.encode()))
                }
                None => (data, None),
            };
            bytes_written +=
                (data.len() + index.len() + tindex.len() + blocks.as_ref().map_or(0, Vec::len))
                    as u64;
            topic_files.insert(topic.clone(), (data, index, tindex, blocks));
        }
        let (start, end) = if any { (start, end) } else { (Time::ZERO, Time::ZERO) };
        let last_seal_seq = st.sealed.last().expect("non-empty").seal_seq;
        let last_wal_seq =
            st.sealed.iter().map(|b| b.last_wal_seq).fold(old.last_wal_seq, u64::max);
        let meta = ContainerMeta {
            topics: topic_meta,
            start_time: start,
            end_time: end,
            window_ns: self.cfg.window_ns,
            source_bag_len: bytes_written,
            block: self.cfg.block,
        };
        let marker = GenMarker { generation: old.generation + 1, last_seal_seq, last_wal_seq };
        let new_root =
            commit_generation(&self.storage, &self.root, &meta, &marker, &topic_files, ctx)?;
        // Committed: the consumed seg/seal files are redundant now.
        for b in &st.sealed {
            for topic in b.topics.keys() {
                let p = segment_path(&self.root, b.seal_seq, topic);
                if self.storage.exists(&p, ctx) {
                    self.storage.remove_file(&p, ctx)?;
                }
            }
            let p = seal_marker_path(&self.root, b.seal_seq);
            if self.storage.exists(&p, ctx) {
                self.storage.remove_file(&p, ctx)?;
            }
        }
        st.sealed.clear();
        let new_gen = Arc::new(GenHandle {
            generation: marker.generation,
            root: new_root,
            last_seal_seq,
            last_wal_seq,
        });
        let retired = std::mem::replace(&mut st.gen, new_gen);
        st.retired.push(retired);
        drop(old);
        st.gc_retired(&self.storage, self.pool.as_ref(), ctx);
        st.epoch += 1;
        bora_obs::counter("compact.bytes").add(bytes_written);
        sp.end();
        Ok(marker.generation)
    }

    /// Current point-in-time counters.
    pub fn stat(&self) -> IngestStat {
        let st = self.inner.lock();
        IngestStat {
            epoch: st.epoch,
            generation: st.gen.generation,
            last_seal_seq: st.next_seal_seq - 1,
            wal_durable_records: st.shards.iter().map(|s| s.durable_records).sum(),
            wal_buffered_records: st.shards.iter().map(|s| s.buffered_records()).sum(),
            active_topics: st.memtable.len(),
            active_messages: st.memtable.values().map(|v| v.len() as u64).sum(),
            active_bytes: st.memtable.values().flatten().map(|m| m.data.len() as u64).sum(),
            sealed_batches: st.sealed.len(),
            sealed_messages: st.sealed.iter().map(|b| b.message_count()).sum(),
            sealed_bytes: st.sealed.iter().map(|b| b.data_bytes()).sum(),
        }
    }

    /// Current MVCC epoch (bumped by every append, seal, and compaction).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }
}

impl<S: Storage + Clone> IngestStore<S> {
    /// Pin an MVCC snapshot: the current generation, sealed batches, and
    /// a frozen copy of the memtable (payloads are shared, not copied).
    /// The snapshot never observes later appends, seals, or compactions,
    /// and keeps its generation's files alive until dropped.
    pub fn snapshot(&self, ctx: &mut IoCtx) -> BoraResult<Snapshot<S>> {
        let st = &mut *self.inner.lock();
        st.gc_retired(&self.storage, self.pool.as_ref(), ctx);
        bora_obs::gauge("snapshot.epochs").set(st.epoch as i64);
        Ok(Snapshot::new(
            self.storage.clone(),
            Arc::clone(&st.gen),
            st.sealed.clone(),
            st.memtable.clone(),
            st.epoch,
            self.pool.clone(),
        ))
    }
}

/// Per-topic `(data, index, tindex, blocks)` container file bytes, keyed
/// by topic; `blocks` is the encoded block map when the generation is
/// block-framed.
type TopicFiles = BTreeMap<String, (Vec<u8>, Vec<u8>, Vec<u8>, Option<Vec<u8>>)>;

/// Build and atomically commit one generation container under
/// `<root>/gen/`: files first, `.bora` and `.ingest`, MANIFEST last,
/// fsync, one rename.
fn commit_generation<S: Storage>(
    storage: &S,
    root: &str,
    meta: &ContainerMeta,
    marker: &GenMarker,
    topic_files: &TopicFiles,
    ctx: &mut IoCtx,
) -> BoraResult<String> {
    let dst = gen_root(root, marker.generation);
    let stage = staging_path(&dst);
    if storage.exists(&stage, ctx) {
        storage.remove_dir_all(&stage, ctx)?;
    }
    storage.mkdir_all(&stage, ctx)?;
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for (topic, (data, index, tindex, blocks)) in topic_files {
        let paths = TopicPaths::new(&stage, topic);
        storage.mkdir_all(&paths.dir, ctx)?;
        let mut files = vec![(&paths.data, data), (&paths.index, index), (&paths.tindex, tindex)];
        if let Some(map) = blocks {
            files.push((&paths.blocks, map));
        }
        for (path, bytes) in files {
            storage.append(path, bytes, ctx)?;
            let rel = rel_path(&stage, path).expect("staged file under stage root").to_owned();
            entries.push(ManifestEntry {
                path: rel,
                len: bytes.len() as u64,
                crc32c: crc32c(bytes),
            });
        }
    }
    let meta_bytes = meta.encode();
    storage.append(&meta_path(&stage), &meta_bytes, ctx)?;
    entries.push(ManifestEntry {
        path: META_FILE.to_owned(),
        len: meta_bytes.len() as u64,
        crc32c: crc32c(&meta_bytes),
    });
    let marker_bytes = marker.encode();
    storage.append(&format!("{stage}/{GEN_MARKER}"), &marker_bytes, ctx)?;
    entries.push(ManifestEntry {
        path: GEN_MARKER.to_owned(),
        len: marker_bytes.len() as u64,
        crc32c: crc32c(&marker_bytes),
    });
    Manifest::new(entries)?.store(storage, &stage, ctx)?;
    storage.flush(&manifest_path(&stage), ctx)?;
    storage.rename(&stage, &dst, ctx)?;
    Ok(dst)
}

fn load_gen_marker<S: Storage>(
    storage: &S,
    gen_root: &str,
    ctx: &mut IoCtx,
) -> BoraResult<GenMarker> {
    Manifest::load(storage, gen_root, ctx)?
        .ok_or_else(|| BoraError::Corrupt(format!("{gen_root}: no MANIFEST")))?;
    GenMarker::decode(&storage.read_all(&format!("{gen_root}/{GEN_MARKER}"), ctx)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::MemStorage;

    fn store<'a>(fs: &'a MemStorage, ctx: &mut IoCtx) -> IngestStore<&'a MemStorage> {
        IngestStore::create(
            fs,
            "/live",
            IngestConfig { wal_shards: 2, group_commit: 2, window_ns: 1_000, block: None },
            ctx,
        )
        .unwrap()
    }

    #[test]
    fn create_bootstraps_generation_zero() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = store(&fs, &mut ctx);
        let s = st.stat();
        assert_eq!(s.generation, 0);
        assert_eq!(s.active_messages, 0);
        // The empty C0 is a committed container.
        assert!(fs.exists("/live/gen/C00000000/MANIFEST", &mut ctx));
        assert!(IngestStore::is_ingest_root(&&fs, "/live", &mut ctx));
        assert!(!IngestStore::is_ingest_root(&&fs, "/elsewhere", &mut ctx));
    }

    #[test]
    fn create_twice_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let _st = store(&fs, &mut ctx);
        assert!(IngestStore::create(&fs, "/live", IngestConfig::default(), &mut ctx).is_err());
    }

    #[test]
    fn append_seal_compact_round_trip() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = store(&fs, &mut ctx);
        for i in 0..10u64 {
            st.append("/imu", Time::from_nanos(i * 100), &[i as u8; 16], &mut ctx).unwrap();
            st.append("/gps", Time::from_nanos(i * 100 + 50), &[i as u8; 8], &mut ctx).unwrap();
        }
        assert_eq!(st.stat().active_messages, 20);
        let seal = st.seal(&mut ctx).unwrap();
        assert_eq!(seal, Some(1));
        assert_eq!(st.stat().active_messages, 0);
        assert_eq!(st.stat().sealed_messages, 20);
        let g = st.compact(&mut ctx).unwrap();
        assert_eq!(g, 1);
        let s = st.stat();
        assert_eq!(s.sealed_messages, 0);
        // Compacted container is a clean, fully verifiable bag.
        let report = bora::fsck::check(&fs, "/live/gen/C00000001", &mut ctx).unwrap();
        assert!(report.is_clean(), "{report:?}");
        // Old generation directory is gone (no snapshot pinned it).
        assert!(!fs.exists("/live/gen/C00000000", &mut ctx));
    }

    #[test]
    fn out_of_order_append_rejected() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = store(&fs, &mut ctx);
        st.append("/imu", Time::from_nanos(500), b"a", &mut ctx).unwrap();
        assert!(st.append("/imu", Time::from_nanos(400), b"b", &mut ctx).is_err());
        // Equal timestamps are fine; other topics are independent.
        st.append("/imu", Time::from_nanos(500), b"c", &mut ctx).unwrap();
        st.append("/gps", Time::from_nanos(100), b"d", &mut ctx).unwrap();
    }

    #[test]
    fn reopen_replays_durable_wal() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        {
            let st = store(&fs, &mut ctx);
            for i in 0..5u64 {
                st.append("/imu", Time::from_nanos(i), &[1, 2, 3], &mut ctx).unwrap();
            }
            st.flush_wal(&mut ctx).unwrap();
        }
        let st = IngestStore::open(&fs, "/live", &mut ctx).unwrap();
        let s = st.stat();
        assert_eq!(s.active_messages, 5);
        assert_eq!(s.wal_durable_records, 5);
        // Appends continue with fresh sequence numbers, still monotonic.
        st.append("/imu", Time::from_nanos(10), b"next", &mut ctx).unwrap();
        assert!(st.append("/imu", Time::from_nanos(3), b"stale", &mut ctx).is_err());
    }

    #[test]
    fn reopen_loads_sealed_batches() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        {
            let st = store(&fs, &mut ctx);
            st.append("/imu", Time::from_nanos(1), b"one", &mut ctx).unwrap();
            st.seal(&mut ctx).unwrap();
            st.append("/imu", Time::from_nanos(2), b"two", &mut ctx).unwrap();
            st.flush_wal(&mut ctx).unwrap();
        }
        let st = IngestStore::open(&fs, "/live", &mut ctx).unwrap();
        let s = st.stat();
        assert_eq!(s.sealed_batches, 1);
        assert_eq!(s.sealed_messages, 1);
        assert_eq!(s.active_messages, 1, "unsealed WAL record replayed");
        assert_eq!(s.last_seal_seq, 1);
    }

    #[test]
    fn seal_then_compact_is_idempotent_under_reopen() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        {
            let st = store(&fs, &mut ctx);
            st.append("/imu", Time::from_nanos(1), b"one", &mut ctx).unwrap();
            st.seal(&mut ctx).unwrap();
            st.compact(&mut ctx).unwrap();
        }
        let st = IngestStore::open(&fs, "/live", &mut ctx).unwrap();
        let s = st.stat();
        assert_eq!(s.generation, 1);
        assert_eq!(s.sealed_batches, 0);
        assert_eq!(s.active_messages, 0);
        // No duplicate replay: the compacted container holds exactly one.
        let snap = st.snapshot(&mut ctx).unwrap();
        let msgs = snap.read_topics(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].data, b"one");
    }

    #[test]
    fn empty_seal_is_a_no_op() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let st = store(&fs, &mut ctx);
        assert_eq!(st.seal(&mut ctx).unwrap(), None);
        assert_eq!(st.compact(&mut ctx).unwrap(), 0);
    }

    #[test]
    fn config_round_trip() {
        let cfg = IngestConfig { wal_shards: 7, group_commit: 33, window_ns: 12345, block: None };
        assert_eq!(IngestConfig::decode(&cfg.encode()).unwrap(), cfg);
        let mut bad = cfg.encode();
        bad[5] ^= 1;
        assert!(IngestConfig::decode(&bad).is_err());
    }

    #[test]
    fn config_block_trailer_round_trips_and_stays_optional() {
        let plain = IngestConfig::default();
        let plain_bytes = plain.encode();
        let blocked = IngestConfig { block: Some(BlockParams::default()), ..plain };
        let blocked_bytes = blocked.encode();
        assert_eq!(IngestConfig::decode(&plain_bytes).unwrap(), plain);
        assert_eq!(IngestConfig::decode(&blocked_bytes).unwrap(), blocked);
        // The trailer is strictly appended: a pre-block reader's length
        // assumptions still hold for plain configs.
        assert_eq!(blocked_bytes.len(), plain_bytes.len() + 5);
    }

    #[test]
    fn blocked_compaction_reads_back_identical() {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let cfg = IngestConfig {
            wal_shards: 2,
            group_commit: 2,
            window_ns: 1_000,
            block: Some(BlockParams { codec: BlockCodec::Lzss, block_size: 64 }),
        };
        let st = IngestStore::create(&fs, "/live", cfg, &mut ctx).unwrap();
        let mut expect = Vec::new();
        for i in 0..40u64 {
            // Compressible payloads spanning several 64-byte blocks.
            let payload = vec![(i % 3) as u8; 48];
            st.append("/imu", Time::from_nanos(i * 10), &payload, &mut ctx).unwrap();
            expect.push(payload);
        }
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        // Second round exercises re-framing an already-blocked old gen.
        for i in 40..50u64 {
            let payload = vec![7u8; 48];
            st.append("/imu", Time::from_nanos(i * 10), &payload, &mut ctx).unwrap();
            expect.push(payload);
        }
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        let snap = st.snapshot(&mut ctx).unwrap();
        let msgs = snap.read_topics(&["/imu"], &mut ctx).unwrap();
        assert_eq!(msgs.len(), 50);
        for (m, e) in msgs.iter().zip(&expect) {
            assert_eq!(&m.data, e);
        }
        // The committed generation verifies clean, blocks file included.
        let report = bora::fsck::check(&fs, "/live/gen/C00000002", &mut ctx).unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn gen_marker_round_trip() {
        let m = GenMarker { generation: 4, last_seal_seq: 9, last_wal_seq: 512 };
        assert_eq!(GenMarker::decode(&m.encode()).unwrap(), m);
    }
}
