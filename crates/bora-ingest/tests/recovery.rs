//! Crash consistency of the live write path: a deterministic power-cut
//! sweep over every mutating storage op of an append → seal → compact →
//! append workload.
//!
//! The invariant: **recovery always succeeds, never invents, duplicates,
//! reorders, or corrupts a message, and loses at most appends whose
//! group commit had not completed** — each topic's recovered messages
//! are an exact prefix of the appended sequence. Re-appending the lost
//! suffix and finishing the workload then yields reads byte-identical to
//! an uncrashed run, proving the replay path converges.

use std::collections::BTreeMap;

use bora_ingest::{IngestConfig, IngestStore};
use ros_msgs::Time;
use rosbag::MessageRecord;
use simfs::{FaultyStorage, IoCtx, MemStorage, PowerCutSchedule, Storage};

const ROOT: &str = "/live";
const TOPICS: [&str; 2] = ["/imu", "/cam"];

fn cfg() -> IngestConfig {
    // group_commit = 1: every acked append is durable, so the durability
    // frontier is exact and the sweep's prefix assertion is strict.
    IngestConfig { wal_shards: 2, group_commit: 1, window_ns: 1_000, block: None }
}

/// The full workload as (topic, time, payload) in append order.
fn script() -> Vec<(&'static str, Time, Vec<u8>)> {
    let mut out = Vec::new();
    for i in 0..8u64 {
        out.push(("/imu", Time::from_nanos(i * 10), vec![i as u8; 4]));
        if i % 2 == 0 {
            out.push(("/cam", Time::from_nanos(i * 10 + 5), vec![0xC0 | i as u8; 9]));
        }
    }
    out
}

/// Fresh disk with an already-created (empty) ingest root, so the sweep
/// exercises append/seal/compact rather than bootstrap.
fn fresh_disk() -> MemStorage {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    IngestStore::create(&fs, ROOT, cfg(), &mut ctx).unwrap();
    fs
}

/// Run the whole workload: appends interleaved with two seal+compact
/// cycles, ending with unsealed appends in the WAL + memtable.
fn run_workload<S: Storage>(fs: S, ctx: &mut IoCtx) -> bora::BoraResult<()> {
    let st = IngestStore::open(fs, ROOT, ctx)?;
    let script = script();
    for (i, (topic, time, data)) in script.iter().enumerate() {
        st.append(topic, *time, data, ctx)?;
        if i == 4 || i == 8 {
            st.seal(ctx)?;
            st.compact(ctx)?;
        }
    }
    st.flush_wal(ctx)
}

fn read_all<S: Storage + Clone>(
    st: &IngestStore<S>,
    ctx: &mut IoCtx,
) -> Vec<(String, u64, Vec<u8>)> {
    let snap = st.snapshot(ctx).unwrap();
    let msgs: Vec<MessageRecord> = snap.read_topics(&TOPICS, ctx).unwrap();
    msgs.into_iter().map(|m| (m.topic, m.time.as_nanos(), m.data)).collect()
}

#[test]
fn every_crash_point_recovers_and_converges() {
    // Probe run: size the sweep and fix the reference read.
    let probe = FaultyStorage::new(fresh_disk());
    let mut ctx = IoCtx::new();
    run_workload(&probe, &mut ctx).unwrap();
    let total = probe.mutations();
    assert!(total > 20, "sweep needs a non-trivial workload, got {total} mutations");
    let reference = {
        let st = IngestStore::open(probe.inner(), ROOT, &mut ctx).unwrap();
        read_all(&st, &mut ctx)
    };
    assert_eq!(reference.len(), script().len());

    let mut mid_seal_or_compact = 0u64;
    for cut in PowerCutSchedule::sweep(total) {
        let faulty = FaultyStorage::new(fresh_disk());
        let mut ctx = IoCtx::new();
        faulty.arm_power_cut(cut);
        run_workload(&faulty, &mut ctx).expect_err("armed cut must abort the workload");

        // "Reboot": recovery must always succeed on the surviving medium.
        let disk = faulty.inner();
        let st = IngestStore::open(disk, ROOT, &mut ctx)
            .unwrap_or_else(|e| panic!("recovery failed at mutation {}: {e}", cut.after_mutations));

        // The recovered generation is a committed, fully verifiable
        // container (the staged-manifest protocol held).
        let snap = st.snapshot(&mut ctx).unwrap();
        let report = bora::fsck::check(disk, snap.container_root(), &mut ctx).unwrap();
        assert!(
            report.is_clean(),
            "generation damaged after cut at mutation {}: {report:?}",
            cut.after_mutations
        );
        drop(snap);

        // Per-topic prefix property: nothing invented, duplicated,
        // reordered, or corrupted.
        let recovered = read_all(&st, &mut ctx);
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (topic, time, data) in &recovered {
            let idx = seen.entry(topic.clone()).or_insert(0);
            let expected = script()
                .into_iter()
                .filter(|(t, _, _)| *t == topic.as_str())
                .nth(*idx)
                .unwrap_or_else(|| {
                    panic!("extra message on {topic} after cut at {}", cut.after_mutations)
                });
            assert_eq!((*time, data), (expected.1.as_nanos(), &expected.2));
            *idx += 1;
        }
        if st.stat().generation > 0 {
            mid_seal_or_compact += 1;
        }

        // Re-append the lost suffix (what a robot's resend would do),
        // finish with a seal + compact, and the store converges to the
        // uncrashed result.
        for (topic, time, data) in script() {
            let taken = seen.get(topic).copied().unwrap_or(0);
            if taken > 0 {
                *seen.get_mut(topic).unwrap() -= 1;
                continue;
            }
            st.append(topic, time, &data, &mut ctx).unwrap();
        }
        st.seal(&mut ctx).unwrap();
        st.compact(&mut ctx).unwrap();
        assert_eq!(
            read_all(&st, &mut ctx),
            reference,
            "converged state must be byte-identical (cut at mutation {})",
            cut.after_mutations
        );
    }
    assert!(mid_seal_or_compact > 0, "the sweep must hit post-compaction crash points");
}

#[test]
fn cut_between_seal_and_compact_preserves_sealed_batch() {
    // Target the acceptance scenario directly: the seal commits, the
    // power dies before (or during) compaction, and recovery serves the
    // sealed data byte-identically.
    let mut ctx = IoCtx::new();

    // Count mutations up to the end of the first seal.
    let probe = FaultyStorage::new(fresh_disk());
    {
        let st = IngestStore::open(&probe, ROOT, &mut ctx).unwrap();
        for (topic, time, data) in script().into_iter().take(5) {
            st.append(topic, time, &data, &mut ctx).unwrap();
        }
        st.seal(&mut ctx).unwrap();
    }
    let after_seal = probe.mutations();
    let reference = {
        let st = IngestStore::open(probe.inner(), ROOT, &mut ctx).unwrap();
        read_all(&st, &mut ctx)
    };
    assert_eq!(reference.len(), 5);

    // Re-run with compaction, cutting at every point from "seal just
    // committed" through mid-compaction.
    for extra in 0..6u64 {
        let faulty = FaultyStorage::new(fresh_disk());
        faulty.arm_power_cut(simfs::PowerCut {
            after_mutations: after_seal + extra,
            torn_bytes: Some(1),
        });
        let r = (|| -> bora::BoraResult<()> {
            let st = IngestStore::open(&faulty, ROOT, &mut ctx)?;
            for (topic, time, data) in script().into_iter().take(5) {
                st.append(topic, time, &data, &mut ctx)?;
            }
            st.seal(&mut ctx)?;
            st.compact(&mut ctx)?;
            Ok(())
        })();
        assert!(r.is_err(), "cut must fire during compaction (extra {extra})");

        let st = IngestStore::open(faulty.inner(), ROOT, &mut ctx).unwrap();
        assert_eq!(
            read_all(&st, &mut ctx),
            reference,
            "sealed batch lost or altered (cut {extra} mutations after the seal)"
        );
        // And compaction still completes from the recovered state.
        st.compact(&mut ctx).unwrap();
        assert_eq!(read_all(&st, &mut ctx), reference);
    }
}
