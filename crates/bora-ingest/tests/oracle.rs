//! Property tests: arbitrary interleavings of append / seal / compact /
//! snapshot always read back identical to a trivially-correct in-memory
//! oracle, and a snapshot never observes anything appended after its
//! epoch.
//!
//! The oracle materializes the exact merge contract: one lane per
//! requested topic (per-lane append order, which the store keeps
//! chronological), merged by `(time, lane)` — so any divergence in lane
//! construction, WAL replay, seal ordering, or compaction offsets shows
//! up as a mismatch.

use bora_ingest::{IngestConfig, IngestStore};
use proptest::prelude::*;
use ros_msgs::Time;
use simfs::{IoCtx, MemStorage};

const TOPICS: [&str; 3] = ["/imu", "/cam", "/tf"];

#[derive(Debug, Clone)]
enum Op {
    /// (topic index, time delta, payload byte, payload length)
    Append(usize, u64, u8, usize),
    Seal,
    Compact,
    /// Reopen the store from disk (clean restart; WAL replays).
    Reopen,
    /// Compare a full read against the oracle.
    Check,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..TOPICS.len(), 0u64..40, any::<u8>(), 0usize..24)
            .prop_map(|(t, dt, b, n)| Op::Append(t, dt, b, n)),
        Just(Op::Seal),
        Just(Op::Compact),
        Just(Op::Reopen),
        Just(Op::Check),
    ]
}

/// One merged message as `(lane, time_ns, payload)`.
type Msg = (usize, u64, Vec<u8>);

/// Materialize the `(time, lane)` merge over per-topic oracle lanes.
fn oracle_merge(lanes: &[Vec<(u64, Vec<u8>)>]) -> Vec<Msg> {
    let mut all: Vec<(u64, usize, usize, Vec<u8>)> = Vec::new();
    for (lane, msgs) in lanes.iter().enumerate() {
        for (pos, (t, d)) in msgs.iter().enumerate() {
            all.push((*t, lane, pos, d.clone()));
        }
    }
    all.sort_by_key(|a| (a.0, a.1, a.2));
    all.into_iter().map(|(t, lane, _, d)| (lane, t, d)).collect()
}

fn read_as_tuples(st: &IngestStore<&MemStorage>, ctx: &mut IoCtx) -> Vec<Msg> {
    st.snapshot(ctx)
        .unwrap()
        .read_topics(&TOPICS, ctx)
        .unwrap()
        .into_iter()
        .map(|m| {
            let lane = TOPICS.iter().position(|t| *t == m.topic).unwrap();
            (lane, m.time.as_nanos(), m.data)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_ops_match_materialized_oracle(
        ops in prop::collection::vec(op_strategy(), 1..48),
        pin_at in 0usize..48,
    ) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let cfg = IngestConfig { wal_shards: 2, group_commit: 3, window_ns: 500, block: None };
        let mut st = IngestStore::create(&fs, "/live", cfg, &mut ctx).unwrap();

        // One oracle lane per topic, in append order.
        let mut lanes: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); TOPICS.len()];
        let mut clocks = [0u64; TOPICS.len()];
        let mut pinned: Option<(u64, Vec<Msg>)> = None;
        let mut reopened_since_pin = false;

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Append(t, dt, byte, n) => {
                    clocks[*t] += dt;
                    let data = vec![*byte; *n];
                    st.append(TOPICS[*t], Time::from_nanos(clocks[*t]), &data, &mut ctx)
                        .unwrap();
                    lanes[*t].push((clocks[*t], data));
                }
                Op::Seal => { st.seal(&mut ctx).unwrap(); }
                Op::Compact => { st.compact(&mut ctx).unwrap(); }
                Op::Reopen => {
                    // A clean restart must lose nothing: the WAL is
                    // synced on drop-equivalent via explicit flush.
                    st.flush_wal(&mut ctx).unwrap();
                    drop(st);
                    st = IngestStore::open(&fs, "/live", &mut ctx).unwrap();
                    reopened_since_pin = true;
                }
                Op::Check => {
                    prop_assert_eq!(read_as_tuples(&st, &mut ctx), oracle_merge(&lanes));
                }
            }
            if i == pin_at {
                // Pin a snapshot mid-run with its oracle expectation.
                let snap_epoch = st.epoch();
                prop_assert_eq!(st.snapshot(&mut ctx).unwrap().epoch(), snap_epoch);
                pinned = Some((snap_epoch, oracle_merge(&lanes)));
                reopened_since_pin = false;
            }
        }

        // Final read always matches the oracle.
        prop_assert_eq!(read_as_tuples(&st, &mut ctx), oracle_merge(&lanes));

        // Epoch isolation: re-materializing the pinned expectation via a
        // store whose state has since advanced must NOT change it — take
        // a fresh snapshot and confirm the pinned one was a true freeze.
        if let Some((epoch, expected)) = pinned {
            // The epoch counter restarts at 1 on reopen; it is only
            // monotonic within one store lifetime.
            prop_assert!(reopened_since_pin || st.epoch() >= epoch);
            // The pinned expectation is a prefix (per lane) of the final
            // oracle: snapshots never travel backwards.
            let fin = oracle_merge(&lanes);
            prop_assert!(expected.len() <= fin.len());
        }
    }

    /// Direct epoch-isolation property: a snapshot taken at any point
    /// returns exactly the messages appended before it, no matter how
    /// many appends/seals/compactions follow.
    #[test]
    fn snapshots_never_observe_later_appends(
        before in prop::collection::vec((0usize..TOPICS.len(), 1u64..30, any::<u8>()), 0..20),
        after in prop::collection::vec((0usize..TOPICS.len(), 1u64..30, any::<u8>()), 1..20),
        seal_after in any::<bool>(),
    ) {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        let cfg = IngestConfig { wal_shards: 2, group_commit: 2, window_ns: 500, block: None };
        let st = IngestStore::create(&fs, "/live", cfg, &mut ctx).unwrap();

        let mut lanes: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); TOPICS.len()];
        let mut clocks = [0u64; TOPICS.len()];
        for (t, dt, b) in &before {
            clocks[*t] += dt;
            st.append(TOPICS[*t], Time::from_nanos(clocks[*t]), &[*b], &mut ctx).unwrap();
            lanes[*t].push((clocks[*t], vec![*b]));
        }
        let snap = st.snapshot(&mut ctx).unwrap();
        let expected = oracle_merge(&lanes);

        for (t, dt, b) in &after {
            clocks[*t] += dt;
            st.append(TOPICS[*t], Time::from_nanos(clocks[*t]), &[*b], &mut ctx).unwrap();
        }
        if seal_after {
            st.seal(&mut ctx).unwrap();
            st.compact(&mut ctx).unwrap();
        }

        let got: Vec<(usize, u64, Vec<u8>)> = snap
            .read_topics(&TOPICS, &mut ctx)
            .unwrap()
            .into_iter()
            .map(|m| {
                let lane = TOPICS.iter().position(|t| *t == m.topic).unwrap();
                (lane, m.time.as_nanos(), m.data)
            })
            .collect();
        prop_assert_eq!(got, expected);
    }
}
