//! Backend equivalence properties: every `Storage` implementation must
//! expose identical *data* semantics — cost models and container layouts
//! may differ, bytes may not.

use proptest::prelude::*;

use simfs::{
    ClusterConfig, ClusterStorage, DeviceModel, FsError, IoCtx, MemStorage, Storage, TimedStorage,
};

/// A small op language over one file.
#[derive(Debug, Clone)]
enum Op {
    Append(Vec<u8>),
    WriteAt(u16, Vec<u8>),
    ReadAt(u16, u16),
    Len,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Op::Append),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 1..32))
            .prop_map(|(o, d)| Op::WriteAt(o, d)),
        (any::<u16>(), any::<u16>()).prop_map(|(o, l)| Op::ReadAt(o, l)),
        Just(Op::Len),
    ]
}

/// Outcome of one op, normalized for comparison across backends.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Offset(u64),
    Bytes(Vec<u8>),
    Len(u64),
    Err(&'static str),
}

fn classify(e: &FsError) -> &'static str {
    match e {
        FsError::NotFound(_) => "not-found",
        FsError::OutOfBounds { .. } => "oob",
        FsError::AlreadyExists(_) => "exists",
        _ => "other",
    }
}

fn run_ops<S: Storage>(fs: &S, ops: &[Op]) -> Vec<Outcome> {
    let mut ctx = IoCtx::new();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let o = match op {
            Op::Append(data) => fs
                .append("/f", data, &mut ctx)
                .map(Outcome::Offset)
                .unwrap_or_else(|e| Outcome::Err(classify(&e))),
            Op::WriteAt(off, data) => fs
                .write_at("/f", *off as u64, data, &mut ctx)
                .map(|_| Outcome::Offset(0))
                .unwrap_or_else(|e| Outcome::Err(classify(&e))),
            Op::ReadAt(off, len) => fs
                .read_at("/f", *off as u64, *len as usize, &mut ctx)
                .map(Outcome::Bytes)
                .unwrap_or_else(|e| Outcome::Err(classify(&e))),
            Op::Len => fs
                .len("/f", &mut ctx)
                .map(Outcome::Len)
                .unwrap_or_else(|e| Outcome::Err(classify(&e))),
        };
        out.push(o);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MemStorage, TimedStorage, and both cluster configurations agree on
    /// every observable result of arbitrary op sequences.
    #[test]
    fn all_backends_agree(ops in prop::collection::vec(arb_op(), 1..30)) {
        let reference = run_ops(&MemStorage::new(), &ops);
        let timed = run_ops(
            &TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()),
            &ops,
        );
        prop_assert_eq!(&reference, &timed, "TimedStorage diverged");
        let pvfs = run_ops(&ClusterStorage::new(ClusterConfig::pvfs4()), &ops);
        prop_assert_eq!(&reference, &pvfs, "PVFS cluster diverged");
        let lustre = run_ops(&ClusterStorage::new(ClusterConfig::tianhe_lustre()), &ops);
        prop_assert_eq!(&reference, &lustre, "Lustre cluster diverged");
    }

    /// The local-disk backend agrees too (fewer cases: it's real I/O).
    #[test]
    fn local_disk_agrees(ops in prop::collection::vec(arb_op(), 1..12)) {
        let reference = run_ops(&MemStorage::new(), &ops);
        let dir = std::env::temp_dir().join(format!(
            "simfs-prop-{}-{}",
            std::process::id(),
            rand_suffix(&ops)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let local = simfs::LocalStorage::new(&dir).unwrap();
        let got = run_ops(&local, &ops);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(reference, got, "LocalStorage diverged");
    }

    /// Virtual time is monotone and deterministic for any op sequence.
    #[test]
    fn virtual_clock_deterministic(ops in prop::collection::vec(arb_op(), 1..30)) {
        let run = || {
            let fs = TimedStorage::new(MemStorage::new(), DeviceModel::hdd());
            let mut ctx = IoCtx::new();
            let mut last = 0;
            for op in &ops {
                match op {
                    Op::Append(d) => { let _ = fs.append("/f", d, &mut ctx); }
                    Op::WriteAt(o, d) => { let _ = fs.write_at("/f", *o as u64, d, &mut ctx); }
                    Op::ReadAt(o, l) => { let _ = fs.read_at("/f", *o as u64, *l as usize, &mut ctx); }
                    Op::Len => { let _ = fs.len("/f", &mut ctx); }
                }
                prop_assert!(ctx.elapsed_ns() >= last, "clock went backwards");
                last = ctx.elapsed_ns();
            }
            Ok(ctx.elapsed_ns())
        };
        prop_assert_eq!(run()?, run()?);
    }
}

/// Deterministic per-case suffix so parallel proptest cases don't share a
/// temp directory.
fn rand_suffix(ops: &[Op]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for op in ops {
        let tag = match op {
            Op::Append(d) => d.len() as u64,
            Op::WriteAt(o, d) => (*o as u64) << 8 ^ d.len() as u64,
            Op::ReadAt(o, l) => (*o as u64) << 16 ^ *l as u64,
            Op::Len => 7,
        };
        h ^= tag;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
