//! [`FaultyStorage`]: deterministic fault injection for robustness tests.
//!
//! Wraps any backend and fails selected operations — by countdown (the
//! N-th operation fails), by path substring, or by flipping bits in read
//! results. Middleware above (bag reader/writer, BORA organizer, WALs)
//! must turn these into typed errors, never panics or silent corruption;
//! the failure-injection tests in each crate rely on this wrapper.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::clock::IoCtx;
use crate::error::{FsError, FsResult};
use crate::storage::{DirEntry, Metadata, Storage};

/// Which operations a fault plan applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Reads,
    Writes,
    Metadata,
    All,
}

/// A single injection rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Only apply to paths containing this substring (None = all paths).
    pub path_contains: Option<String>,
    /// Fail after this many matching operations have succeeded.
    pub after_ops: u64,
    /// If set, instead of failing, XOR this byte into read results
    /// (silent corruption — for checksum tests).
    pub corrupt_with: Option<u8>,
}

struct RuleState {
    rule: FaultRule,
    seen: AtomicU64,
}

/// Fault-injecting wrapper.
pub struct FaultyStorage<S> {
    inner: S,
    rules: Mutex<Vec<RuleState>>,
}

impl<S: Storage> FaultyStorage<S> {
    pub fn new(inner: S) -> Self {
        FaultyStorage { inner, rules: Mutex::new(Vec::new()) }
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Install a rule; rules are evaluated in installation order.
    pub fn inject(&self, rule: FaultRule) {
        self.rules.lock().push(RuleState { rule, seen: AtomicU64::new(0) });
    }

    /// Remove all rules.
    pub fn clear_faults(&self) {
        self.rules.lock().clear();
    }

    /// Check rules for an op; returns Err to fail it, or the corruption
    /// byte to apply.
    fn consult(&self, kind: FaultKind, path: &str) -> Result<Option<u8>, FsError> {
        let rules = self.rules.lock();
        for rs in rules.iter() {
            let kind_match = rs.rule.kind == FaultKind::All || rs.rule.kind == kind;
            let path_match =
                rs.rule.path_contains.as_deref().map(|s| path.contains(s)).unwrap_or(true);
            if kind_match && path_match {
                let n = rs.seen.fetch_add(1, Ordering::Relaxed);
                if n >= rs.rule.after_ops {
                    if let Some(b) = rs.rule.corrupt_with {
                        return Ok(Some(b));
                    }
                    return Err(FsError::Io(format!("injected fault on {path}")));
                }
            }
        }
        Ok(None)
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.create(path, ctx)
    }

    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        self.consult(FaultKind::Writes, path)?;
        self.inner.append(path, data, ctx)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Writes, path)?;
        self.inner.write_at(path, offset, data, ctx)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let corrupt = self.consult(FaultKind::Reads, path)?;
        let mut data = self.inner.read_at(path, offset, len, ctx)?;
        if let (Some(b), Some(first)) = (corrupt, data.first_mut()) {
            *first ^= b;
        }
        Ok(data)
    }

    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.len(path, ctx)
    }

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.inner.exists(path, ctx)
    }

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.stat(path, ctx)
    }

    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.mkdir_all(path, ctx)
    }

    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.read_dir(path, ctx)
    }

    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.remove_file(path, ctx)
    }

    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Metadata, path)?;
        self.inner.remove_dir_all(path, ctx)
    }

    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Metadata, from)?;
        self.inner.rename(from, to, ctx)
    }

    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.consult(FaultKind::Writes, path)?;
        self.inner.flush(path, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStorage;

    #[test]
    fn fails_after_countdown() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule {
            kind: FaultKind::Writes,
            path_contains: None,
            after_ops: 2,
            corrupt_with: None,
        });
        assert!(fs.append("/f", b"1", &mut ctx).is_ok());
        assert!(fs.append("/f", b"2", &mut ctx).is_ok());
        assert!(matches!(fs.append("/f", b"3", &mut ctx), Err(FsError::Io(_))));
    }

    #[test]
    fn path_filter_limits_blast_radius() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule {
            kind: FaultKind::Writes,
            path_contains: Some("wal".into()),
            after_ops: 0,
            corrupt_with: None,
        });
        assert!(fs.append("/data", b"ok", &mut ctx).is_ok());
        assert!(fs.append("/db/wal", b"no", &mut ctx).is_err());
    }

    #[test]
    fn read_corruption_flips_first_byte() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"hello", &mut ctx).unwrap();
        fs.inject(FaultRule {
            kind: FaultKind::Reads,
            path_contains: None,
            after_ops: 0,
            corrupt_with: Some(0xFF),
        });
        let got = fs.read_at("/f", 0, 5, &mut ctx).unwrap();
        assert_ne!(got, b"hello");
        assert_eq!(&got[1..], b"ello");
        fs.clear_faults();
        assert_eq!(fs.read_at("/f", 0, 5, &mut ctx).unwrap(), b"hello");
    }

    #[test]
    fn metadata_faults_hit_mkdir() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule {
            kind: FaultKind::Metadata,
            path_contains: None,
            after_ops: 0,
            corrupt_with: None,
        });
        assert!(fs.mkdir_all("/d", &mut ctx).is_err());
    }
}
