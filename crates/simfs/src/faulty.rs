//! [`FaultyStorage`]: deterministic fault injection for robustness tests.
//!
//! Wraps any backend and fails selected operations — by countdown (the
//! N-th operation fails), by path substring, or by flipping bits in read
//! or write payloads. Middleware above (bag reader/writer, BORA organizer,
//! WALs) must turn these into typed errors, never panics or silent
//! corruption; the failure-injection tests in each crate rely on this
//! wrapper.
//!
//! Two fault families are supported:
//!
//! * **Rules** ([`FaultRule`]) — per-operation faults: fail or corrupt the
//!   N-th matching read/write/metadata op, optionally bounded to a number
//!   of failures so the fault is *transient* (retry succeeds).
//! * **Power cuts** ([`PowerCut`]) — whole-device crashes: after a given
//!   number of *mutating* operations the device goes dark. The mutating
//!   op at the cut boundary may be *torn* (only a prefix of its payload
//!   reaches the medium) and every operation afterwards fails, modeling a
//!   process crash / power loss. [`PowerCutSchedule`] enumerates every
//!   write boundary of a workload so crash-consistency tests can sweep
//!   them all deterministically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::clock::IoCtx;
use crate::error::{FsError, FsResult};
use crate::storage::{DirEntry, Metadata, Storage};

/// Which operations a fault plan applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Reads,
    Writes,
    Metadata,
    All,
}

/// A single injection rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Only apply to paths containing this substring (None = all paths).
    pub path_contains: Option<String>,
    /// Fail after this many matching operations have succeeded.
    pub after_ops: u64,
    /// If set, instead of failing, XOR this byte into the first byte of
    /// read results *or* write payloads (silent corruption — for
    /// checksum tests).
    pub corrupt_with: Option<u8>,
    /// Fail (or corrupt) at most this many matching operations, then let
    /// traffic through again. `None` = the fault is permanent. A bounded
    /// count models *transient* faults for retry tests.
    pub max_failures: Option<u64>,
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule {
            kind: FaultKind::All,
            path_contains: None,
            after_ops: 0,
            corrupt_with: None,
            max_failures: None,
        }
    }
}

struct RuleState {
    rule: FaultRule,
    seen: AtomicU64,
}

/// A whole-device crash point: after `after_mutations` mutating
/// operations complete, the device dies. If the mutating op at the
/// boundary carries a payload (`append`/`write_at`) and `torn_bytes` is
/// set, that prefix of the payload is persisted before the failure —
/// a *torn write*. Every subsequent operation (reads included) fails
/// until the wrapper is rebuilt, modeling a reboot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerCut {
    /// Mutating operations allowed to complete before the cut.
    pub after_mutations: u64,
    /// For a payload-carrying op at the boundary: persist only this many
    /// bytes of the payload. `None` = the boundary op doesn't reach the
    /// medium at all.
    pub torn_bytes: Option<usize>,
}

/// Deterministic sweep of every crash point of a workload with
/// `total_mutations` mutating ops: for each boundary `k` it yields a
/// clean cut (op `k` lost entirely) and a torn cut (op `k` persists a
/// 1-byte prefix when it carries a payload).
#[derive(Debug, Clone)]
pub struct PowerCutSchedule {
    total_mutations: u64,
    next: u64,
    torn: bool,
}

impl PowerCutSchedule {
    pub fn sweep(total_mutations: u64) -> Self {
        PowerCutSchedule { total_mutations, next: 0, torn: false }
    }

    /// Number of crash points the sweep will yield.
    pub fn len(&self) -> u64 {
        self.total_mutations * 2
    }

    pub fn is_empty(&self) -> bool {
        self.total_mutations == 0
    }
}

impl Iterator for PowerCutSchedule {
    type Item = PowerCut;

    fn next(&mut self) -> Option<PowerCut> {
        if self.next >= self.total_mutations {
            return None;
        }
        let cut = PowerCut {
            after_mutations: self.next,
            torn_bytes: if self.torn { Some(1) } else { None },
        };
        if self.torn {
            self.torn = false;
            self.next += 1;
        } else {
            self.torn = true;
        }
        Some(cut)
    }
}

enum Gate {
    Pass,
    /// Die at this op; payload ops persist `torn` bytes first.
    Cut(Option<usize>),
}

/// Fault-injecting wrapper.
pub struct FaultyStorage<S> {
    inner: S,
    rules: Mutex<Vec<RuleState>>,
    cut: Mutex<Option<PowerCut>>,
    mutations: AtomicU64,
    dead: AtomicBool,
}

impl<S: Storage> FaultyStorage<S> {
    pub fn new(inner: S) -> Self {
        FaultyStorage {
            inner,
            rules: Mutex::new(Vec::new()),
            cut: Mutex::new(None),
            mutations: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Install a rule; rules are evaluated in installation order.
    pub fn inject(&self, rule: FaultRule) {
        self.rules.lock().push(RuleState { rule, seen: AtomicU64::new(0) });
    }

    /// Remove all rules.
    pub fn clear_faults(&self) {
        self.rules.lock().clear();
    }

    /// Arm a power cut. The mutating-op counter restarts from zero so the
    /// cut's `after_mutations` is relative to the workload under test.
    pub fn arm_power_cut(&self, cut: PowerCut) {
        *self.cut.lock() = Some(cut);
        self.mutations.store(0, Ordering::SeqCst);
        self.dead.store(false, Ordering::SeqCst);
    }

    /// Disarm any power cut and revive the device (counter keeps running).
    pub fn disarm_power_cut(&self) {
        *self.cut.lock() = None;
        self.dead.store(false, Ordering::SeqCst);
    }

    /// Mutating operations observed since construction or the last
    /// [`FaultyStorage::arm_power_cut`]. Run a workload once uncut and
    /// read this to size a [`PowerCutSchedule`].
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    /// True once an armed power cut has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn check_alive(&self, path: &str) -> FsResult<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(FsError::Io(format!("power cut: device offline ({path})")));
        }
        Ok(())
    }

    /// Count a mutating op against an armed power cut.
    fn mutation_gate(&self) -> Gate {
        let n = self.mutations.fetch_add(1, Ordering::SeqCst);
        let cut = *self.cut.lock();
        match cut {
            Some(c) if n >= c.after_mutations => {
                self.dead.store(true, Ordering::SeqCst);
                Gate::Cut(c.torn_bytes)
            }
            _ => Gate::Pass,
        }
    }

    /// Check rules for an op; returns Err to fail it, or the corruption
    /// byte to apply.
    fn consult(&self, kind: FaultKind, path: &str) -> Result<Option<u8>, FsError> {
        let rules = self.rules.lock();
        for rs in rules.iter() {
            let kind_match = rs.rule.kind == FaultKind::All || rs.rule.kind == kind;
            let path_match =
                rs.rule.path_contains.as_deref().map(|s| path.contains(s)).unwrap_or(true);
            if kind_match && path_match {
                let n = rs.seen.fetch_add(1, Ordering::Relaxed);
                let expired =
                    rs.rule.max_failures.map(|m| n >= rs.rule.after_ops + m).unwrap_or(false);
                if n >= rs.rule.after_ops && !expired {
                    if let Some(b) = rs.rule.corrupt_with {
                        return Ok(Some(b));
                    }
                    return Err(FsError::Io(format!("injected fault on {path}")));
                }
            }
        }
        Ok(None)
    }
}

/// XOR `b` into the first byte of `data`, if any.
fn corrupt_first(data: &[u8], b: u8) -> Vec<u8> {
    let mut owned = data.to_vec();
    if let Some(first) = owned.first_mut() {
        *first ^= b;
    }
    owned
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during create {path}")));
        }
        self.consult(FaultKind::Metadata, path)?;
        self.inner.create(path, ctx)
    }

    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        self.check_alive(path)?;
        if let Gate::Cut(torn) = self.mutation_gate() {
            if let Some(k) = torn {
                // Torn write: a prefix reaches the medium, then the lights
                // go out. The caller still sees a failure.
                let k = k.min(data.len());
                if k > 0 {
                    let _ = self.inner.append(path, &data[..k], ctx);
                }
            }
            return Err(FsError::Io(format!("power cut during append {path}")));
        }
        match self.consult(FaultKind::Writes, path)? {
            Some(b) => self.inner.append(path, &corrupt_first(data, b), ctx),
            None => self.inner.append(path, data, ctx),
        }
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(torn) = self.mutation_gate() {
            if let Some(k) = torn {
                let k = k.min(data.len());
                if k > 0 {
                    let _ = self.inner.write_at(path, offset, &data[..k], ctx);
                }
            }
            return Err(FsError::Io(format!("power cut during write_at {path}")));
        }
        match self.consult(FaultKind::Writes, path)? {
            Some(b) => self.inner.write_at(path, offset, &corrupt_first(data, b), ctx),
            None => self.inner.write_at(path, offset, data, ctx),
        }
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.check_alive(path)?;
        let corrupt = self.consult(FaultKind::Reads, path)?;
        let mut data = self.inner.read_at(path, offset, len, ctx)?;
        if let (Some(b), Some(first)) = (corrupt, data.first_mut()) {
            *first ^= b;
        }
        Ok(data)
    }

    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.check_alive(path)?;
        self.consult(FaultKind::Metadata, path)?;
        self.inner.len(path, ctx)
    }

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        if self.dead.load(Ordering::SeqCst) {
            return false;
        }
        self.inner.exists(path, ctx)
    }

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.check_alive(path)?;
        self.consult(FaultKind::Metadata, path)?;
        self.inner.stat(path, ctx)
    }

    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during mkdir {path}")));
        }
        self.consult(FaultKind::Metadata, path)?;
        self.inner.mkdir_all(path, ctx)
    }

    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.check_alive(path)?;
        self.consult(FaultKind::Metadata, path)?;
        self.inner.read_dir(path, ctx)
    }

    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during remove {path}")));
        }
        self.consult(FaultKind::Metadata, path)?;
        self.inner.remove_file(path, ctx)
    }

    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during remove {path}")));
        }
        self.consult(FaultKind::Metadata, path)?;
        self.inner.remove_dir_all(path, ctx)
    }

    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(from)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during rename {from} -> {to}")));
        }
        self.consult(FaultKind::Metadata, from)?;
        self.inner.rename(from, to, ctx)
    }

    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_alive(path)?;
        if let Gate::Cut(_) = self.mutation_gate() {
            return Err(FsError::Io(format!("power cut during flush {path}")));
        }
        self.consult(FaultKind::Writes, path)?;
        self.inner.flush(path, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStorage;

    #[test]
    fn fails_after_countdown() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule { kind: FaultKind::Writes, after_ops: 2, ..FaultRule::default() });
        assert!(fs.append("/f", b"1", &mut ctx).is_ok());
        assert!(fs.append("/f", b"2", &mut ctx).is_ok());
        assert!(matches!(fs.append("/f", b"3", &mut ctx), Err(FsError::Io(_))));
    }

    #[test]
    fn path_filter_limits_blast_radius() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule {
            kind: FaultKind::Writes,
            path_contains: Some("wal".into()),
            ..FaultRule::default()
        });
        assert!(fs.append("/data", b"ok", &mut ctx).is_ok());
        assert!(fs.append("/db/wal", b"no", &mut ctx).is_err());
    }

    #[test]
    fn read_corruption_flips_first_byte() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"hello", &mut ctx).unwrap();
        fs.inject(FaultRule {
            kind: FaultKind::Reads,
            corrupt_with: Some(0xFF),
            ..FaultRule::default()
        });
        let got = fs.read_at("/f", 0, 5, &mut ctx).unwrap();
        assert_ne!(got, b"hello");
        assert_eq!(&got[1..], b"ello");
        fs.clear_faults();
        assert_eq!(fs.read_at("/f", 0, 5, &mut ctx).unwrap(), b"hello");
    }

    #[test]
    fn write_corruption_flips_first_byte_on_medium() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule {
            kind: FaultKind::Writes,
            corrupt_with: Some(0x01),
            ..FaultRule::default()
        });
        fs.append("/f", b"hello", &mut ctx).unwrap();
        fs.clear_faults();
        // The corruption happened on the way down: re-reads see it.
        assert_eq!(fs.read_at("/f", 0, 5, &mut ctx).unwrap(), b"iello");
    }

    #[test]
    fn metadata_faults_hit_mkdir() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.inject(FaultRule { kind: FaultKind::Metadata, ..FaultRule::default() });
        assert!(fs.mkdir_all("/d", &mut ctx).is_err());
    }

    #[test]
    fn transient_fault_expires_after_max_failures() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"x", &mut ctx).unwrap();
        fs.inject(FaultRule {
            kind: FaultKind::Reads,
            max_failures: Some(2),
            ..FaultRule::default()
        });
        assert!(fs.read_at("/f", 0, 1, &mut ctx).is_err());
        assert!(fs.read_at("/f", 0, 1, &mut ctx).is_err());
        assert_eq!(fs.read_at("/f", 0, 1, &mut ctx).unwrap(), b"x");
        assert_eq!(fs.read_at("/f", 0, 1, &mut ctx).unwrap(), b"x");
    }

    #[test]
    fn power_cut_kills_device_at_boundary() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.arm_power_cut(PowerCut { after_mutations: 2, torn_bytes: None });
        fs.append("/a", b"1", &mut ctx).unwrap();
        fs.append("/b", b"2", &mut ctx).unwrap();
        assert!(fs.append("/c", b"3", &mut ctx).is_err());
        assert!(fs.is_dead());
        // Everything fails after the cut, reads included.
        assert!(fs.read_at("/a", 0, 1, &mut ctx).is_err());
        assert!(fs.mkdir_all("/d", &mut ctx).is_err());
        // The medium (inner) survives with pre-cut state only.
        assert!(fs.inner().exists("/a", &mut ctx));
        assert!(!fs.inner().exists("/c", &mut ctx));
    }

    #[test]
    fn torn_write_persists_prefix_then_fails() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.arm_power_cut(PowerCut { after_mutations: 0, torn_bytes: Some(2) });
        assert!(fs.append("/f", b"hello", &mut ctx).is_err());
        assert_eq!(fs.inner().read_all("/f", &mut ctx).unwrap(), b"he");
    }

    #[test]
    fn mutation_counter_counts_only_mutations() {
        let fs = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"x", &mut ctx).unwrap();
        fs.mkdir_all("/d", &mut ctx).unwrap();
        fs.read_at("/f", 0, 1, &mut ctx).unwrap();
        fs.len("/f", &mut ctx).unwrap();
        assert_eq!(fs.mutations(), 2);
    }

    #[test]
    fn schedule_sweeps_clean_and_torn_variants() {
        let cuts: Vec<PowerCut> = PowerCutSchedule::sweep(2).collect();
        assert_eq!(
            cuts,
            vec![
                PowerCut { after_mutations: 0, torn_bytes: None },
                PowerCut { after_mutations: 0, torn_bytes: Some(1) },
                PowerCut { after_mutations: 1, torn_bytes: None },
                PowerCut { after_mutations: 1, torn_bytes: Some(1) },
            ]
        );
        assert_eq!(PowerCutSchedule::sweep(2).len(), 4);
    }
}
