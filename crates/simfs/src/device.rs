//! Device and network cost models.
//!
//! These models convert byte counts and access patterns into virtual time.
//! The presets are calibrated to the hardware the paper reports (§IV.A):
//! 256 GB NVMe SSDs on the single node and the PVFS cluster, HDD-backed
//! OSTs plus InfiniBand on the Tianhe-1A Lustre subsystem, 10 GbE between
//! PVFS nodes. Two sanity anchors from the paper hold under these numbers:
//! appending 49,233 small TF messages costs on the order of 100 ms
//! (Fig. 2's Ext4 bar), and a full-scan open of a 21 GB bag costs multiple
//! seconds (§II's seven-second observation).

/// Cost model for one storage device (or one file-server's backing store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceModel {
    /// Fixed cost per I/O request (syscall + submission + completion).
    pub per_op_ns: u64,
    /// Additional cost when the access is not sequential with the previous
    /// access to the same file.
    pub seek_ns: u64,
    pub read_bw_bytes_per_sec: u64,
    pub write_bw_bytes_per_sec: u64,
    /// Cost of a metadata operation (create/stat/readdir entry/mkdir).
    pub meta_op_ns: u64,
    /// Cost of a durability barrier (fsync).
    pub flush_ns: u64,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;

impl DeviceModel {
    /// NVMe SSD under Ext4 (the paper's single-node baseline filesystem).
    pub fn nvme_ext4() -> Self {
        DeviceModel {
            per_op_ns: 2_500,
            seek_ns: 70_000,
            read_bw_bytes_per_sec: 1_800 * MIB,
            write_bw_bytes_per_sec: 1_200 * MIB,
            meta_op_ns: 30_000,
            flush_ns: 600_000,
        }
    }

    /// NVMe SSD under XFS: slightly faster streaming writes, slower
    /// metadata operations — the asymmetry behind Fig. 9's larger BORA
    /// capture overhead on XFS.
    pub fn nvme_xfs() -> Self {
        DeviceModel {
            per_op_ns: 2_500,
            seek_ns: 70_000,
            read_bw_bytes_per_sec: 1_900 * MIB,
            write_bw_bytes_per_sec: 1_400 * MIB,
            meta_op_ns: 55_000,
            flush_ns: 700_000,
        }
    }

    /// Two NVMe SSDs in soft RAID-0 (each PVFS cluster node, §IV.D).
    pub fn raid0_2x_nvme() -> Self {
        let base = Self::nvme_ext4();
        DeviceModel {
            read_bw_bytes_per_sec: base.read_bw_bytes_per_sec * 2,
            write_bw_bytes_per_sec: base.write_bw_bytes_per_sec * 2,
            ..base
        }
    }

    /// Lustre OST backing store: RAID-ed enterprise HDD arrays. A raw
    /// disk seek is ~8 ms, but an OST stripes over ~10 spindles with
    /// elevator scheduling across client streams, so the *effective*
    /// per-random-request penalty observed by one stream is ~1.5 ms.
    /// (The paper attributes BORA's Lustre read gains to giving these
    /// disks a sequential pattern.)
    pub fn hdd() -> Self {
        DeviceModel {
            per_op_ns: 20_000,
            seek_ns: 1_500_000,
            read_bw_bytes_per_sec: 180 * MIB,
            write_bw_bytes_per_sec: 160 * MIB,
            meta_op_ns: 100_000,
            flush_ns: 8_000_000,
        }
    }

    /// Virtual time to read `bytes` with the given access pattern, when
    /// `share` processes contend for this device.
    #[inline]
    pub fn read_cost_ns(&self, bytes: u64, seek: bool, share: u32) -> u64 {
        self.xfer_cost_ns(bytes, seek, share, self.read_bw_bytes_per_sec)
    }

    /// Virtual time to write `bytes`.
    #[inline]
    pub fn write_cost_ns(&self, bytes: u64, seek: bool, share: u32) -> u64 {
        self.xfer_cost_ns(bytes, seek, share, self.write_bw_bytes_per_sec)
    }

    #[inline]
    fn xfer_cost_ns(&self, bytes: u64, seek: bool, share: u32, bw: u64) -> u64 {
        let share = share.max(1) as u64;
        let seek_cost = if seek { self.seek_ns } else { 0 };
        // Contention scales the streaming component; fixed costs are per-op.
        self.per_op_ns + seek_cost + bytes.saturating_mul(1_000_000_000) / (bw / share).max(1)
    }

    /// Metadata op cost under `share`-way contention on the metadata path.
    #[inline]
    pub fn meta_cost_ns(&self, share: u32) -> u64 {
        self.meta_op_ns * share.max(1) as u64
    }
}

/// Network cost model for cluster backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// One-way message latency.
    pub latency_ns: u64,
    /// Aggregate link bandwidth available to the cluster fabric.
    pub bw_bytes_per_sec: u64,
}

impl NetModel {
    /// 10 Gbit/s Ethernet (the PVFS cluster interconnect, §IV.D).
    pub fn ten_gbe() -> Self {
        NetModel { latency_ns: 50_000, bw_bytes_per_sec: 10 * GIB / 8 }
    }

    /// Mellanox ConnectX-3 InfiniBand, 56 Gb/s (Tianhe-1A, §IV.E).
    pub fn infiniband_56g() -> Self {
        NetModel { latency_ns: 2_000, bw_bytes_per_sec: 56 * GIB / 8 }
    }

    /// Time to move `bytes` for one request among `share` concurrent
    /// processes (one RTT + bandwidth share).
    #[inline]
    pub fn xfer_cost_ns(&self, bytes: u64, share: u32) -> u64 {
        let share = share.max(1) as u64;
        2 * self.latency_ns
            + bytes.saturating_mul(1_000_000_000) / (self.bw_bytes_per_sec / share).max(1)
    }
}

/// CPU cost constants used by middleware code to charge index-building and
/// parsing work to the virtual clock (the `rosbag` baseline's open-time
/// iteration is CPU + I/O, not I/O alone).
pub mod cpu {
    /// Parsing one bag record header (field scan + map insert).
    pub const RECORD_HEADER_NS: u64 = 250;
    /// Handling one index entry (decode + push).
    pub const INDEX_ENTRY_NS: u64 = 25;
    /// Per-element cost of merge-sorting index entries (the baseline's
    /// O(N log N) time-query preparation charges this × log2(n)).
    pub const SORT_ELEMENT_NS: u64 = 15;
    /// One hash-table insert or lookup on topic names.
    pub const HASH_OP_NS: u64 = 60;
    /// Delivering one message through the ROS-Lib API (the paper queries
    /// via `bag.read_messages`, whose per-message Python-layer overhead
    /// is tens of microseconds). Both the baseline and BORA pay it; BORA
    /// additionally pays its FUSE interposition, modeled in the `bora`
    /// crate.
    pub const ROSLIB_DELIVERY_NS: u64 = 60_000;
    /// Deserializing one message payload byte (applies only where code
    /// actually decodes payloads).
    pub const DESERIALIZE_BYTE_NS: u64 = 1;
    /// Decompressing one chunk byte (LZSS-class codecs run at ~GB/s).
    pub const DECOMPRESS_BYTE_NS: u64 = 1;
    /// Compressing one byte (match search makes encode several times
    /// slower than decode for LZSS-class codecs).
    pub const COMPRESS_BYTE_NS: u64 = 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_cheaper_than_seek() {
        let d = DeviceModel::nvme_ext4();
        assert!(d.read_cost_ns(4096, false, 1) < d.read_cost_ns(4096, true, 1));
    }

    #[test]
    fn contention_slows_streaming() {
        let d = DeviceModel::nvme_ext4();
        let solo = d.read_cost_ns(100 * MIB, false, 1);
        let shared = d.read_cost_ns(100 * MIB, false, 4);
        assert!(shared > solo * 3, "solo={solo} shared={shared}");
    }

    #[test]
    fn hdd_seeks_dominate() {
        let d = DeviceModel::hdd();
        // 1000 random 4 KiB reads vs one sequential 4 MiB read: random must
        // be far slower on a disk, which is the effect BORA exploits.
        let random: u64 = (0..1000).map(|_| d.read_cost_ns(4096, true, 1)).sum();
        let sequential = d.read_cost_ns(4 * MIB, true, 1);
        assert!(random > sequential * 50);
    }

    #[test]
    fn paper_anchor_small_append_storm() {
        // Fig. 2 anchor: ~49k small appends on Ext4 land in the ~100 ms
        // regime (the paper reports 130 ms).
        let d = DeviceModel::nvme_ext4();
        let total: u64 = (0..49_233u64).map(|_| d.write_cost_ns(75, false, 1)).sum();
        let ms = total / 1_000_000;
        assert!((50..500).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn network_share_divides_bandwidth() {
        let n = NetModel::ten_gbe();
        let solo = n.xfer_cost_ns(MIB, 1);
        let crowd = n.xfer_cost_ns(MIB, 10);
        assert!(crowd > solo * 5);
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let bytes = 64 * MIB;
        assert!(
            NetModel::infiniband_56g().xfer_cost_ns(bytes, 1)
                < NetModel::ten_gbe().xfer_cost_ns(bytes, 1)
        );
    }
}
