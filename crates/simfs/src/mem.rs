//! An in-memory filesystem: the base backend all cost models wrap.
//!
//! Data paths are real — bytes are stored, copied, and returned — so every
//! algorithm layered above (bag parsing, BORA reorganization, B-tree WALs)
//! is exercised genuinely. Only *time* is synthetic, and only when wrapped
//! by [`crate::TimedStorage`] / [`crate::ClusterStorage`].

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::clock::IoCtx;
use crate::error::{FsError, FsResult};
use crate::path::{self, normalize};
use crate::storage::{DirEntry, EntryKind, Metadata, Storage};

#[derive(Debug)]
enum Node {
    File(Vec<u8>),
    Dir,
}

/// Thread-safe in-memory filesystem.
///
/// Uses a single `BTreeMap<String, Node>` keyed by normalized path; the
/// sorted order makes directory listings deterministic and prefix scans
/// cheap. A coarse `RwLock` is sufficient: the workloads' hot paths are
/// large reads/appends, not lock churn.
pub struct MemStorage {
    nodes: RwLock<BTreeMap<String, Node>>,
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStorage {
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_owned(), Node::Dir);
        MemStorage { nodes: RwLock::new(nodes) }
    }

    /// Total bytes held across all files (for memory accounting in tests
    /// and the experiment harness).
    pub fn total_bytes(&self) -> u64 {
        self.nodes
            .read()
            .values()
            .map(|n| match n {
                Node::File(d) => d.len() as u64,
                Node::Dir => 0,
            })
            .sum()
    }

    /// Number of files (excluding directories).
    pub fn file_count(&self) -> usize {
        self.nodes.read().values().filter(|n| matches!(n, Node::File(_))).count()
    }

    fn ensure_parents(nodes: &mut BTreeMap<String, Node>, p: &str) -> FsResult<()> {
        for anc in path::ancestors(p) {
            match nodes.get(&anc) {
                None => {
                    nodes.insert(anc, Node::Dir);
                }
                Some(Node::Dir) => {}
                Some(Node::File(_)) => return Err(FsError::NotADirectory(anc)),
            }
        }
        Ok(())
    }
}

impl Storage for MemStorage {
    fn create(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        if nodes.contains_key(&p) {
            return Err(FsError::AlreadyExists(p));
        }
        Self::ensure_parents(&mut nodes, &p)?;
        nodes.insert(p, Node::File(Vec::new()));
        Ok(())
    }

    fn append(&self, raw: &str, data: &[u8], _ctx: &mut IoCtx) -> FsResult<u64> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        if !nodes.contains_key(&p) {
            Self::ensure_parents(&mut nodes, &p)?;
            nodes.insert(p.clone(), Node::File(Vec::new()));
        }
        match nodes.get_mut(&p).unwrap() {
            Node::File(buf) => {
                let off = buf.len() as u64;
                buf.extend_from_slice(data);
                Ok(off)
            }
            Node::Dir => Err(FsError::IsADirectory(p)),
        }
    }

    fn write_at(&self, raw: &str, offset: u64, data: &[u8], _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        match nodes.get_mut(&p) {
            Some(Node::File(buf)) => {
                let off = offset as usize;
                if off > buf.len() {
                    return Err(FsError::OutOfBounds {
                        path: p,
                        offset,
                        len: data.len() as u64,
                        file_len: buf.len() as u64,
                    });
                }
                let end = off + data.len();
                if end > buf.len() {
                    buf.resize(end, 0);
                }
                buf[off..end].copy_from_slice(data);
                Ok(())
            }
            Some(Node::Dir) => Err(FsError::IsADirectory(p)),
            None => Err(FsError::NotFound(p)),
        }
    }

    fn read_at(&self, raw: &str, offset: u64, len: usize, _ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let p = normalize(raw)?;
        let nodes = self.nodes.read();
        match nodes.get(&p) {
            Some(Node::File(buf)) => {
                let off = offset as usize;
                let end = off.checked_add(len).filter(|&e| e <= buf.len()).ok_or(
                    FsError::OutOfBounds {
                        path: p.clone(),
                        offset,
                        len: len as u64,
                        file_len: buf.len() as u64,
                    },
                )?;
                Ok(buf[off..end].to_vec())
            }
            Some(Node::Dir) => Err(FsError::IsADirectory(p)),
            None => Err(FsError::NotFound(p)),
        }
    }

    fn len(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<u64> {
        let p = normalize(raw)?;
        match self.nodes.read().get(&p) {
            Some(Node::File(buf)) => Ok(buf.len() as u64),
            Some(Node::Dir) => Err(FsError::IsADirectory(p)),
            None => Err(FsError::NotFound(p)),
        }
    }

    fn exists(&self, raw: &str, _ctx: &mut IoCtx) -> bool {
        match normalize(raw) {
            Ok(p) => self.nodes.read().contains_key(&p),
            Err(_) => false,
        }
    }

    fn stat(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<Metadata> {
        let p = normalize(raw)?;
        match self.nodes.read().get(&p) {
            Some(Node::File(buf)) => Ok(Metadata { kind: EntryKind::File, len: buf.len() as u64 }),
            Some(Node::Dir) => Ok(Metadata { kind: EntryKind::Dir, len: 0 }),
            None => Err(FsError::NotFound(p)),
        }
    }

    fn mkdir_all(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        Self::ensure_parents(&mut nodes, &p)?;
        match nodes.get(&p) {
            Some(Node::File(_)) => Err(FsError::NotADirectory(p)),
            Some(Node::Dir) => Ok(()),
            None => {
                nodes.insert(p, Node::Dir);
                Ok(())
            }
        }
    }

    fn read_dir(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        let p = normalize(raw)?;
        let nodes = self.nodes.read();
        match nodes.get(&p) {
            Some(Node::Dir) => {}
            Some(Node::File(_)) => return Err(FsError::NotADirectory(p)),
            None => return Err(FsError::NotFound(p)),
        }
        let prefix = if p == "/" { String::new() } else { p.clone() };
        let mut out = Vec::new();
        // Children are the keys `prefix + "/" + name` with no further `/`.
        let range_start = format!("{prefix}/");
        for (k, node) in nodes.range(range_start.clone()..) {
            if !k.starts_with(&range_start) {
                break;
            }
            let rest = &k[range_start.len()..];
            if rest.is_empty() || rest.contains('/') {
                continue;
            }
            out.push(DirEntry {
                name: rest.to_owned(),
                kind: match node {
                    Node::File(_) => EntryKind::File,
                    Node::Dir => EntryKind::Dir,
                },
            });
        }
        Ok(out)
    }

    fn remove_file(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        match nodes.get(&p) {
            Some(Node::File(_)) => {
                nodes.remove(&p);
                Ok(())
            }
            Some(Node::Dir) => Err(FsError::IsADirectory(p)),
            None => Err(FsError::NotFound(p)),
        }
    }

    fn remove_dir_all(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        let mut nodes = self.nodes.write();
        if !nodes.contains_key(&p) {
            return Err(FsError::NotFound(p));
        }
        let keys: Vec<String> = nodes
            .range(p.clone()..)
            .take_while(|(k, _)| path::starts_with(k, &p))
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            nodes.remove(&k);
        }
        Ok(())
    }

    fn rename(&self, from_raw: &str, to_raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let from = normalize(from_raw)?;
        let to = normalize(to_raw)?;
        let mut nodes = self.nodes.write();
        if !nodes.contains_key(&from) {
            return Err(FsError::NotFound(from));
        }
        if nodes.contains_key(&to) {
            return Err(FsError::AlreadyExists(to));
        }
        Self::ensure_parents(&mut nodes, &to)?;
        let moved: Vec<(String, Node)> = {
            let keys: Vec<String> = nodes
                .range(from.clone()..)
                .take_while(|(k, _)| path::starts_with(k, &from))
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter()
                .map(|k| {
                    let node = nodes.remove(&k).unwrap();
                    let suffix = &k[from.len()..];
                    (format!("{to}{suffix}"), node)
                })
                .collect()
        };
        for (k, v) in moved {
            nodes.insert(k, v);
        }
        Ok(())
    }

    fn flush(&self, raw: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let p = normalize(raw)?;
        if self.nodes.read().contains_key(&p) {
            Ok(())
        } else {
            Err(FsError::NotFound(p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> IoCtx {
        IoCtx::new()
    }

    #[test]
    fn create_append_read() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.create("/a/b/file", &mut c).unwrap();
        assert_eq!(fs.append("/a/b/file", b"hello", &mut c).unwrap(), 0);
        assert_eq!(fs.append("/a/b/file", b" world", &mut c).unwrap(), 5);
        assert_eq!(fs.read_all("/a/b/file", &mut c).unwrap(), b"hello world");
        assert_eq!(fs.read_at("/a/b/file", 6, 5, &mut c).unwrap(), b"world");
    }

    #[test]
    fn create_twice_fails() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.create("/x", &mut c).unwrap();
        assert!(matches!(fs.create("/x", &mut c), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn append_creates_implicitly() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/implicit/file", b"x", &mut c).unwrap();
        assert!(fs.exists("/implicit/file", &mut c));
        assert!(fs.exists("/implicit", &mut c));
    }

    #[test]
    fn read_past_end_errors() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/f", b"abc", &mut c).unwrap();
        assert!(matches!(fs.read_at("/f", 2, 10, &mut c), Err(FsError::OutOfBounds { .. })));
    }

    #[test]
    fn write_at_extends_and_overwrites() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/f", b"abcdef", &mut c).unwrap();
        fs.write_at("/f", 3, b"XYZQ", &mut c).unwrap();
        assert_eq!(fs.read_all("/f", &mut c).unwrap(), b"abcXYZQ");
        assert!(matches!(fs.write_at("/f", 100, b"!", &mut c), Err(FsError::OutOfBounds { .. })));
    }

    #[test]
    fn read_dir_lists_only_direct_children_sorted() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/bag1/topicB/data", b"1", &mut c).unwrap();
        fs.append("/bag1/topicA/data", b"2", &mut c).unwrap();
        fs.append("/bag1/meta", b"3", &mut c).unwrap();
        let entries = fs.read_dir("/bag1", &mut c).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["meta", "topicA", "topicB"]);
        assert_eq!(entries[1].kind, EntryKind::Dir);
        assert_eq!(entries[0].kind, EntryKind::File);
    }

    #[test]
    fn read_dir_root() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/top", b"x", &mut c).unwrap();
        let entries = fs.read_dir("/", &mut c).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "top");
    }

    #[test]
    fn remove_dir_all_removes_subtree() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/d/a", b"1", &mut c).unwrap();
        fs.append("/d/sub/b", b"2", &mut c).unwrap();
        fs.append("/d2/keep", b"3", &mut c).unwrap();
        fs.remove_dir_all("/d", &mut c).unwrap();
        assert!(!fs.exists("/d", &mut c));
        assert!(!fs.exists("/d/sub/b", &mut c));
        assert!(fs.exists("/d2/keep", &mut c));
    }

    #[test]
    fn rename_moves_subtree() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/src/t1/data", b"payload", &mut c).unwrap();
        fs.rename("/src", "/dst", &mut c).unwrap();
        assert!(!fs.exists("/src/t1/data", &mut c));
        assert_eq!(fs.read_all("/dst/t1/data", &mut c).unwrap(), b"payload");
    }

    #[test]
    fn rename_does_not_clobber() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/a", b"1", &mut c).unwrap();
        fs.append("/b", b"2", &mut c).unwrap();
        assert!(matches!(fs.rename("/a", "/b", &mut c), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn file_blocks_directory_creation() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/f", b"x", &mut c).unwrap();
        assert!(matches!(fs.append("/f/child", b"y", &mut c), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn accounting() {
        let fs = MemStorage::new();
        let mut c = ctx();
        fs.append("/a", &[0u8; 100], &mut c).unwrap();
        fs.append("/b", &[0u8; 50], &mut c).unwrap();
        assert_eq!(fs.total_bytes(), 150);
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn concurrent_appends_to_distinct_files() {
        use std::sync::Arc;
        let fs = Arc::new(MemStorage::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let mut c = IoCtx::new();
                for i in 0..100 {
                    fs.append(&format!("/t{t}"), &[i as u8], &mut c).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut c = ctx();
        for t in 0..8 {
            assert_eq!(fs.len(&format!("/t{t}"), &mut c).unwrap(), 100);
        }
    }
}
