//! The [`Storage`] trait: the filesystem interface every middleware in the
//! workspace is written against.
//!
//! Operations are path-based (normalized `/a/b/c` strings) and take an
//! `&mut IoCtx` so cost-model backends can charge virtual time. Backends
//! must be `Send + Sync`; the BORA data organizer drives them from several
//! threads at once.

use crate::clock::IoCtx;
use crate::error::FsResult;

/// Kind of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    File,
    Dir,
}

/// One entry of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (final component, not the full path).
    pub name: String,
    pub kind: EntryKind,
}

/// File or directory metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    pub kind: EntryKind,
    /// File size in bytes (0 for directories).
    pub len: u64,
}

/// A filesystem backend.
///
/// Append-heavy workloads (bag recording, BORA topic files, WALs) use
/// [`append`](Storage::append); analytical reads use
/// [`read_at`](Storage::read_at) / [`read_all`](Storage::read_all).
pub trait Storage: Send + Sync {
    /// Create an empty file, failing if it exists. Parent directories are
    /// created implicitly (bag tools never pre-create hierarchies).
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()>;

    /// Append `data`, returning the offset at which it landed.
    /// Creates the file if needed.
    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64>;

    /// Overwrite `data` at `offset` (must lie within or at EOF).
    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()>;

    /// Read exactly `len` bytes at `offset`.
    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>>;

    /// Read the whole file.
    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let len = self.len(path, ctx)?;
        self.read_at(path, 0, len as usize, ctx)
    }

    /// Current file length.
    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64>;

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool;

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata>;

    /// Create a directory and all missing ancestors.
    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()>;

    /// List a directory (sorted by name, deterministic).
    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>>;

    /// Remove a file.
    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()>;

    /// Remove a directory tree recursively.
    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()>;

    /// Rename a file or directory tree.
    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()>;

    /// Durability barrier for a file (fsync-like; cost models charge it).
    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()>;
}

/// Blanket impl so `&S`, `Box<S>`, `Arc<S>` can be used where a `Storage`
/// is expected.
impl<S: Storage + ?Sized> Storage for &S {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).create(path, ctx)
    }
    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        (**self).append(path, data, ctx)
    }
    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        (**self).write_at(path, offset, data, ctx)
    }
    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        (**self).read_at(path, offset, len, ctx)
    }
    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        (**self).read_all(path, ctx)
    }
    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        (**self).len(path, ctx)
    }
    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        (**self).exists(path, ctx)
    }
    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        (**self).stat(path, ctx)
    }
    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).mkdir_all(path, ctx)
    }
    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        (**self).read_dir(path, ctx)
    }
    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).remove_file(path, ctx)
    }
    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).remove_dir_all(path, ctx)
    }
    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).rename(from, to, ctx)
    }
    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        (**self).flush(path, ctx)
    }
}

macro_rules! forward_storage_for_smart_ptr {
    ($ty:ty) => {
        impl<S: Storage + ?Sized> Storage for $ty {
            fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).create(path, ctx)
            }
            fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
                (**self).append(path, data, ctx)
            }
            fn write_at(
                &self,
                path: &str,
                offset: u64,
                data: &[u8],
                ctx: &mut IoCtx,
            ) -> FsResult<()> {
                (**self).write_at(path, offset, data, ctx)
            }
            fn read_at(
                &self,
                path: &str,
                offset: u64,
                len: usize,
                ctx: &mut IoCtx,
            ) -> FsResult<Vec<u8>> {
                (**self).read_at(path, offset, len, ctx)
            }
            fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
                (**self).read_all(path, ctx)
            }
            fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
                (**self).len(path, ctx)
            }
            fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
                (**self).exists(path, ctx)
            }
            fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
                (**self).stat(path, ctx)
            }
            fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).mkdir_all(path, ctx)
            }
            fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
                (**self).read_dir(path, ctx)
            }
            fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).remove_file(path, ctx)
            }
            fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).remove_dir_all(path, ctx)
            }
            fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).rename(from, to, ctx)
            }
            fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
                (**self).flush(path, ctx)
            }
        }
    };
}

forward_storage_for_smart_ptr!(Box<S>);
forward_storage_for_smart_ptr!(std::sync::Arc<S>);
