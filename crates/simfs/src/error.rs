//! Filesystem error type shared by every backend.

use std::fmt;

/// Errors returned by [`crate::Storage`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    NotFound(String),
    AlreadyExists(String),
    NotADirectory(String),
    IsADirectory(String),
    /// Directory is not empty (non-recursive remove).
    NotEmpty(String),
    /// Read past end of file.
    OutOfBounds {
        path: String,
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// Underlying host-filesystem error (LocalStorage only).
    Io(String),
    /// Path failed normalization (empty, contains `..`, etc.).
    BadPath(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::OutOfBounds { path, offset, len, file_len } => write!(
                f,
                "read out of bounds: {path} offset={offset} len={len} file_len={file_len}"
            ),
            FsError::Io(e) => write!(f, "I/O error: {e}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        FsError::Io(e.to_string())
    }
}

pub type FsResult<T> = Result<T, FsError>;
