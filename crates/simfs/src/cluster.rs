//! [`ClusterStorage`]: a striped multi-server filesystem model.
//!
//! Reproduces the paper's two distributed platforms:
//!
//! * **4-node PVFS cluster** ([`ClusterConfig::pvfs4`]) — four data servers,
//!   each two NVMe SSDs in RAID-0, connected by 10 GbE. No dedicated
//!   metadata server; metadata ops cost one network RTT + a server
//!   metadata op.
//! * **Tianhe-1A Lustre subsystem** ([`ClusterConfig::tianhe_lustre`]) —
//!   three object storage servers (OSS) over HDD-backed OSTs, a metadata
//!   service (MDS) whose service time is paid by every open/stat/readdir,
//!   InfiniBand 56 Gb/s fabric.
//!
//! Data bytes live in one inner [`MemStorage`] (real data paths); the
//! cluster topology exists purely in the *cost* domain: a transfer of byte
//! range `[off, off+len)` is split into stripe units, each unit charged to
//! its server, and the total time is the maximum over servers (parallel
//! service) plus the network share — exactly how a striped read behaves.

use std::collections::HashSet;
use std::sync::Mutex;

use crate::clock::{path_key, IoCtx};
use crate::device::{DeviceModel, NetModel};
use crate::error::{FsError, FsResult};
use crate::mem::MemStorage;
use crate::storage::{DirEntry, Metadata, Storage};

/// Topology and cost parameters of a simulated cluster filesystem.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    pub name: &'static str,
    pub data_servers: u32,
    pub stripe_size: u64,
    pub device: DeviceModel,
    pub net: NetModel,
    /// Metadata service time per metadata op (MDS CPU + journal). For PVFS
    /// this is small and distributed; for Lustre it is the MDS RPC cost.
    pub mds_op_ns: u64,
    /// Maximum concurrent metadata RPCs the metadata service absorbs
    /// before requests queue (models MDS saturation under a 100-process
    /// open storm).
    pub mds_parallelism: u32,
}

impl ClusterConfig {
    /// The paper's 4-node all-SSD PVFS cluster on 10 GbE (§IV.D).
    pub fn pvfs4() -> Self {
        ClusterConfig {
            name: "pvfs4",
            data_servers: 4,
            stripe_size: 64 * 1024,
            device: DeviceModel::raid0_2x_nvme(),
            net: NetModel::ten_gbe(),
            mds_op_ns: 40_000,
            mds_parallelism: 8,
        }
    }

    /// The Tianhe-1A Lustre storage subsystem (§IV.E): 3 OSS on HDD OSTs,
    /// MDS service, InfiniBand 56 Gb/s.
    pub fn tianhe_lustre() -> Self {
        ClusterConfig {
            name: "tianhe-lustre",
            data_servers: 3,
            stripe_size: 1024 * 1024,
            device: DeviceModel::hdd(),
            net: NetModel::infiniband_56g(),
            mds_op_ns: 60_000,
            mds_parallelism: 16,
        }
    }
}

/// A simulated cluster filesystem (PVFS- or Lustre-like).
pub struct ClusterStorage {
    mem: MemStorage,
    cfg: ClusterConfig,
    /// Fault injection: indices of data servers currently down. A transfer
    /// touching any dead server's stripes fails (a striped file is only as
    /// available as every server holding a piece of the requested range);
    /// metadata survives until the *whole* cluster is down (PVFS
    /// distributes it; Lustre's MDS is a separate machine).
    dead: Mutex<HashSet<u32>>,
}

impl ClusterStorage {
    pub fn new(cfg: ClusterConfig) -> Self {
        ClusterStorage { mem: MemStorage::new(), cfg, dead: Mutex::new(HashSet::new()) }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn mem(&self) -> &MemStorage {
        &self.mem
    }

    /// Mark data server `idx` dead: subsequent transfers with a stripe on
    /// it fail with [`FsError::Io`]. Out-of-range indices are ignored.
    pub fn kill_server(&self, idx: u32) {
        if idx < self.cfg.data_servers {
            self.dead.lock().unwrap().insert(idx);
        }
    }

    /// Bring data server `idx` back.
    pub fn revive_server(&self, idx: u32) {
        self.dead.lock().unwrap().remove(&idx);
    }

    /// Kill every data server — all data *and* metadata ops fail until a
    /// revive. Models a whole-node (or fabric partition) loss.
    pub fn fail_all(&self) {
        let mut dead = self.dead.lock().unwrap();
        dead.extend(0..self.cfg.data_servers);
    }

    /// Revive every data server.
    pub fn revive_all(&self) {
        self.dead.lock().unwrap().clear();
    }

    /// Currently-dead data server indices (sorted).
    pub fn dead_servers(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.dead.lock().unwrap().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Fail if any stripe of `[offset, offset+len)` lands on a dead
    /// server. Checked before costing: the client learns of the fault via
    /// an RPC timeout, not by paying for the transfer.
    fn check_xfer(&self, path: &str, offset: u64, len: u64) -> FsResult<()> {
        let dead = self.dead.lock().unwrap();
        if dead.is_empty() {
            return Ok(());
        }
        // Zero-length transfers still require the first server of the
        // range to acknowledge the RPC.
        let per = self.per_server_bytes(offset, len.max(1));
        for (idx, &bytes) in per.iter().enumerate() {
            if bytes > 0 && dead.contains(&(idx as u32)) {
                return Err(FsError::Io(format!(
                    "data server {idx} down ({}: {path} [{offset}, +{len}))",
                    self.cfg.name
                )));
            }
        }
        Ok(())
    }

    /// Fail metadata ops only once every data server is gone.
    fn check_meta(&self, path: &str) -> FsResult<()> {
        let dead = self.dead.lock().unwrap();
        if dead.len() as u32 >= self.cfg.data_servers {
            return Err(FsError::Io(format!("all data servers down ({}: {path})", self.cfg.name)));
        }
        Ok(())
    }

    /// Bytes of `[offset, offset+len)` that land on each server under
    /// round-robin striping.
    fn per_server_bytes(&self, offset: u64, len: u64) -> Vec<u64> {
        let s = self.cfg.stripe_size;
        let n = self.cfg.data_servers as u64;
        let mut out = vec![0u64; n as usize];
        if len == 0 {
            return out;
        }
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let stripe_idx = cur / s;
            let server = (stripe_idx % n) as usize;
            let stripe_end = (stripe_idx + 1) * s;
            let take = stripe_end.min(end) - cur;
            out[server] += take;
            cur += take;
        }
        out
    }

    /// Charge a striped transfer: servers work in parallel (max over
    /// servers), the fabric carries the full payload at the client's
    /// bandwidth share. A non-sequential access costs an RPC round trip;
    /// sequential continuations ride client readahead, which pipelines
    /// request latency behind the data stream (both PVFS and Lustre
    /// clients do this — without it no streaming workload could reach
    /// link bandwidth).
    fn charge_xfer(&self, path: &str, offset: u64, len: u64, write: bool, ctx: &mut IoCtx) {
        let seek = ctx.note_access(path_key(path), offset, len);
        // Contending processes per server: concurrency spread over servers.
        let share = ctx.concurrency.div_ceil(self.cfg.data_servers).max(1);
        let per_server = self.per_server_bytes(offset, len);
        let server_ns = per_server
            .iter()
            .map(|&b| {
                if b == 0 {
                    0
                } else if write {
                    self.cfg.device.write_cost_ns(b, seek, share)
                } else {
                    self.cfg.device.read_cost_ns(b, seek, share)
                }
            })
            .max()
            .unwrap_or(0);
        let share = ctx.concurrency.max(1) as u64;
        let stream_ns =
            len.saturating_mul(1_000_000_000) / (self.cfg.net.bw_bytes_per_sec / share).max(1);
        let rtt_ns = if seek { 2 * self.cfg.net.latency_ns } else { 0 };
        ctx.charge_ns(server_ns + stream_ns + rtt_ns);
        if write {
            ctx.stats.writes += 1;
            ctx.stats.bytes_written += len;
        } else {
            ctx.stats.reads += 1;
            ctx.stats.bytes_read += len;
        }
    }

    /// Charge a metadata op: network RTT + MDS service time with queueing
    /// once concurrency exceeds the MDS's parallelism.
    fn charge_meta(&self, ctx: &mut IoCtx) {
        let queue_factor = ctx.concurrency.div_ceil(self.cfg.mds_parallelism).max(1) as u64;
        ctx.charge_ns(2 * self.cfg.net.latency_ns + self.cfg.mds_op_ns * queue_factor);
        ctx.stats.meta_ops += 1;
    }
}

impl Storage for ClusterStorage {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_meta(path)?;
        self.charge_meta(ctx);
        self.mem.create(path, ctx)
    }

    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        let off = self.mem.len(path, ctx).unwrap_or(0);
        self.check_xfer(path, off, data.len() as u64)?;
        self.charge_xfer(path, off, data.len() as u64, true, ctx);
        self.mem.append(path, data, ctx)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.check_xfer(path, offset, data.len() as u64)?;
        self.charge_xfer(path, offset, data.len() as u64, true, ctx);
        self.mem.write_at(path, offset, data, ctx)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.check_xfer(path, offset, len as u64)?;
        self.charge_xfer(path, offset, len as u64, false, ctx);
        self.mem.read_at(path, offset, len, ctx)
    }

    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let len = self.mem.len(path, ctx)?;
        self.check_xfer(path, 0, len)?;
        self.charge_xfer(path, 0, len, false, ctx);
        self.mem.read_at(path, 0, len as usize, ctx)
    }

    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.check_meta(path)?;
        self.charge_meta(ctx);
        self.mem.len(path, ctx)
    }

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        if self.check_meta(path).is_err() {
            return false;
        }
        self.charge_meta(ctx);
        self.mem.exists(path, ctx)
    }

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.check_meta(path)?;
        self.charge_meta(ctx);
        self.mem.stat(path, ctx)
    }

    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.check_meta(path)?;
        self.charge_meta(ctx);
        self.mem.mkdir_all(path, ctx)
    }

    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.check_meta(path)?;
        let entries = self.mem.read_dir(path, ctx)?;
        self.charge_meta(ctx);
        // Per-entry share of the directory scan RPCs.
        ctx.charge_ns(entries.len() as u64 * (self.cfg.mds_op_ns / 32).max(1));
        Ok(entries)
    }

    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.mem.remove_file(path, ctx)
    }

    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.mem.remove_dir_all(path, ctx)
    }

    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.mem.rename(from, to, ctx)
    }

    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        ctx.charge_ns(self.cfg.device.flush_ns + 2 * self.cfg.net.latency_ns);
        ctx.stats.flushes += 1;
        self.mem.flush(path, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_splits_bytes_round_robin() {
        let fs = ClusterStorage::new(ClusterConfig {
            stripe_size: 100,
            data_servers: 4,
            ..ClusterConfig::pvfs4()
        });
        // 450 bytes from offset 0: stripes 0..4 full (100 each), stripe 4
        // partial (50) lands on server 0 again.
        let per = fs.per_server_bytes(0, 450);
        assert_eq!(per, vec![150, 100, 100, 100]);
        // Offset into the middle of a stripe.
        let per = fs.per_server_bytes(150, 100);
        assert_eq!(per, vec![0, 50, 50, 0]);
    }

    #[test]
    fn zero_length_transfer_charges_nothing_to_servers() {
        let fs = ClusterStorage::new(ClusterConfig::pvfs4());
        assert_eq!(fs.per_server_bytes(123, 0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn large_read_faster_than_single_device() {
        // A striped read should beat the same bytes on one device of the
        // same model (parallel service), as long as the network is not the
        // bottleneck.
        let cfg = ClusterConfig { net: NetModel::infiniband_56g(), ..ClusterConfig::pvfs4() };
        let cluster = ClusterStorage::new(cfg);
        let single = crate::TimedStorage::new(MemStorage::new(), cfg.device);

        let data = vec![7u8; 8 * 1024 * 1024];
        let mut setup = IoCtx::new();
        cluster.append("/f", &data, &mut setup).unwrap();
        single.append("/f", &data, &mut setup).unwrap();

        let mut c1 = IoCtx::new();
        cluster.read_all("/f", &mut c1).unwrap();
        let mut c2 = IoCtx::new();
        single.read_all("/f", &mut c2).unwrap();
        assert!(c1.elapsed_ns() < c2.elapsed_ns());
    }

    #[test]
    fn mds_queues_under_open_storm() {
        let fs = ClusterStorage::new(ClusterConfig::tianhe_lustre());
        let mut solo = IoCtx::with_concurrency(1);
        let mut storm = IoCtx::with_concurrency(100);
        fs.mkdir_all("/d", &mut solo).unwrap();
        let base_solo = solo.elapsed_ns();
        fs.stat("/d", &mut solo).unwrap();
        let stat_solo = solo.elapsed_ns() - base_solo;
        fs.stat("/d", &mut storm).unwrap();
        let stat_storm = storm.elapsed_ns();
        assert!(stat_storm > stat_solo * 3, "solo={stat_solo} storm={stat_storm}");
    }

    #[test]
    fn data_round_trip() {
        let fs = ClusterStorage::new(ClusterConfig::tianhe_lustre());
        let mut ctx = IoCtx::new();
        fs.append("/bags/r0.bag", b"0123456789", &mut ctx).unwrap();
        assert_eq!(fs.read_at("/bags/r0.bag", 3, 4, &mut ctx).unwrap(), b"3456");
    }

    #[test]
    fn dead_server_fails_only_its_stripes() {
        let fs = ClusterStorage::new(ClusterConfig {
            stripe_size: 100,
            data_servers: 4,
            ..ClusterConfig::pvfs4()
        });
        let mut ctx = IoCtx::new();
        fs.append("/f", &vec![9u8; 450], &mut ctx).unwrap();

        fs.kill_server(2); // holds stripe 2 => bytes [200, 300)
        assert_eq!(fs.dead_servers(), vec![2]);
        // A range entirely on servers 0/1 still reads.
        assert_eq!(fs.read_at("/f", 0, 150, &mut ctx).unwrap().len(), 150);
        // A range touching server 2's stripe fails with an I/O error.
        match fs.read_at("/f", 150, 100, &mut ctx) {
            Err(FsError::Io(msg)) => assert!(msg.contains("server 2"), "{msg}"),
            other => panic!("expected Io error, got {other:?}"),
        }
        // Whole-file read crosses every server.
        assert!(fs.read_all("/f", &mut ctx).is_err());
        // Metadata survives a single server loss.
        assert!(fs.stat("/f", &mut ctx).is_ok());

        fs.revive_server(2);
        assert_eq!(fs.read_all("/f", &mut ctx).unwrap().len(), 450);
    }

    #[test]
    fn fail_all_kills_metadata_too() {
        let fs = ClusterStorage::new(ClusterConfig::pvfs4());
        let mut ctx = IoCtx::new();
        fs.append("/f", b"abc", &mut ctx).unwrap();
        fs.fail_all();
        assert!(fs.stat("/f", &mut ctx).is_err());
        assert!(!fs.exists("/f", &mut ctx));
        assert!(fs.read_at("/f", 0, 1, &mut ctx).is_err());
        fs.revive_all();
        assert!(fs.dead_servers().is_empty());
        assert_eq!(fs.read_all("/f", &mut ctx).unwrap(), b"abc");
    }
}
