//! Per-session virtual clock and I/O statistics.
//!
//! Every storage operation takes an `&mut IoCtx`. Cost-model backends
//! ([`crate::TimedStorage`], [`crate::ClusterStorage`]) advance the
//! session's virtual clock; plain backends leave it untouched. The clock is
//! what the experiment harness reports as "query time" — it is
//! deterministic, independent of host speed, and can represent terabyte
//! workloads without terabyte waits.

use std::time::Duration;

/// Cumulative I/O statistics for a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Reads/writes that were *not* sequential with the previous access to
    /// the same file (each one costs a seek in seek-sensitive models).
    pub seeks: u64,
    /// Metadata operations (create/stat/readdir/mkdir/exists/remove).
    pub meta_ops: u64,
    /// Explicit flush/fsync calls.
    pub flushes: u64,
}

/// Per-session I/O context: virtual clock + stats + concurrency declaration.
#[derive(Debug, Clone)]
pub struct IoCtx {
    /// Virtual nanoseconds accumulated by cost-model backends.
    elapsed_ns: u64,
    /// Number of processes the experiment declares as concurrently active
    /// (including this one). Cost models divide shared bandwidth by the
    /// portion of this that lands on each resource. `1` = no contention.
    pub concurrency: u32,
    pub stats: IoStats,
    /// Sequentiality tracker: hash of last touched path + next expected
    /// offset. A read/write is sequential iff it continues where the
    /// previous access on the same file ended.
    last_file: u64,
    next_offset: u64,
}

impl Default for IoCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl IoCtx {
    pub fn new() -> Self {
        IoCtx {
            elapsed_ns: 0,
            concurrency: 1,
            stats: IoStats::default(),
            last_file: 0,
            next_offset: u64::MAX,
        }
    }

    /// A context declaring `concurrency` concurrently active processes.
    pub fn with_concurrency(concurrency: u32) -> Self {
        let mut ctx = Self::new();
        ctx.concurrency = concurrency.max(1);
        ctx
    }

    /// Advance the virtual clock.
    #[inline]
    pub fn charge_ns(&mut self, ns: u64) {
        self.elapsed_ns += ns;
    }

    #[inline]
    pub fn charge(&mut self, d: Duration) {
        self.elapsed_ns += d.as_nanos() as u64;
    }

    /// Virtual time elapsed in this session.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns
    }

    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }

    /// Reset clock and stats (keeps concurrency).
    pub fn reset(&mut self) {
        let c = self.concurrency;
        *self = Self::with_concurrency(c);
    }

    /// Record an access to `(file, offset..offset+len)` and report whether
    /// it required a seek. Used by seek-sensitive device models.
    pub fn note_access(&mut self, file_key: u64, offset: u64, len: u64) -> bool {
        let sequential = self.last_file == file_key && self.next_offset == offset;
        self.last_file = file_key;
        self.next_offset = offset + len;
        if !sequential {
            self.stats.seeks += 1;
        }
        !sequential
    }

    /// Fold another session's clock into this one as if it ran *after* it
    /// (sequential composition).
    pub fn absorb_sequential(&mut self, other: &IoCtx) {
        self.elapsed_ns += other.elapsed_ns;
        self.merge_stats(other);
    }

    /// Fold a set of sessions that ran *concurrently* into this one:
    /// the clock advances by the makespan (max over the sessions), the
    /// stats sum. Each concurrent session must have declared the shared
    /// contention itself (via [`IoCtx::with_concurrency`]) — this helper
    /// only composes already-contended clocks, mirroring how the
    /// organizer charges its distributor pool and how the streaming read
    /// path charges per-topic prefetch cursors.
    pub fn absorb_parallel<'a, I>(&mut self, others: I)
    where
        I: IntoIterator<Item = &'a IoCtx>,
    {
        let mut makespan = 0u64;
        for other in others {
            makespan = makespan.max(other.elapsed_ns);
            self.merge_stats(other);
        }
        self.elapsed_ns += makespan;
    }

    /// Fold another session's *stats* into this one without advancing the
    /// clock. For composers that account the time themselves (e.g. a
    /// pool that charges per-thread makespan via [`IoCtx::charge_ns`])
    /// but still owe the caller the I/O counters.
    pub fn absorb_stats(&mut self, other: &IoCtx) {
        self.merge_stats(other);
    }

    fn merge_stats(&mut self, other: &IoCtx) {
        self.stats.reads += other.stats.reads;
        self.stats.writes += other.stats.writes;
        self.stats.bytes_read += other.stats.bytes_read;
        self.stats.bytes_written += other.stats.bytes_written;
        self.stats.seeks += other.stats.seeks;
        self.stats.meta_ops += other.stats.meta_ops;
        self.stats.flushes += other.stats.flushes;
    }
}

/// Shared gauge of concurrently active workers, for thread pools whose
/// population of in-flight requests varies over time.
///
/// Experiments with a fixed process count declare it up front via
/// [`IoCtx::with_concurrency`]. A serving layer cannot: its effective
/// concurrency is "how many pool workers are busy *right now*". Each
/// worker wraps its request in [`ConcurrencyGauge::enter`], and the
/// returned guard's [`ActiveWorker::ctx`] yields an `IoCtx` declaring the
/// gauge's current occupancy, so cost-model backends divide shared
/// bandwidth by the number of requests actually in flight.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyGauge {
    active: std::sync::Arc<std::sync::atomic::AtomicU32>,
}

impl ConcurrencyGauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers currently inside an [`enter`](Self::enter) guard.
    pub fn active(&self) -> u32 {
        self.active.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Mark one worker busy until the guard drops.
    pub fn enter(&self) -> ActiveWorker {
        self.active.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ActiveWorker { gauge: self.clone() }
    }
}

/// RAII token for one busy worker; see [`ConcurrencyGauge`].
#[derive(Debug)]
pub struct ActiveWorker {
    gauge: ConcurrencyGauge,
}

impl ActiveWorker {
    /// An `IoCtx` declaring the gauge's occupancy at this moment
    /// (including this worker).
    pub fn ctx(&self) -> IoCtx {
        IoCtx::with_concurrency(self.gauge.active())
    }
}

impl Drop for ActiveWorker {
    fn drop(&mut self) {
        self.gauge.active.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// A shared monotonic event counter — "virtual time" for schedules that
/// need ordering without wall clocks.
///
/// Unlike [`IoCtx`]'s per-session nanosecond clock, a `LogicalClock`
/// counts *events*: every [`tick`](Self::tick) returns the next value in
/// one process-wide-shareable sequence. Fault injectors key their rules
/// off it so a failure schedule is a pure function of (seed, event
/// window) — identical on every replay, on any machine, at any host
/// speed. Clones share the counter.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    events: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl LogicalClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume and return the next event number (starting at 0).
    pub fn tick(&self) -> u64 {
        self.events.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Events consumed so far (the next `tick` returns this value).
    pub fn now(&self) -> u64 {
        self.events.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Stable 64-bit key for a path, used by the sequentiality tracker.
/// FNV-1a: tiny, deterministic, good enough for distinguishing files.
#[inline]
pub fn path_key(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut ctx = IoCtx::new();
        ctx.charge_ns(10);
        ctx.charge(Duration::from_nanos(5));
        assert_eq!(ctx.elapsed_ns(), 15);
    }

    #[test]
    fn sequential_detection() {
        let mut ctx = IoCtx::new();
        let f = path_key("/a");
        assert!(ctx.note_access(f, 0, 100), "first access seeks");
        assert!(!ctx.note_access(f, 100, 50), "continuation is sequential");
        assert!(ctx.note_access(f, 0, 10), "rewind seeks");
        assert!(ctx.note_access(path_key("/b"), 10, 10), "other file seeks");
        assert_eq!(ctx.stats.seeks, 3);
    }

    #[test]
    fn concurrency_clamped_to_one() {
        assert_eq!(IoCtx::with_concurrency(0).concurrency, 1);
    }

    #[test]
    fn absorb_sequential_sums() {
        let mut a = IoCtx::new();
        a.charge_ns(100);
        a.stats.reads = 2;
        let mut b = IoCtx::new();
        b.charge_ns(40);
        b.stats.reads = 3;
        a.absorb_sequential(&b);
        assert_eq!(a.elapsed_ns(), 140);
        assert_eq!(a.stats.reads, 5);
    }

    #[test]
    fn absorb_parallel_takes_makespan_and_sums_stats() {
        let mut a = IoCtx::new();
        a.charge_ns(100);
        let mut fast = IoCtx::new();
        fast.charge_ns(40);
        fast.stats.reads = 3;
        let mut slow = IoCtx::new();
        slow.charge_ns(90);
        slow.stats.reads = 5;
        a.absorb_parallel([&fast, &slow]);
        assert_eq!(a.elapsed_ns(), 190, "clock advances by max, not sum");
        assert_eq!(a.stats.reads, 8, "stats still sum");
        // Empty set is a no-op.
        a.absorb_parallel([]);
        assert_eq!(a.elapsed_ns(), 190);
    }

    #[test]
    fn gauge_tracks_occupancy() {
        let gauge = ConcurrencyGauge::new();
        assert_eq!(gauge.active(), 0);
        let a = gauge.enter();
        let b = gauge.enter();
        assert_eq!(gauge.active(), 2);
        assert_eq!(b.ctx().concurrency, 2);
        drop(a);
        assert_eq!(gauge.active(), 1);
        drop(b);
        assert_eq!(gauge.active(), 0);
        // An empty gauge still yields a valid (concurrency >= 1) context.
        assert_eq!(gauge.enter().ctx().concurrency, 1);
    }

    #[test]
    fn path_key_distinguishes() {
        assert_ne!(path_key("/a/b"), path_key("/a/c"));
        assert_eq!(path_key("/x"), path_key("/x"));
    }
}
