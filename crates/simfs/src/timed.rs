//! [`TimedStorage`]: wraps any backend with a [`DeviceModel`] and charges
//! the session's virtual clock for every operation.
//!
//! This is the "single-node server" platform of the paper's evaluation:
//! `TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4())` behaves
//! like a bag directory on the Ext4 NVMe box of §IV.C.

use crate::clock::{path_key, IoCtx};
use crate::device::DeviceModel;
use crate::error::FsResult;
use crate::storage::{DirEntry, Metadata, Storage};

/// A cost-model wrapper around an inner [`Storage`].
pub struct TimedStorage<S> {
    inner: S,
    device: DeviceModel,
    // Always-on registry handles, resolved once here so the per-op cost is
    // a few relaxed atomic adds (no name lookup, no lock).
    h_read: bora_obs::Histogram,
    h_write: bora_obs::Histogram,
    c_read_bytes: bora_obs::Counter,
    c_write_bytes: bora_obs::Counter,
}

impl<S: Storage> TimedStorage<S> {
    pub fn new(inner: S, device: DeviceModel) -> Self {
        TimedStorage {
            inner,
            device,
            h_read: bora_obs::histogram("fs.read.virt_ns"),
            h_write: bora_obs::histogram("fs.write.virt_ns"),
            c_read_bytes: bora_obs::counter("fs.read.bytes"),
            c_write_bytes: bora_obs::counter("fs.write.bytes"),
        }
    }

    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn charge_read(&self, path: &str, offset: u64, len: u64, ctx: &mut IoCtx) {
        let seek = ctx.note_access(path_key(path), offset, len);
        let ns = self.device.read_cost_ns(len, seek, ctx.concurrency);
        ctx.charge_ns(ns);
        ctx.stats.reads += 1;
        ctx.stats.bytes_read += len;
        self.h_read.record(ns);
        self.c_read_bytes.add(len);
    }

    fn charge_write(&self, path: &str, offset: u64, len: u64, ctx: &mut IoCtx) {
        let seek = ctx.note_access(path_key(path), offset, len);
        let ns = self.device.write_cost_ns(len, seek, ctx.concurrency);
        ctx.charge_ns(ns);
        ctx.stats.writes += 1;
        ctx.stats.bytes_written += len;
        self.h_write.record(ns);
        self.c_write_bytes.add(len);
    }

    fn charge_meta(&self, ctx: &mut IoCtx) {
        ctx.charge_ns(self.device.meta_cost_ns(ctx.concurrency));
        ctx.stats.meta_ops += 1;
    }
}

impl<S: Storage> Storage for TimedStorage<S> {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.inner.create(path, ctx)
    }

    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        let sp = bora_obs::span("fs.append");
        let virt0 = ctx.elapsed_ns();
        // Appends continue at EOF; model them against the writer's own
        // cursor so a steady append stream is sequential.
        let off = self.inner.len(path, ctx).unwrap_or(0);
        self.charge_write(path, off, data.len() as u64, ctx);
        let out = self.inner.append(path, data, ctx);
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        let sp = bora_obs::span("fs.write_at");
        let virt0 = ctx.elapsed_ns();
        self.charge_write(path, offset, data.len() as u64, ctx);
        let out = self.inner.write_at(path, offset, data, ctx);
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let sp = bora_obs::span("fs.read_at");
        let virt0 = ctx.elapsed_ns();
        self.charge_read(path, offset, len as u64, ctx);
        let out = self.inner.read_at(path, offset, len, ctx);
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let sp = bora_obs::span("fs.read_all");
        let virt0 = ctx.elapsed_ns();
        let len = self.inner.len(path, ctx)?;
        self.charge_read(path, 0, len, ctx);
        let out = self.inner.read_at(path, 0, len as usize, ctx);
        sp.end_virt(ctx.elapsed_ns() - virt0);
        out
    }

    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.charge_meta(ctx);
        self.inner.len(path, ctx)
    }

    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.charge_meta(ctx);
        self.inner.exists(path, ctx)
    }

    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.charge_meta(ctx);
        self.inner.stat(path, ctx)
    }

    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.inner.mkdir_all(path, ctx)
    }

    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        let sp = bora_obs::span("fs.read_dir");
        let virt0 = ctx.elapsed_ns();
        let entries = self.inner.read_dir(path, ctx)?;
        // One metadata op for the opendir plus a per-entry getdents share.
        self.charge_meta(ctx);
        ctx.charge_ns(entries.len() as u64 * (self.device.meta_op_ns / 16).max(1));
        sp.end_virt(ctx.elapsed_ns() - virt0);
        Ok(entries)
    }

    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.inner.remove_file(path, ctx)
    }

    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.inner.remove_dir_all(path, ctx)
    }

    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.charge_meta(ctx);
        self.inner.rename(from, to, ctx)
    }

    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        ctx.charge_ns(self.device.flush_ns);
        ctx.stats.flushes += 1;
        self.inner.flush(path, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStorage;

    fn fs() -> TimedStorage<MemStorage> {
        TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4())
    }

    #[test]
    fn reads_advance_clock() {
        let fs = fs();
        let mut ctx = IoCtx::new();
        fs.append("/f", &[0u8; 1024 * 1024], &mut ctx).unwrap();
        let before = ctx.elapsed_ns();
        fs.read_all("/f", &mut ctx).unwrap();
        assert!(ctx.elapsed_ns() > before);
        assert_eq!(ctx.stats.bytes_read, 1024 * 1024);
    }

    #[test]
    fn sequential_stream_cheaper_than_random() {
        let fs = fs();
        let mut setup = IoCtx::new();
        fs.append("/f", &vec![0u8; 1 << 20], &mut setup).unwrap();

        let mut seq = IoCtx::new();
        for i in 0..256u64 {
            fs.read_at("/f", i * 4096, 4096, &mut seq).unwrap();
        }

        let mut rnd = IoCtx::new();
        for i in 0..256u64 {
            // Stride pattern breaks sequentiality on every access.
            let off = (i * 37 % 256) * 4096;
            fs.read_at("/f", off, 4096, &mut rnd).unwrap();
        }
        assert!(rnd.elapsed_ns() > seq.elapsed_ns() * 3);
    }

    #[test]
    fn append_stream_is_sequential() {
        let fs = fs();
        let mut ctx = IoCtx::new();
        for _ in 0..100 {
            fs.append("/log", &[0u8; 512], &mut ctx).unwrap();
        }
        // Appends after the first should not count as seeks.
        assert_eq!(ctx.stats.seeks, 1);
    }

    #[test]
    fn flush_charges_fsync() {
        let fs = fs();
        let mut ctx = IoCtx::new();
        fs.append("/f", b"x", &mut ctx).unwrap();
        let before = ctx.elapsed_ns();
        fs.flush("/f", &mut ctx).unwrap();
        assert_eq!(ctx.stats.flushes, 1);
        assert!(ctx.elapsed_ns() >= before + DeviceModel::nvme_ext4().flush_ns);
    }

    #[test]
    fn hdd_slower_than_ssd_for_random_reads() {
        let mem1 = MemStorage::new();
        let mem2 = MemStorage::new();
        let mut setup = IoCtx::new();
        for m in [&mem1, &mem2] {
            m.append("/f", &vec![0u8; 1 << 20], &mut setup).unwrap();
        }
        let ssd = TimedStorage::new(mem1, DeviceModel::nvme_ext4());
        let hdd = TimedStorage::new(mem2, DeviceModel::hdd());

        let mut c_ssd = IoCtx::new();
        let mut c_hdd = IoCtx::new();
        for i in 0..64u64 {
            let off = (i * 61 % 256) * 4096;
            ssd.read_at("/f", off, 4096, &mut c_ssd).unwrap();
            hdd.read_at("/f", off, 4096, &mut c_hdd).unwrap();
        }
        assert!(c_hdd.elapsed_ns() > c_ssd.elapsed_ns() * 10);
    }

    #[test]
    fn data_still_correct_through_wrapper() {
        let fs = fs();
        let mut ctx = IoCtx::new();
        fs.append("/data", b"abcdefgh", &mut ctx).unwrap();
        assert_eq!(fs.read_at("/data", 2, 3, &mut ctx).unwrap(), b"cde");
        let entries = fs.read_dir("/", &mut ctx).unwrap();
        assert_eq!(entries.len(), 1);
    }
}
