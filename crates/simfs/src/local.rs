//! [`LocalStorage`]: passthrough to the host filesystem.
//!
//! Used by examples and integration tests that want real disk I/O (the
//! paper's "BORA on Ext4" configuration, minus FUSE). Virtual-clock charges
//! are zero — wall-clock time here *is* real time.

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::clock::IoCtx;
use crate::error::{FsError, FsResult};
use crate::path::normalize;
use crate::storage::{DirEntry, EntryKind, Metadata, Storage};

/// Host-filesystem backend rooted at a directory.
///
/// Virtual paths (`/bag1/topic/data`) map to `root/bag1/topic/data`.
pub struct LocalStorage {
    root: PathBuf,
}

impl LocalStorage {
    /// Create a backend rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> FsResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalStorage { root })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn host_path(&self, raw: &str) -> FsResult<PathBuf> {
        let p = normalize(raw)?;
        Ok(self.root.join(p.trim_start_matches('/')))
    }

    fn map_err(p: &str, e: std::io::Error) -> FsError {
        match e.kind() {
            std::io::ErrorKind::NotFound => FsError::NotFound(p.to_owned()),
            std::io::ErrorKind::AlreadyExists => FsError::AlreadyExists(p.to_owned()),
            _ => FsError::Io(format!("{p}: {e}")),
        }
    }
}

impl Storage for LocalStorage {
    fn create(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        if let Some(parent) = hp.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::map_err(path, e))?;
        }
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&hp)
            .map_err(|e| Self::map_err(path, e))?;
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8], _ctx: &mut IoCtx) -> FsResult<u64> {
        let hp = self.host_path(path)?;
        if let Some(parent) = hp.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::map_err(path, e))?;
        }
        let mut f = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&hp)
            .map_err(|e| Self::map_err(path, e))?;
        let off = f.metadata().map_err(|e| Self::map_err(path, e))?.len();
        f.write_all(data).map_err(|e| Self::map_err(path, e))?;
        Ok(off)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8], _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        let mut f =
            fs::OpenOptions::new().write(true).open(&hp).map_err(|e| Self::map_err(path, e))?;
        let len = f.metadata().map_err(|e| Self::map_err(path, e))?.len();
        if offset > len {
            return Err(FsError::OutOfBounds {
                path: path.to_owned(),
                offset,
                len: data.len() as u64,
                file_len: len,
            });
        }
        f.seek(SeekFrom::Start(offset)).map_err(|e| Self::map_err(path, e))?;
        f.write_all(data).map_err(|e| Self::map_err(path, e))?;
        Ok(())
    }

    fn read_at(&self, path: &str, offset: u64, len: usize, _ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        let hp = self.host_path(path)?;
        let mut f = fs::File::open(&hp).map_err(|e| Self::map_err(path, e))?;
        let file_len = f.metadata().map_err(|e| Self::map_err(path, e))?.len();
        if offset + len as u64 > file_len {
            return Err(FsError::OutOfBounds {
                path: path.to_owned(),
                offset,
                len: len as u64,
                file_len,
            });
        }
        f.seek(SeekFrom::Start(offset)).map_err(|e| Self::map_err(path, e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| Self::map_err(path, e))?;
        Ok(buf)
    }

    fn len(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<u64> {
        let hp = self.host_path(path)?;
        let md = fs::metadata(&hp).map_err(|e| Self::map_err(path, e))?;
        if md.is_dir() {
            return Err(FsError::IsADirectory(path.to_owned()));
        }
        Ok(md.len())
    }

    fn exists(&self, path: &str, _ctx: &mut IoCtx) -> bool {
        self.host_path(path).map(|hp| hp.exists()).unwrap_or(false)
    }

    fn stat(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<Metadata> {
        let hp = self.host_path(path)?;
        let md = fs::metadata(&hp).map_err(|e| Self::map_err(path, e))?;
        Ok(Metadata {
            kind: if md.is_dir() { EntryKind::Dir } else { EntryKind::File },
            len: if md.is_dir() { 0 } else { md.len() },
        })
    }

    fn mkdir_all(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        fs::create_dir_all(&hp).map_err(|e| Self::map_err(path, e))
    }

    fn read_dir(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        let hp = self.host_path(path)?;
        let mut out = Vec::new();
        for entry in fs::read_dir(&hp).map_err(|e| Self::map_err(path, e))? {
            let entry = entry.map_err(|e| Self::map_err(path, e))?;
            let md = entry.metadata().map_err(|e| Self::map_err(path, e))?;
            out.push(DirEntry {
                name: entry.file_name().to_string_lossy().into_owned(),
                kind: if md.is_dir() { EntryKind::Dir } else { EntryKind::File },
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn remove_file(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        fs::remove_file(&hp).map_err(|e| Self::map_err(path, e))
    }

    fn remove_dir_all(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        if hp.is_dir() {
            fs::remove_dir_all(&hp).map_err(|e| Self::map_err(path, e))
        } else {
            fs::remove_file(&hp).map_err(|e| Self::map_err(path, e))
        }
    }

    fn rename(&self, from: &str, to: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let from_hp = self.host_path(from)?;
        let to_hp = self.host_path(to)?;
        if to_hp.exists() {
            return Err(FsError::AlreadyExists(to.to_owned()));
        }
        if let Some(parent) = to_hp.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::map_err(to, e))?;
        }
        fs::rename(&from_hp, &to_hp).map_err(|e| Self::map_err(from, e))
    }

    fn flush(&self, path: &str, _ctx: &mut IoCtx) -> FsResult<()> {
        let hp = self.host_path(path)?;
        let f = fs::File::open(&hp).map_err(|e| Self::map_err(path, e))?;
        f.sync_all().map_err(|e| Self::map_err(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_fs(tag: &str) -> LocalStorage {
        let dir =
            std::env::temp_dir().join(format!("simfs-local-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        LocalStorage::new(dir).unwrap()
    }

    #[test]
    fn round_trip_on_disk() {
        let fs = tmp_fs("rt");
        let mut ctx = IoCtx::new();
        fs.append("/bag/topic/data", b"hello disk", &mut ctx).unwrap();
        assert_eq!(fs.read_all("/bag/topic/data", &mut ctx).unwrap(), b"hello disk");
        assert_eq!(fs.read_at("/bag/topic/data", 6, 4, &mut ctx).unwrap(), b"disk");
        let entries = fs.read_dir("/bag", &mut ctx).unwrap();
        assert_eq!(entries[0].name, "topic");
        fs.remove_dir_all("/bag", &mut ctx).unwrap();
        assert!(!fs.exists("/bag", &mut ctx));
    }

    #[test]
    fn rename_and_stat() {
        let fs = tmp_fs("mv");
        let mut ctx = IoCtx::new();
        fs.append("/a/f", b"xy", &mut ctx).unwrap();
        fs.rename("/a/f", "/b/g", &mut ctx).unwrap();
        let md = fs.stat("/b/g", &mut ctx).unwrap();
        assert_eq!(md.len, 2);
        assert!(!fs.exists("/a/f", &mut ctx));
    }

    #[test]
    fn read_out_of_bounds() {
        let fs = tmp_fs("oob");
        let mut ctx = IoCtx::new();
        fs.append("/f", b"abc", &mut ctx).unwrap();
        assert!(matches!(fs.read_at("/f", 1, 10, &mut ctx), Err(FsError::OutOfBounds { .. })));
    }
}
