//! Normalized path handling for the virtual filesystems.
//!
//! Virtual paths are absolute, `/`-separated, with no trailing slash (except
//! the root itself), no empty components, and no `.`/`..` traversal. Keeping
//! them as plain normalized `String`s makes them cheap hash keys for the
//! in-memory backends.

use crate::error::{FsError, FsResult};

/// Normalize `raw` into canonical form (`/a/b/c`).
///
/// Accepts optional leading `/`, collapses repeated separators, rejects
/// `.`/`..` components and empty paths.
pub fn normalize(raw: &str) -> FsResult<String> {
    let mut out = String::with_capacity(raw.len() + 1);
    let mut any = false;
    for comp in raw.split('/') {
        match comp {
            "" => continue,
            "." | ".." => return Err(FsError::BadPath(raw.to_owned())),
            c => {
                out.push('/');
                out.push_str(c);
                any = true;
            }
        }
    }
    if !any {
        if raw.contains('/') {
            return Ok("/".to_owned()); // the root
        }
        return Err(FsError::BadPath(raw.to_owned()));
    }
    Ok(out)
}

/// Parent directory of a normalized path (`/a/b` → `/a`, `/a` → `/`).
pub fn parent(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

/// Final component of a normalized path.
pub fn file_name(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// Join a normalized directory with a relative component.
pub fn join(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

/// True if `path` is `dir` itself or lies beneath it.
pub fn starts_with(path: &str, dir: &str) -> bool {
    if dir == "/" {
        return true;
    }
    path == dir || (path.starts_with(dir) && path.as_bytes().get(dir.len()) == Some(&b'/'))
}

/// Ancestor directories of a normalized path, outermost first, excluding
/// the root and the path itself: `/a/b/c` → `["/a", "/a/b"]`.
pub fn ancestors(path: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = path.as_bytes();
    for i in 1..bytes.len() {
        if bytes[i] == b'/' {
            out.push(path[..i].to_owned());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_forms() {
        assert_eq!(normalize("/a/b").unwrap(), "/a/b");
        assert_eq!(normalize("a/b").unwrap(), "/a/b");
        assert_eq!(normalize("//a///b/").unwrap(), "/a/b");
        assert_eq!(normalize("/").unwrap(), "/");
    }

    #[test]
    fn normalize_rejects_traversal_and_empty() {
        assert!(normalize("").is_err());
        assert!(normalize("/a/../b").is_err());
        assert!(normalize("./a").is_err());
    }

    #[test]
    fn parent_and_file_name() {
        assert_eq!(parent("/a/b/c"), "/a/b");
        assert_eq!(parent("/a"), "/");
        assert_eq!(file_name("/a/b/c"), "c");
        assert_eq!(file_name("/a"), "a");
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "x"), "/x");
        assert_eq!(join("/a", "x"), "/a/x");
    }

    #[test]
    fn starts_with_is_component_wise() {
        assert!(starts_with("/a/b", "/a"));
        assert!(starts_with("/a", "/a"));
        assert!(!starts_with("/ab", "/a"));
        assert!(starts_with("/anything", "/"));
    }

    #[test]
    fn ancestors_outermost_first() {
        assert_eq!(ancestors("/a/b/c"), vec!["/a".to_owned(), "/a/b".to_owned()]);
        assert!(ancestors("/a").is_empty());
    }
}
