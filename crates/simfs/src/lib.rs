//! Storage substrate for the BORA reproduction.
//!
//! The BORA paper (SC20) evaluates its middleware on three platforms: a
//! single-node NVMe server running Ext4/XFS, a 4-node PVFS cluster on
//! 10 GbE, and a Tianhe-1A Lustre storage subsystem on InfiniBand. None of
//! those are available here, so this crate provides the closest synthetic
//! equivalents that exercise the same code paths:
//!
//! * [`Storage`] — the filesystem trait all middleware in the workspace is
//!   written against (bags, BORA containers, PLFS-lite containers, the DB
//!   engines' WALs).
//! * [`MemStorage`] — a real in-memory filesystem: all data paths move real
//!   bytes, so every algorithm above it is genuine.
//! * [`LocalStorage`] — a passthrough to the host filesystem for examples
//!   and integration tests that want real disk I/O.
//! * [`TimedStorage`] — wraps any storage with a [`DeviceModel`] (NVMe SSD,
//!   HDD, RAID-0 presets) and charges a per-session **virtual clock**
//!   ([`IoCtx`]), so experiments at paper scale (up to 4.2 TB logical) are
//!   deterministic and finish in seconds.
//! * [`ClusterStorage`] — a striped multi-server filesystem with a network
//!   model and a metadata-server cost, configurable as the paper's 4-node
//!   PVFS cluster ([`ClusterConfig::pvfs4`]) or the Tianhe-1A Lustre
//!   subsystem ([`ClusterConfig::tianhe_lustre`]).
//! * [`parallel`] — a deterministic fork-join harness for the swarm
//!   experiments (N processes, one bag each; makespan = max of per-process
//!   virtual clocks under a shared-resource contention model).
//!
//! Timing methodology (also documented in `DESIGN.md`): data is moved for
//! real; *time* is charged to the session's virtual clock from first
//! principles (seek/op latency + bytes/bandwidth + network RTT + metadata
//! service time), with contention factors derived from the experiment's
//! declared process count. Real wall-clock benches live in the `bench`
//! crate's Criterion suites.

pub mod clock;
pub mod cluster;
pub mod device;
pub mod error;
pub mod faulty;
pub mod local;
pub mod mem;
pub mod parallel;
pub mod path;
pub mod storage;
pub mod timed;

pub use clock::{ActiveWorker, ConcurrencyGauge, IoCtx, IoStats, LogicalClock};
pub use cluster::{ClusterConfig, ClusterStorage};
pub use device::{DeviceModel, NetModel};
pub use error::{FsError, FsResult};
pub use faulty::{FaultKind, FaultRule, FaultyStorage, PowerCut, PowerCutSchedule};
pub use local::LocalStorage;
pub use mem::MemStorage;
pub use parallel::run_parallel;
pub use storage::{DirEntry, EntryKind, Metadata, Storage};
pub use timed::TimedStorage;
