//! Deterministic fork-join harness for multi-process experiments.
//!
//! The paper's swarm scenario (§IV.E) launches up to 100 processes, each
//! opening and querying its own bag. [`run_parallel`] reproduces that:
//! each task gets an [`IoCtx`] pre-configured with the declared concurrency
//! (so cost models apply contention), tasks run on real threads, and the
//! reported makespan is the *maximum* virtual time across tasks — the time
//! the whole swarm analysis takes.

use std::time::Duration;

use crate::clock::IoCtx;

/// Result of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Per-task session contexts, in task order.
    pub tasks: Vec<IoCtx>,
}

impl ParallelOutcome {
    /// Virtual makespan: the slowest task's clock.
    pub fn makespan_ns(&self) -> u64 {
        self.tasks.iter().map(|c| c.elapsed_ns()).max().unwrap_or(0)
    }

    pub fn makespan(&self) -> Duration {
        Duration::from_nanos(self.makespan_ns())
    }

    /// Sum of all tasks' virtual time (aggregate resource seconds).
    pub fn total_ns(&self) -> u64 {
        self.tasks.iter().map(|c| c.elapsed_ns()).sum()
    }
}

/// Run `n_tasks` closures concurrently, each with an `IoCtx` declaring the
/// full task count as its concurrency (the paper dedicates one process per
/// bag, all started simultaneously).
///
/// The closure receives `(task_index, &mut IoCtx)`. Panics in tasks
/// propagate. Determinism: each task's virtual clock depends only on its
/// own operation sequence and the declared concurrency — not on host
/// scheduling — so results are reproducible run to run.
pub fn run_parallel<F>(n_tasks: usize, f: F) -> ParallelOutcome
where
    F: Fn(usize, &mut IoCtx) + Send + Sync,
{
    let mut ctxs: Vec<IoCtx> =
        (0..n_tasks).map(|_| IoCtx::with_concurrency(n_tasks as u32)).collect();

    crossbeam::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(n_tasks);
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            handles.push(scope.spawn(move |_| {
                f(i, ctx);
            }));
        }
        for h in handles {
            h.join().expect("parallel task panicked");
        }
    })
    .expect("scope failed");

    ParallelOutcome { tasks: ctxs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::mem::MemStorage;
    use crate::storage::Storage;
    use crate::timed::TimedStorage;

    #[test]
    fn makespan_is_max_total_is_sum() {
        let outcome = run_parallel(4, |i, ctx| {
            ctx.charge_ns((i as u64 + 1) * 100);
        });
        assert_eq!(outcome.makespan_ns(), 400);
        assert_eq!(outcome.total_ns(), 1000);
    }

    #[test]
    fn tasks_see_declared_concurrency() {
        let outcome = run_parallel(8, |_, ctx| {
            assert_eq!(ctx.concurrency, 8);
        });
        assert_eq!(outcome.tasks.len(), 8);
    }

    #[test]
    fn contention_visible_through_storage() {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut setup = IoCtx::new();
        for i in 0..8 {
            fs.append(&format!("/bag{i}"), &vec![0u8; 1 << 20], &mut setup).unwrap();
        }

        // 1 process reading one file vs 8 processes each reading their own:
        // per-process time must grow under contention.
        let solo = run_parallel(1, |_, ctx| {
            fs.read_all("/bag0", ctx).unwrap();
        });
        let crowd = run_parallel(8, |i, ctx| {
            fs.read_all(&format!("/bag{i}"), ctx).unwrap();
        });
        assert!(crowd.makespan_ns() > solo.makespan_ns() * 4);
    }

    #[test]
    fn determinism_across_runs() {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::hdd());
        let mut setup = IoCtx::new();
        for i in 0..4 {
            fs.append(&format!("/f{i}"), &vec![0u8; 64 * 1024], &mut setup).unwrap();
        }
        let run = || {
            run_parallel(4, |i, ctx| {
                fs.read_all(&format!("/f{i}"), ctx).unwrap();
            })
            .makespan_ns()
        };
        assert_eq!(run(), run());
    }
}
