//! Result tables: aligned console printing and CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A result table for one experiment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `fig13a`.
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended under the table (paper-vs-measured
    /// commentary, scale disclosures).
    pub notes: Vec<String>,
    /// Per-experiment telemetry rows (`name`, `value`), taken as a
    /// [`bora_obs`] registry delta around the experiment run. Appended to
    /// the CSV after a blank line so the main table stays parseable.
    pub metrics: Vec<(String, String)>,
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            metrics: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        if !self.metrics.is_empty() {
            let _ = writeln!(out, "  telemetry:");
            for (k, v) in &self.metrics {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        out
    }

    /// CSV serialization (RFC-4180-ish quoting).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        }
        if !self.metrics.is_empty() {
            // Blank line separates the metrics section from the table body so
            // naive `split('\n')` consumers of the main table are unaffected.
            let _ = writeln!(out);
            let _ = writeln!(out, "metric,value");
            for (k, v) in &self.metrics {
                let _ = writeln!(out, "{},{}", field(k), field(v));
            }
        }
        out
    }

    /// Write `<dir>/<id>.csv`.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Format virtual nanoseconds as engineering-friendly milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Format virtual nanoseconds as microseconds (sub-millisecond effects).
pub fn us(ns: u64) -> String {
    format!("{:.2} µs", ns as f64 / 1e3)
}

/// Format a speedup ratio.
pub fn speedup(base_ns: u64, ours_ns: u64) -> String {
    if ours_ns == 0 {
        return "inf".into();
    }
    format!("{:.2}x", base_ns as f64 / ours_ns as f64)
}

/// Format a byte count in GiB/MiB.
pub fn size(bytes: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= 1024.0 * MIB {
        format!("{:.2} GiB", b / (1024.0 * MIB))
    } else {
        format!("{:.1} MiB", b / MIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["beta, the second".into(), "2".into()]);
        t.note("scaled run");
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("fig0"));
        assert!(r.contains("alpha"));
        assert!(r.contains("note: scaled run"));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"beta, the second\""));
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", "x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_metrics_section_appended_after_blank_line() {
        let mut t = sample();
        t.metrics.push(("bora.open.count".into(), "3".into()));
        t.metrics.push(("fs.read_at.p99".into(), "8191".into()));
        let csv = t.to_csv();
        // The table body is byte-identical to the metrics-free rendering, so
        // existing column parsers that stop at the first blank line still work.
        let plain = sample().to_csv();
        assert!(csv.starts_with(&plain));
        let tail = &csv[plain.len()..];
        assert_eq!(tail, "\nmetric,value\nbora.open.count,3\nfs.read_at.p99,8191\n");
        // Console rendering carries the same telemetry.
        let r = t.render();
        assert!(r.contains("telemetry:"));
        assert!(r.contains("bora.open.count = 3"));
    }

    #[test]
    fn csv_without_metrics_has_no_trailing_section() {
        let csv = sample().to_csv();
        assert!(!csv.contains("metric,value"));
        assert!(!csv.contains("\n\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(speedup(200, 100), "2.00x");
        assert_eq!(size(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
