//! Experiment harness for the BORA reproduction.
//!
//! One module per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). Each experiment is an ordinary function that
//! builds its workload, runs baseline and BORA code paths on the
//! appropriate simulated platform, and returns a [`report::Table`] that
//! the `repro` binary prints and saves as CSV. Integration tests call the
//! same functions with small scales and assert the paper's qualitative
//! claims (who wins, by roughly what factor).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! ```

pub mod env;
pub mod experiments;
pub mod report;

pub use env::{Platform, ScaleConfig};
pub use report::Table;
