//! Experiment environments: platforms, scales, and workload setup helpers.

use std::sync::Arc;

use bora::{BoraFs, BoraFsOptions};
use rosbag::BagWriterOptions;
use simfs::{ClusterConfig, ClusterStorage, DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::{generate_bag, GenOptions, TumBag};

/// One of the paper's evaluation platforms, as a trait object.
#[derive(Clone)]
pub struct Platform {
    pub name: &'static str,
    pub storage: Arc<dyn Storage>,
}

impl Platform {
    /// Single-node NVMe server, Ext4 (§IV.C).
    pub fn ext4() -> Self {
        Platform {
            name: "Ext4",
            storage: Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4())),
        }
    }

    /// Single-node NVMe server, XFS.
    pub fn xfs() -> Self {
        Platform {
            name: "XFS",
            storage: Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_xfs())),
        }
    }

    /// 4-node PVFS cluster (§IV.D).
    pub fn pvfs() -> Self {
        Platform { name: "PVFS", storage: Arc::new(ClusterStorage::new(ClusterConfig::pvfs4())) }
    }

    /// Tianhe-1A Lustre storage subsystem (§IV.E).
    pub fn tianhe() -> Self {
        Platform {
            name: "Lustre",
            storage: Arc::new(ClusterStorage::new(ClusterConfig::tianhe_lustre())),
        }
    }
}

/// Global scale configuration (CLI-settable).
///
/// `payload_scale` shrinks image payloads so paper-size workloads fit in
/// RAM. Structured messages (IMU/TF/CameraInfo/markers) keep their real
/// sizes; at the default scale the image topics still dominate the byte
/// share, as in Table II. Both baseline and BORA shrink identically, so
/// ratios are preserved. See EXPERIMENTS.md for the fidelity discussion.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Image payload scale for 2.9 GB-class bags.
    pub small: f64,
    /// Image payload scale for 21 GB-class bags.
    pub large: f64,
    /// Image payload scale for swarm (42 GB-class) bags.
    pub swarm: f64,
    /// Distinct bags materialized per swarm (robot i uses bag i mod this).
    pub swarm_distinct_bags: usize,
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            small: 1.0 / 32.0,
            large: 1.0 / 128.0,
            swarm: 1.0 / 512.0,
            swarm_distinct_bags: 2,
            seed: 0xB04A,
        }
    }
}

impl ScaleConfig {
    /// A very small configuration for integration tests.
    pub fn tiny() -> Self {
        ScaleConfig {
            small: 1.0 / 512.0,
            large: 1.0 / 2048.0,
            swarm: 1.0 / 4096.0,
            swarm_distinct_bags: 2,
            seed: 0xB04A,
        }
    }

    /// Generator options for a bag of `gb` logical gigabytes using the
    /// payload scale appropriate to its class.
    pub fn gen_for_gb(&self, gb: f64) -> GenOptions {
        let ps = if gb <= 5.0 {
            self.small
        } else if gb <= 25.0 {
            self.large
        } else {
            self.swarm
        };
        GenOptions { writer: BagWriterOptions::default(), ..GenOptions::for_gb(gb, ps, self.seed) }
    }
}

/// A prepared single-bag environment: the ordinary bag plus its BORA
/// container on the same platform.
pub struct BagEnv {
    pub platform: Platform,
    pub bag_path: String,
    pub container_root: String,
    pub bag: TumBag,
    /// Virtual time the one-time BORA duplication took.
    pub duplicate_ns: u64,
}

/// Generate a Handheld-SLAM bag of `gb` logical GB on `platform` and
/// duplicate it into a BORA container.
pub fn setup_bag(platform: Platform, gb: f64, scales: &ScaleConfig) -> BagEnv {
    let mut ctx = IoCtx::new();
    let bag_path = format!("/bags/hs_{:.1}gb.bag", gb);
    let opts = scales.gen_for_gb(gb);
    let bag = generate_bag(&platform.storage, &bag_path, &opts, &mut ctx).expect("bag generation");

    let container_root = format!("/bora/hs_{:.1}gb", gb);
    let mut dup_ctx = IoCtx::new();
    bora::organizer::duplicate(
        &platform.storage,
        &bag_path,
        &platform.storage,
        &container_root,
        &bora::OrganizerOptions::default(),
        &mut dup_ctx,
    )
    .expect("bora duplicate");

    BagEnv { platform, bag_path, container_root, bag, duplicate_ns: dup_ctx.elapsed_ns() }
}

/// Mount a BoraFs pair (front/back) on a platform — used by experiments
/// that exercise the front-end path.
pub fn mount_borafs(platform: &Platform) -> BoraFs<Arc<dyn Storage>> {
    let mut ctx = IoCtx::new();
    BoraFs::mount(
        Arc::clone(&platform.storage),
        "/mnt/bora",
        "/backend/bora",
        BoraFsOptions::default(),
        &mut ctx,
    )
    .expect("mount")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bora::BoraBag;

    #[test]
    fn setup_bag_builds_matching_container() {
        let env = setup_bag(Platform::ext4(), 0.05, &ScaleConfig::tiny());
        let mut ctx = IoCtx::new();
        let bag = BoraBag::open(&env.platform.storage, &env.container_root, &mut ctx).unwrap();
        assert_eq!(bag.meta().message_count(), env.bag.message_count);
        assert!(env.duplicate_ns > 0);
    }

    #[test]
    fn platforms_construct() {
        for p in [Platform::ext4(), Platform::xfs(), Platform::pvfs(), Platform::tianhe()] {
            let mut ctx = IoCtx::new();
            p.storage.mkdir_all("/x", &mut ctx).unwrap();
            assert!(p.storage.exists("/x", &mut ctx));
        }
    }

    #[test]
    fn scale_selects_class() {
        let s = ScaleConfig::default();
        assert_eq!(s.gen_for_gb(2.9).payload_scale, s.small);
        assert_eq!(s.gen_for_gb(21.0).payload_scale, s.large);
        assert_eq!(s.gen_for_gb(42.0).payload_scale, s.swarm);
    }
}
