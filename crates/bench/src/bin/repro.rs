//! `repro` — regenerate the BORA paper's tables and figures.
//!
//! ```text
//! repro list                       # show available experiments
//! repro all [options]              # run everything, in paper order
//! repro fig10 fig13 [options]      # run specific experiments
//!
//! options:
//!   --scale-small  F    image payload scale for 2.9 GB-class bags  (default 1/32)
//!   --scale-large  F    image payload scale for 21 GB-class bags   (default 1/128)
//!   --scale-swarm  F    image payload scale for 42 GB swarm bags   (default 1/512)
//!   --distinct-bags N   materialized bags per swarm                (default 2)
//!   --seed N            workload seed                              (default 0xB04A)
//!   --out DIR           CSV output directory                       (default results/)
//!   --tiny              preset: very small scales for smoke runs
//!   --quick             alias for --tiny
//! ```

use std::path::PathBuf;
use std::time::Instant;

use bench::env::ScaleConfig;
use bench::experiments::registry;

fn main() {
    bora_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }

    let mut scales = ScaleConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut run_all = false;

    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "list" => {
                for e in registry() {
                    println!("{:10} {:10} {}", e.id, e.paper_ref, e.description);
                }
                return;
            }
            "all" => run_all = true,
            "--tiny" | "--quick" => scales = ScaleConfig::tiny(),
            "--scale-small" => scales.small = take_f64(&mut it, "--scale-small"),
            "--scale-large" => scales.large = take_f64(&mut it, "--scale-large"),
            "--scale-swarm" => scales.swarm = take_f64(&mut it, "--scale-swarm"),
            "--distinct-bags" => {
                scales.swarm_distinct_bags = take_f64(&mut it, "--distinct-bags") as usize
            }
            "--seed" => scales.seed = take_f64(&mut it, "--seed") as u64,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            id if !id.starts_with('-') => wanted.push(id.to_owned()),
            other => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
        }
    }

    let all = registry();
    let selected: Vec<_> = if run_all {
        all.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &wanted {
            match all.iter().find(|e| e.id == *id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment '{id}' — try `repro list`");
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    if selected.is_empty() {
        usage();
        std::process::exit(2);
    }

    println!(
        "# BORA reproduction — scales: small={:.5} large={:.5} swarm={:.5} seed={:#x}",
        scales.small, scales.large, scales.swarm, scales.seed
    );
    let mut telemetry: Vec<String> = Vec::new();
    for exp in selected {
        let started = Instant::now();
        let metrics_before = bora_obs::snapshot();
        println!("\n### {} ({}) — {}", exp.id, exp.paper_ref, exp.description);
        let mut tables = (exp.run)(&scales);
        let delta = bora_obs::snapshot().delta_since(&metrics_before);
        let wall = started.elapsed().as_secs_f64();
        for t in &mut tables {
            t.metrics = delta.to_rows();
            println!("\n{}", t.render());
            if let Err(e) = t.save_csv(&out_dir) {
                eprintln!("warning: could not save {}.csv: {e}", t.id);
            }
        }
        telemetry.push(format!(
            "{{\"id\":{},\"wall_secs\":{:.3},\"metrics\":{}}}",
            bora_obs::json_string(exp.id),
            wall,
            delta.to_json()
        ));
        println!("[{} finished in {:.1}s]", exp.id, wall);
    }
    let telemetry_json = format!("[\n{}\n]\n", telemetry.join(",\n"));
    if std::fs::create_dir_all(&out_dir)
        .and_then(|()| std::fs::write(out_dir.join("telemetry.json"), telemetry_json))
        .is_ok()
    {
        println!("per-experiment metrics in {}", out_dir.join("telemetry.json").display());
    }
    match bora_obs::write_trace_if_enabled(&out_dir.join("trace.json").to_string_lossy()) {
        Ok(Some(p)) => println!("chrome trace in {}", p.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write trace: {e}"),
    }
    println!("\nCSV results in {}", out_dir.display());
}

fn take_f64(it: &mut std::iter::Peekable<std::vec::IntoIter<String>>, flag: &str) -> f64 {
    let v = it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    // Accept "1/128" fractions for convenience.
    if let Some((a, b)) = v.split_once('/') {
        let a: f64 = a.trim().parse().unwrap_or_else(|_| bad_value(flag, &v));
        let b: f64 = b.trim().parse().unwrap_or_else(|_| bad_value(flag, &v));
        return a / b;
    }
    v.parse().unwrap_or_else(|_| bad_value(flag, &v))
}

fn bad_value(flag: &str, v: &str) -> f64 {
    eprintln!("bad value for {flag}: {v}");
    std::process::exit(2);
}

fn usage() {
    println!(
        "usage: repro <list | all | EXPERIMENT...> [--tiny|--quick] [--scale-small F] \
         [--scale-large F] [--scale-swarm F] [--distinct-bags N] [--seed N] [--out DIR]"
    );
}
