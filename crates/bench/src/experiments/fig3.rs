//! Fig. 3 — why existing I/O middleware doesn't help bags: PLFS vs
//! Ext4/XFS for (a) bag write and (b) topic read.
//!
//! Paper: PLFS takes ~2x longer to write a 3.9 GB bag and ~1x longer
//! (i.e. about double) to retrieve a topic from a 2.9 GB bag.

use plfs_lite::PlfsStorage;
use rosbag::BagReader;
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::{generate_bag, topic};

use crate::env::ScaleConfig;
use crate::report::{ms, speedup, Table};

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    vec![run_write(scales), run_read(scales)]
}

/// Fig. 3a: write a 3.9 GB-class bag through PLFS vs directly.
pub fn run_write(scales: &ScaleConfig) -> Table {
    let mut table = Table::new(
        "fig3a",
        "Bag write: plain filesystem vs PLFS-backed (paper: PLFS ~2x slower at 3.9 GB)",
        &["filesystem", "bag", "write time (ms)", "slowdown vs plain"],
    );
    for (fs_name, device) in [("Ext4", DeviceModel::nvme_ext4()), ("XFS", DeviceModel::nvme_xfs())]
    {
        let opts = scales.gen_for_gb(3.9);

        let plain = TimedStorage::new(MemStorage::new(), device);
        let mut ctx = IoCtx::new();
        generate_bag(&plain, "/b.bag", &opts, &mut ctx).unwrap();
        let plain_ns = ctx.elapsed_ns();

        let plfs = PlfsStorage::new(TimedStorage::new(MemStorage::new(), device));
        let mut pctx = IoCtx::new();
        generate_bag(&plfs, "/b.bag", &opts, &mut pctx).unwrap();
        let plfs_ns = pctx.elapsed_ns();

        table.row(vec![fs_name.into(), "3.9 GB class".into(), ms(plain_ns), "1.00x".into()]);
        table.row(vec![
            format!("PLFS on {fs_name}"),
            "3.9 GB class".into(),
            ms(plfs_ns),
            speedup(plfs_ns, plain_ns),
        ]);
    }
    table
}

/// Fig. 3b: read one topic from a 2.9 GB-class bag.
pub fn run_read(scales: &ScaleConfig) -> Table {
    let mut table = Table::new(
        "fig3b",
        "Topic read from a 2.9 GB bag: plain vs PLFS-backed (paper: PLFS ~2x)",
        &["filesystem", "topic", "read time (ms)", "slowdown vs plain"],
    );
    let opts = scales.gen_for_gb(2.9);
    for (fs_name, device) in [("Ext4", DeviceModel::nvme_ext4()), ("XFS", DeviceModel::nvme_xfs())]
    {
        let plain = TimedStorage::new(MemStorage::new(), device);
        let mut ctx = IoCtx::new();
        generate_bag(&plain, "/b.bag", &opts, &mut ctx).unwrap();
        let plain_ns = read_topic_ns(&plain, topic::RGB_IMAGE);

        let plfs = PlfsStorage::new(TimedStorage::new(MemStorage::new(), device));
        let mut pctx = IoCtx::new();
        generate_bag(&plfs, "/b.bag", &opts, &mut pctx).unwrap();
        let plfs_ns = read_topic_ns(&plfs, topic::RGB_IMAGE);

        table.row(vec![fs_name.into(), topic::RGB_IMAGE.into(), ms(plain_ns), "1.00x".into()]);
        table.row(vec![
            format!("PLFS on {fs_name}"),
            topic::RGB_IMAGE.into(),
            ms(plfs_ns),
            speedup(plfs_ns, plain_ns),
        ]);
    }
    table
}

fn read_topic_ns<S: Storage>(storage: &S, t: &str) -> u64 {
    let mut ctx = IoCtx::new();
    let reader = BagReader::open(storage, "/b.bag", &mut ctx).unwrap();
    reader.read_messages(&[t], &mut ctx).unwrap();
    ctx.elapsed_ns()
}
