//! `ext_query` — the declarative query layer: what predicate pushdown
//! buys on block-framed storage, and what partial aggregation buys on
//! the wire.
//!
//! Two tables:
//!
//! * `ext_query` — a selectivity sweep over one block-framed container.
//!   The same aggregate runs planned with and without pushdown; the
//!   optimizer's time range feeds the coarse index's candidate
//!   selection, so a selective predicate skips whole blocks before they
//!   are ever decoded. Rows must be identical either way — the sweep
//!   measures *work*, and asserts the skip on the selective end.
//! * `ext_query_dist` — the same windowed aggregate over a provisioned
//!   cluster, 1 node vs 3. The router ships per-window partial states,
//!   not rows; the row-shipping baseline (`rowship_fragment`, the raw
//!   aggregation inputs) is run over the same cluster for the wire-byte
//!   comparison. Results must be byte-identical across cluster sizes.

use bora::{BlockCodec, BlockParams, BoraBag, OrganizerOptions};
use bora_cluster::{ClusterClientConfig, ClusterTierConfig, LocalCluster, RingConfig};
use bora_query::{encode_rows, prepare_with, ExecStats, PlanOptions, Row};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};

use crate::env::ScaleConfig;
use crate::report::{size, speedup, us, Table};

type Fs = TimedStorage<MemStorage>;

/// Mission length for the sweep container: 200 s of 50 Hz IMU starting
/// at t = 1000 s, `angular_velocity.x` a sawtooth so `mean` has a
/// nontrivial value.
const TICKS: u64 = 10_000;
const BASE_NS: u64 = 1_000_000_000_000;
const TICK_NS: u64 = 20_000_000;

fn build_sweep_container(fs: &Fs, seed: u64) {
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(fs, "/q.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for tick in 0..TICKS {
        let t = Time::from_nanos(BASE_NS + tick * TICK_NS);
        let mut imu = Imu::default();
        imu.header.seq = tick as u32;
        imu.header.stamp = t;
        imu.angular_velocity.x = ((tick ^ seed) % 100) as f64 * 0.01;
        w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    let opts = OrganizerOptions {
        block: Some(BlockParams { codec: BlockCodec::Lzss, block_size: 8192 }),
        ..Default::default()
    };
    bora::duplicate(fs, "/q.bag", fs, "/c", &opts, &mut ctx).unwrap();
}

fn run_planned(bag: &BoraBag<&Fs>, sql: &str, pushdown: bool) -> (Vec<Row>, ExecStats) {
    let mut ctx = IoCtx::new();
    let p = prepare_with(sql, &PlanOptions { pushdown }).unwrap();
    let mut cur = p.cursor_bag(bag, false, &mut ctx).unwrap();
    let rows = cur.collect_rows().unwrap();
    let stats = cur.stats();
    (rows, stats)
}

fn sweep(seed: u64) -> Table {
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    build_sweep_container(&fs, seed);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    let mut table = Table::new(
        "ext_query",
        "Extension: bora-query predicate pushdown — selectivity sweep on a block-framed container",
        &[
            "selectivity",
            "predicate",
            "rows in",
            "blocks (pushdown)",
            "blocks (full scan)",
            "blocks skipped",
            "scan virt (pushdown)",
            "scan virt (full)",
            "speedup",
        ],
    );

    // (label, WHERE clause, fraction of the mission it selects)
    let cases: [(&str, String); 4] = [
        ("100%", String::new()),
        ("50%", " WHERE time >= 1100.0".to_owned()),
        ("10%", " WHERE time >= 1180.0".to_owned()),
        ("1%", " WHERE time >= 1198.0 AND time < 1200.0".to_owned()),
    ];
    for (label, where_clause) in &cases {
        let sql = format!(
            "SELECT count(), mean(angular_velocity.x) FROM '/imu'{where_clause} WINDOW 10s"
        );
        let (rows_on, on) = run_planned(&bag, &sql, true);
        let (rows_off, off) = run_planned(&bag, &sql, false);
        assert_eq!(rows_on, rows_off, "pushdown changed the result ({label})");
        assert!(!rows_on.is_empty(), "sweep case {label} selected nothing");
        assert_eq!(
            off.pushed_dropped, 0,
            "the unpushed plan must filter after materialization ({label})"
        );

        // The acceptance bar: a selective predicate must skip at least
        // half the block decodes of the full scan.
        if *label != "100%" && *label != "50%" {
            assert!(
                on.block_decodes * 2 <= off.block_decodes,
                "{label}: pushdown decoded {} of {} blocks — less than half skipped",
                on.block_decodes,
                off.block_decodes
            );
        }
        table.row(vec![
            (*label).to_owned(),
            if where_clause.is_empty() {
                "(none)".to_owned()
            } else {
                where_clause.trim_start().trim_start_matches("WHERE ").to_owned()
            },
            on.scanned.to_string(),
            on.block_decodes.to_string(),
            off.block_decodes.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - on.block_decodes as f64 / off.block_decodes.max(1) as f64)
            ),
            us(on.virt_ns),
            us(off.virt_ns),
            speedup(off.virt_ns, on.virt_ns.max(1)),
        ]);
    }

    table.note(format!(
        "container: {TICKS} Imu messages at 50 Hz, LZSS block-framed at 8 KiB; the optimizer's \
         extracted time range drives coarse-index candidate selection, so skipped blocks are \
         never read, decompressed, or CRC-checked"
    ));
    table.note(
        "rows are asserted identical with pushdown on and off in every sweep case — the \
         optimizer changes work, never results",
    );
    table
}

/// Stage `n` containers of 2 Hz IMU (sizes staggered so shards differ)
/// on a staging fs, returning their roots.
fn stage_fleet(staging: &MemStorage, n: usize) -> Vec<String> {
    let mut roots = Vec::new();
    for k in 0..n {
        let mut ctx = IoCtx::new();
        let root = format!("/fleet/m{k}");
        let bag = format!("/stage{k}.bag");
        let mut w =
            BagWriter::create(staging, &bag, BagWriterOptions::default(), &mut ctx).unwrap();
        let ticks = 1800 + 200 * k as u64;
        for tick in 0..ticks {
            let t = Time::from_nanos(1_000_000_000 + tick * 500_000_000);
            let mut imu = Imu::default();
            imu.header.seq = tick as u32;
            imu.header.stamp = t;
            imu.angular_velocity.x = (tick % 64) as f64;
            w.write_ros_message("/imu", t, &imu, &mut ctx).unwrap();
        }
        w.close(&mut ctx).unwrap();
        bora::duplicate(staging, &bag, staging, &root, &Default::default(), &mut ctx).unwrap();
        roots.push(root);
    }
    roots
}

const DIST_SQL: &str = "SELECT window, count(), mean(angular_velocity.x), \
                        max(angular_velocity.x) FROM '/imu' WINDOW 60s";

fn distributed() -> Table {
    let staging = MemStorage::new();
    let roots = stage_fleet(&staging, 3);
    let refs: Vec<&str> = roots.iter().map(String::as_str).collect();

    let mut table = Table::new(
        "ext_query_dist",
        "Extension: distributed aggregation — partial states vs row shipping, 1 node vs 3",
        &[
            "nodes",
            "containers",
            "result rows",
            "partial wire",
            "row-ship wire",
            "wire ratio",
            "identical",
        ],
    );

    let rowship_sql = {
        let p = bora_query::prepare(DIST_SQL).unwrap();
        bora_query::rowship_fragment(&p.query)
    };

    let mut fingerprints: Vec<Vec<u8>> = Vec::new();
    for nodes in [1u32, 3] {
        let cluster = LocalCluster::start(ClusterTierConfig {
            nodes,
            ring: RingConfig { vnodes: 64, replication: 2 },
            ..ClusterTierConfig::default()
        });
        cluster.provision(&staging, &refs).unwrap();
        let client = cluster.client(ClusterClientConfig::default());

        let agg = client.query_multi(&refs, DIST_SQL).unwrap();
        let ship = client.query_multi(&refs, &rowship_sql).unwrap();
        cluster.shutdown();

        assert!(!agg.rows.is_empty());
        let total_msgs: u64 = roots.iter().enumerate().map(|(k, _)| 1800 + 200 * k as u64).sum();
        assert_eq!(ship.rows_total, total_msgs, "row-ship baseline must move every message");
        // The point of partial aggregation: the wire carries per-window
        // states, not rows — under a tenth of the row-shipping bytes.
        assert!(
            agg.wire_bytes * 10 <= ship.wire_bytes,
            "partial aggregation moved {} B vs row-ship {} B — not under 10%",
            agg.wire_bytes,
            ship.wire_bytes
        );

        fingerprints.push(encode_rows(&agg.rows));
        table.row(vec![
            nodes.to_string(),
            refs.len().to_string(),
            agg.rows_total.to_string(),
            size(agg.wire_bytes),
            size(ship.wire_bytes),
            format!("{:.1}%", 100.0 * agg.wire_bytes as f64 / ship.wire_bytes.max(1) as f64),
            (fingerprints[0] == *fingerprints.last().unwrap()).to_string(),
        ]);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "distributed aggregate diverged between 1 and 3 nodes"
    );

    table.note(format!(
        "fleet: {} containers, staggered sizes, provisioned onto the ring; the router compiles \
         once, sends each node the LIMIT-stripped fragment, and merges per-window partial \
         states in container order — results are asserted byte-identical across cluster sizes",
        refs.len()
    ));
    table.note(
        "row-ship wire is the same cluster answering the rowship_fragment baseline (time plus \
         every aggregate argument, no window), i.e. what moving inputs instead of states costs",
    );
    table
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    vec![sweep(scales.seed), distributed()]
}
