//! `ext_ingest` — the live write path: WAL + seal + compaction.
//!
//! Three claims, each asserted in-process (a green table is a checked
//! claim, not a printout):
//!
//! 1. **Append throughput vs segment size** — sustained ingest over the
//!    virtual clock while sealing every K messages. Larger segments
//!    amortize the per-seal segment writes; every configuration must end
//!    with a byte-identical readable store.
//! 2. **Query-during-ingest latency** — the same query against the same
//!    data at every lifecycle stage (all live in WAL+memtable, all
//!    sealed, all compacted, and a mixed three-layer store) must return
//!    byte-identical results; the table reports what each layer costs.
//! 3. **Power-cut sweep** — one scripted append/seal/compact run is
//!    crashed at every mutating-op boundary (clean and torn variants).
//!    After each "reboot", recovery must open, yield a per-topic prefix
//!    of the script with byte-identical payloads, and keep yielding the
//!    exact same bytes after the interrupted seal/compaction is re-run.

use std::sync::Arc;

use bora_ingest::{IngestConfig, IngestStore};
use ros_msgs::{md5, Time};
use simfs::{
    DeviceModel, FaultyStorage, IoCtx, MemStorage, PowerCutSchedule, Storage, TimedStorage,
};

use crate::env::ScaleConfig;
use crate::report::Table;

const ROOT: &str = "/live/mission";
const TOPICS: [&str; 3] = ["/imu", "/cam", "/tf"];

fn cfg() -> IngestConfig {
    IngestConfig { wal_shards: 4, group_commit: 16, window_ns: 1_000_000_000, block: None }
}

/// Deterministic workload: `n_per_topic` messages per topic, interleaved
/// in time order, per-topic chronological, payloads a pure function of
/// (topic, index).
fn script(n_per_topic: u32, payload: usize) -> Vec<(&'static str, Time, Vec<u8>)> {
    let mut out = Vec::with_capacity(n_per_topic as usize * TOPICS.len());
    for i in 0..n_per_topic {
        for (ti, topic) in TOPICS.iter().enumerate() {
            let t = Time::from_nanos(u64::from(i) * 1_000 + ti as u64);
            let data: Vec<u8> =
                (0..payload).map(|b| (b as u8) ^ (i as u8) ^ (ti as u8).wrapping_mul(7)).collect();
            out.push((*topic, t, data));
        }
    }
    out
}

/// Read everything a snapshot sees and digest it (topic + time + bytes,
/// merge order): equal digests mean byte-identical query results.
fn read_digest<S: Storage + Clone>(store: &IngestStore<S>, ctx: &mut IoCtx) -> (u64, String) {
    let snap = store.snapshot(ctx).expect("snapshot");
    let msgs = snap.read_topics(&TOPICS, ctx).expect("snapshot read");
    let mut acc = Vec::new();
    for m in &msgs {
        acc.extend_from_slice(m.topic.as_bytes());
        acc.extend_from_slice(&m.time.as_nanos().to_le_bytes());
        acc.extend_from_slice(&m.data);
    }
    (msgs.len() as u64, md5::hex_digest(&acc))
}

// ------------------------------------------------ 1. append throughput

fn run_throughput(scales: &ScaleConfig) -> Table {
    let tiny = scales.small < 1.0 / 256.0;
    let n_per_topic: u32 = if tiny { 600 } else { 6_000 };
    let payload = 256usize;
    let work = script(n_per_topic, payload);
    let total_msgs = work.len() as u64;
    let total_bytes: u64 = work.iter().map(|(_, _, d)| d.len() as u64).sum();
    let seal_every: &[usize] = if tiny { &[64, 256, 1024] } else { &[128, 512, 2048, 8192] };

    let mut t = Table::new(
        "ext_ingest",
        "Live ingest: sustained append throughput vs segment size (virtual clock, NVMe Ext4)",
        &[
            "seal every (msgs)",
            "seals",
            "ingest (virtual ms)",
            "append rate (Kmsg/s)",
            "append rate (MB/s)",
            "compact (virtual ms)",
            "read == reference",
        ],
    );

    let mut reference: Option<String> = None;
    for &k in seal_every {
        let fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
        let mut ctx = IoCtx::new();
        let store = IngestStore::create(Arc::clone(&fs), ROOT, cfg(), &mut ctx).unwrap();
        let mut ctx = IoCtx::new(); // measure steady ingest, not root creation
        let mut seals = 0u64;
        for (i, (topic, time, data)) in work.iter().enumerate() {
            store.append(topic, *time, data, &mut ctx).unwrap();
            if (i + 1) % k == 0 && store.seal(&mut ctx).unwrap().is_some() {
                seals += 1;
            }
        }
        store.flush_wal(&mut ctx).unwrap();
        if store.seal(&mut ctx).unwrap().is_some() {
            seals += 1;
        }
        let ingest_ns = ctx.elapsed_ns();
        store.compact(&mut ctx).unwrap();
        let compact_ns = ctx.elapsed_ns() - ingest_ns;

        let (read_msgs, digest) = read_digest(&store, &mut ctx);
        assert_eq!(read_msgs, total_msgs, "every appended message must be readable");
        let same = match &reference {
            None => {
                reference = Some(digest);
                true
            }
            Some(r) => *r == digest,
        };
        assert!(same, "segment size must never change query bytes (seal every {k})");

        let secs = ingest_ns as f64 / 1e9;
        t.row(vec![
            k.to_string(),
            seals.to_string(),
            format!("{:.2}", ingest_ns as f64 / 1e6),
            format!("{:.1}", total_msgs as f64 / secs / 1e3),
            format!("{:.1}", total_bytes as f64 / secs / 1e6),
            format!("{:.2}", compact_ns as f64 / 1e6),
            "yes".into(),
        ]);
    }
    t.note(format!(
        "{total_msgs} messages x {payload} B over {} topics; group commit {} records/shard; \
         asserted: every segment size yields byte-identical reads",
        TOPICS.len(),
        cfg().group_commit,
    ));
    t
}

// ------------------------------------------- 2. query during ingest

fn run_query_latency(scales: &ScaleConfig) -> Table {
    let tiny = scales.small < 1.0 / 256.0;
    let n_per_topic: u32 = if tiny { 400 } else { 4_000 };
    let work = script(n_per_topic, 256);
    let total = work.len();

    // Each stage ingests the SAME workload, then queries it while it sits
    // in a different mix of layers. Identical bytes back is the MVCC
    // contract; the latency split is what the table reports.
    //
    // (compacted %, sealed %, live %)
    let stages: &[(&str, usize, usize)] = &[
        ("all live (wal + memtable)", 0, 0),
        ("all sealed segments", 0, 100),
        ("all compacted container", 100, 0),
        ("mixed 50/25/25", 50, 25),
    ];

    let mut t = Table::new(
        "ext_ingest_query",
        "Query during ingest: identical bytes from any layer mix (virtual clock, NVMe Ext4)",
        &["serving layers", "messages", "query (virtual ms)", "identical bytes"],
    );

    let mut reference: Option<String> = None;
    for (name, compact_pct, sealed_pct) in stages {
        let fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
        let mut ctx = IoCtx::new();
        let store = IngestStore::create(Arc::clone(&fs), ROOT, cfg(), &mut ctx).unwrap();
        let compact_at = total * compact_pct / 100;
        let seal_at = total * (compact_pct + sealed_pct) / 100;
        for (i, (topic, time, data)) in work.iter().enumerate() {
            store.append(topic, *time, data, &mut ctx).unwrap();
            if compact_at > 0 && i + 1 == compact_at {
                store.seal(&mut ctx).unwrap();
                store.compact(&mut ctx).unwrap();
            }
            if seal_at > compact_at && i + 1 == seal_at {
                store.seal(&mut ctx).unwrap();
            }
        }
        store.flush_wal(&mut ctx).unwrap();

        let mut qctx = IoCtx::new();
        let (read_msgs, digest) = read_digest(&store, &mut qctx);
        assert_eq!(read_msgs as usize, total);
        let same = match &reference {
            None => {
                reference = Some(digest);
                true
            }
            Some(r) => *r == digest,
        };
        assert!(same, "layer mix '{name}' changed the query bytes");
        t.row(vec![
            (*name).to_owned(),
            read_msgs.to_string(),
            format!("{:.2}", qctx.elapsed_ns() as f64 / 1e6),
            "yes".into(),
        ]);
    }
    t.note(
        "asserted: the same query returns byte-identical results whether the data lives in \
         the WAL+memtable, sealed segments, the compacted container, or any mix",
    );
    t
}

// ------------------------------------------------ 3. power-cut sweep

/// The scripted run the sweep crashes: two seal points, one compaction,
/// then a tail that only the WAL holds.
fn crash_script<S: Storage>(
    store: &IngestStore<S>,
    work: &[(&'static str, Time, Vec<u8>)],
    ctx: &mut IoCtx,
) -> Result<(), bora::BoraError> {
    let third = work.len() / 3;
    for (i, (topic, time, data)) in work.iter().enumerate() {
        store.append(topic, *time, data, ctx)?;
        if i + 1 == third {
            store.seal(ctx)?;
        }
        if i + 1 == 2 * third {
            store.seal(ctx)?;
            store.compact(ctx)?;
        }
    }
    store.flush_wal(ctx)?;
    Ok(())
}

/// Recovered messages must be a per-topic prefix of the script with
/// byte-identical payloads — nothing fabricated, torn, or reordered.
fn assert_prefix_consistent(
    recovered: &[(String, u64, Vec<u8>)],
    work: &[(&'static str, Time, Vec<u8>)],
    when: &str,
) {
    for topic in TOPICS {
        let got: Vec<&(String, u64, Vec<u8>)> =
            recovered.iter().filter(|(t, _, _)| t == topic).collect();
        let want: Vec<&(&str, Time, Vec<u8>)> =
            work.iter().filter(|(t, _, _)| *t == topic).collect();
        assert!(
            got.len() <= want.len(),
            "{when}: {topic} has {} messages, script only wrote {}",
            got.len(),
            want.len()
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.1, w.1.as_nanos(), "{when}: {topic} replayed out of order");
            assert_eq!(g.2, w.2, "{when}: {topic} payload not byte-identical at t={}", g.1);
        }
    }
}

fn run_crash_sweep(scales: &ScaleConfig) -> Table {
    let tiny = scales.small < 1.0 / 256.0;
    let n_per_topic: u32 = if tiny { 6 } else { 12 };
    // Small group commit so the WAL hits storage often enough for the
    // sweep to land cuts inside append batches, not just seal/compact.
    let cfg = IngestConfig { wal_shards: 2, group_commit: 2, window_ns: 1_000_000, block: None };
    let work = script(n_per_topic, 48);

    // Probe: an uncrashed run sizes the sweep. Only the script's own
    // mutations count — the sweep arms after `create`, and arming resets
    // the wrapper's mutation counter.
    let probe = FaultyStorage::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let store = IngestStore::create(&probe, ROOT, cfg, &mut ctx).unwrap();
    let create_mutations = probe.mutations();
    crash_script(&store, &work, &mut ctx).unwrap();
    drop(store);
    let total_mutations = probe.mutations() - create_mutations;

    let mut positions = [0u64; 2]; // [clean, torn]
    let mut recovered_ok = [0u64; 2];
    let mut replay_ok = [0u64; 2];
    for cut in PowerCutSchedule::sweep(total_mutations) {
        let variant = usize::from(cut.torn_bytes.is_some());
        positions[variant] += 1;

        let faulty = FaultyStorage::new(MemStorage::new());
        let mut ctx = IoCtx::new();
        let store = IngestStore::create(&faulty, ROOT, cfg, &mut ctx).unwrap();
        faulty.arm_power_cut(cut);
        let crashed = crash_script(&store, &work, &mut ctx);
        assert!(crashed.is_err(), "an armed power cut must abort the run");
        drop(store);

        // "Reboot": recovery runs inside open — torn WAL tails truncate,
        // uncommitted segments and generations are swept.
        let disk = faulty.inner();
        let mut ctx = IoCtx::new();
        let store = IngestStore::open(disk, ROOT, &mut ctx).unwrap_or_else(|e| {
            panic!(
                "recovery failed at mutation {} ({:?}): {e}",
                cut.after_mutations, cut.torn_bytes
            )
        });
        let snap = store.snapshot(&mut ctx).unwrap();
        let at_boot: Vec<(String, u64, Vec<u8>)> = snap
            .read_topics(&TOPICS, &mut ctx)
            .unwrap()
            .into_iter()
            .map(|m| (m.topic, m.time.as_nanos(), m.data))
            .collect();
        assert_prefix_consistent(&at_boot, &work, "at boot");
        recovered_ok[variant] += 1;

        // Re-run the interrupted seal + compaction: same bytes after.
        store.seal(&mut ctx).unwrap();
        store.compact(&mut ctx).unwrap();
        let snap = store.snapshot(&mut ctx).unwrap();
        let after: Vec<(String, u64, Vec<u8>)> = snap
            .read_topics(&TOPICS, &mut ctx)
            .unwrap()
            .into_iter()
            .map(|m| (m.topic, m.time.as_nanos(), m.data))
            .collect();
        assert_eq!(
            after, at_boot,
            "seal+compact after recovery changed the bytes at mutation {}",
            cut.after_mutations
        );
        replay_ok[variant] += 1;
    }

    let mut t = Table::new(
        "ext_ingest_crash",
        "Power-cut sweep over append/seal/compact: recovery + byte-identical replay",
        &["crash variant", "positions", "recovered (prefix-consistent)", "replay identical"],
    );
    for (i, name) in ["clean cut", "torn tail"].iter().enumerate() {
        t.row(vec![
            (*name).to_owned(),
            positions[i].to_string(),
            format!("{}/{}", recovered_ok[i], positions[i]),
            format!("{}/{}", replay_ok[i], positions[i]),
        ]);
    }
    t.note(format!(
        "one run = {} msgs over {} topics, 2 seals + 1 compaction = {total_mutations} mutating \
         ops; the sweep crashes at every boundary, clean and torn",
        work.len(),
        TOPICS.len(),
    ));
    t.note(
        "asserted: every reboot opens, reads a per-topic byte-identical prefix of the script, \
         and re-running the interrupted seal/compaction never changes the bytes",
    );
    t
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    vec![run_throughput(scales), run_query_latency(scales), run_crash_sweep(scales)]
}
