//! One module per paper table/figure. `registry()` maps experiment ids to
//! runners so the `repro` binary and tests share the same entry points.

pub mod ablations;
pub mod common;
pub mod ext_cluster;
pub mod ext_crash;
pub mod ext_ingest;
pub mod ext_pool;
pub mod ext_query;
pub mod ext_stream;
pub mod extensions;
pub mod fig10;
pub mod fig11_12;
pub mod fig13_14;
pub mod fig15_16;
pub mod fig17_18;
pub mod fig2;
pub mod fig3;
pub mod fig9;
pub mod open21g;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table4;

use crate::env::ScaleConfig;
use crate::report::Table;

/// A runnable experiment.
pub struct Experiment {
    pub id: &'static str,
    pub paper_ref: &'static str,
    pub description: &'static str,
    pub run: fn(&ScaleConfig) -> Vec<Table>,
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            paper_ref: "Fig. 2",
            description: "Message insertion: Ext4 bag append vs KV/SQL/TSDB engines",
            run: fig2::run,
        },
        Experiment {
            id: "fig3",
            paper_ref: "Fig. 3",
            description: "PLFS vs Ext4/XFS: bag write and topic read",
            run: fig3::run,
        },
        Experiment {
            id: "table1",
            paper_ref: "Table I",
            description: "Tag-manager hash table construction cost vs topic count",
            run: table1::run,
        },
        Experiment {
            id: "table2",
            paper_ref: "Table II",
            description: "Generated Handheld-SLAM bag composition vs the paper's",
            run: table2::run,
        },
        Experiment {
            id: "table4",
            paper_ref: "Table IV",
            description: "I/O middleware comparison (qualitative + measured supplement)",
            run: table4::run,
        },
        Experiment {
            id: "fig9",
            paper_ref: "Fig. 9",
            description: "Bag duplication (capture) overhead across sizes and targets",
            run: fig9::run,
        },
        Experiment {
            id: "fig10",
            paper_ref: "Fig. 10",
            description: "Query by topic, Handheld SLAM, varied bag size (single node)",
            run: fig10::run,
        },
        Experiment {
            id: "fig11",
            paper_ref: "Fig. 11",
            description: "Query by topics, four applications, small bag (single node)",
            run: fig11_12::run_small,
        },
        Experiment {
            id: "fig12",
            paper_ref: "Fig. 12",
            description: "Query by topics, four applications, large bag (single node)",
            run: fig11_12::run_large,
        },
        Experiment {
            id: "fig13",
            paper_ref: "Fig. 13",
            description: "Query by one topic + start-end time, 21 GB bag (single node)",
            run: fig13_14::run_fig13,
        },
        Experiment {
            id: "fig14",
            paper_ref: "Fig. 14",
            description: "Query by topics + start-end time, four applications (single node)",
            run: fig13_14::run_fig14,
        },
        Experiment {
            id: "fig15",
            paper_ref: "Fig. 15",
            description: "Query by topics on the PVFS cluster",
            run: fig15_16::run_fig15,
        },
        Experiment {
            id: "fig16",
            paper_ref: "Fig. 16",
            description: "Query by topic + start-end time, 42 GB bag, PVFS cluster",
            run: fig15_16::run_fig16,
        },
        Experiment {
            id: "fig17",
            paper_ref: "Fig. 17",
            description: "Robotic swarm open+query on the Tianhe-1A Lustre subsystem",
            run: fig17_18::run_fig17,
        },
        Experiment {
            id: "fig18",
            paper_ref: "Fig. 18",
            description: "Robotic swarm query by topics + time range on Lustre",
            run: fig17_18::run_fig18,
        },
        Experiment {
            id: "ablation_window",
            paper_ref: "DESIGN §5.1",
            description: "Ablation: coarse time-index window width",
            run: ablations::run_window,
        },
        Experiment {
            id: "ablation_threads",
            paper_ref: "DESIGN §5.2",
            description: "Ablation: organizer distributor thread count",
            run: ablations::run_threads,
        },
        Experiment {
            id: "ablation_tag_persist",
            paper_ref: "DESIGN §5.3",
            description: "Ablation: rebuilt vs persisted tag table",
            run: ablations::run_tag_persist,
        },
        Experiment {
            id: "ablation_stripe",
            paper_ref: "DESIGN §5.4",
            description: "Ablation: cluster data-server count",
            run: ablations::run_stripe,
        },
        Experiment {
            id: "ext_amr",
            paper_ref: "extension",
            description: "Extension: BORA on a structured-data-dominant AMR mission",
            run: extensions::run_amr,
        },
        Experiment {
            id: "ext_compression",
            paper_ref: "extension",
            description: "Extension: LZSS chunk compression through the pipeline",
            run: extensions::run_compression,
        },
        Experiment {
            id: "ext_serve",
            paper_ref: "extension",
            description:
                "Extension: bora-serve query service — open amortization vs per-query open",
            run: serve::run,
        },
        Experiment {
            id: "ext_crash",
            paper_ref: "extension",
            description:
                "Extension: crash-consistent commit — power-cut sweep, fsck verify + repair",
            run: ext_crash::run,
        },
        Experiment {
            id: "ext_stream",
            paper_ref: "extension",
            description:
                "Extension: streaming pipeline — heap vs linear k-way merge, parallel prefetch",
            run: ext_stream::run,
        },
        Experiment {
            id: "ext_cluster",
            paper_ref: "extension",
            description:
                "Extension: bora-cluster — sharded/replicated serving: scaling, hedging, node-kill",
            run: ext_cluster::run,
        },
        Experiment {
            id: "ext_ingest",
            paper_ref: "extension",
            description:
                "Extension: bora-ingest live write path — append throughput, query-during-ingest, \
                 power-cut sweep",
            run: ext_ingest::run,
        },
        Experiment {
            id: "ext_pool",
            paper_ref: "extension",
            description:
                "Extension: global buffer pool + compressed topic blocks — cold/hot scans, \
                 budget sweep, heal traffic",
            run: ext_pool::run,
        },
        Experiment {
            id: "ext_query",
            paper_ref: "extension",
            description: "Extension: bora-query — pushdown selectivity sweep, distributed partial \
                 aggregation wire cost",
            run: ext_query::run,
        },
        Experiment {
            id: "open21g",
            paper_ref: "§II",
            description: "Baseline open of a 21 GB bag exceeds seven seconds on SSD",
            run: open21g::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_runnable_shape() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        // Every table/figure of the paper is covered.
        for required in [
            "fig2", "fig3", "table1", "table2", "table4", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "open21g",
        ] {
            assert!(ids.contains(&required), "missing experiment {required}");
        }
    }

    #[test]
    fn cheap_experiments_run_at_tiny_scale() {
        let scales = crate::env::ScaleConfig::tiny();
        for id in ["table1", "fig2"] {
            let exp = registry().into_iter().find(|e| e.id == id).unwrap();
            let tables = (exp.run)(&scales);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.id);
            }
        }
    }
}
