//! Figs. 15 & 16 — the 4-node PVFS cluster.
//!
//! Paper: ~2x average speedup (network-bound, so smaller than the single
//! node's), 30x on `/camera/rgb/camera_info` thanks to the near-zero open,
//! and consistent wins for topic+time queries on a 42 GB bag (Fig. 16).

use ros_msgs::RosDuration;
use workloads::apps::APPLICATIONS;
use workloads::tum::spec;

use crate::env::{setup_bag, Platform, ScaleConfig};
use crate::experiments::common::{
    bag_time_range, baseline_query, baseline_query_time, bora_query, bora_query_time,
};
use crate::report::{ms, speedup, Table};

pub fn run_fig15(scales: &ScaleConfig) -> Vec<Table> {
    let mut tables = Vec::new();

    // (a), (b): single topics from Handheld SLAM at two bag sizes.
    for (sub, gb) in [('a', 21.0), ('b', 42.0)] {
        let env = setup_bag(Platform::pvfs(), gb, scales);
        let mut table = Table::new(
            &format!("fig15{sub}"),
            &format!("Query by topic on PVFS, {gb:.0} GB Handheld-SLAM bag (paper Fig. 15{sub})"),
            &["topic", "baseline (ms)", "BORA (ms)", "BORA speedup"],
        );
        for id in ['A', 'B', 'C', 'E', 'F'] {
            let topic = spec(id).name;
            let base = baseline_query(&env, &[topic], 1);
            let ours = bora_query(&env, &[topic], 1);
            assert_eq!(base.messages, ours.messages);
            table.row(vec![
                format!("{id} {topic}"),
                ms(base.total_ns()),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
        table.note("paper: ~2x average, up to 30x on camera_info (open-time elimination)");
        tables.push(table);
    }

    // (c), (d): the four applications at two bag sizes.
    for (sub, gb) in [('c', 21.0), ('d', 42.0)] {
        let env = setup_bag(Platform::pvfs(), gb, scales);
        let mut table = Table::new(
            &format!("fig15{sub}"),
            &format!("Applications on PVFS, {gb:.0} GB bag (paper Fig. 15{sub})"),
            &["application", "baseline (ms)", "BORA (ms)", "BORA speedup"],
        );
        for app in APPLICATIONS {
            let topics = app.topics(0);
            let base = baseline_query(&env, &topics, 1);
            let ours = bora_query(&env, &topics, 1);
            assert_eq!(base.messages, ours.messages);
            table.row(vec![
                app.abbrev().into(),
                ms(base.total_ns()),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
        table.note("paper: ~2x average speedup; network (10 GbE) caps the win vs the single node");
        tables.push(table);
    }
    tables
}

pub fn run_fig16(scales: &ScaleConfig) -> Vec<Table> {
    let env = setup_bag(Platform::pvfs(), 42.0, scales);
    let (start, end_of_bag) = bag_time_range(&env);
    let mut table = Table::new(
        "fig16",
        "Query by one topic + start-end time, 42 GB bag, PVFS (paper Fig. 16)",
        &["topic", "window (s)", "baseline (ms)", "BORA (ms)", "BORA speedup"],
    );
    for id in ['A', 'C', 'F'] {
        let topic = spec(id).name;
        for w in [10.0, 40.0, 160.0, f64::INFINITY] {
            let (end, label) = if w.is_infinite() {
                (end_of_bag + RosDuration::from_sec_f64(1.0), "full".to_owned())
            } else {
                (start + RosDuration::from_sec_f64(w), format!("{w:.0}"))
            };
            let base = baseline_query_time(&env, &[topic], start, end);
            let ours = bora_query_time(&env, &[topic], start, end);
            assert_eq!(base.messages, ours.messages);
            table.row(vec![
                format!("{id} {topic}"),
                label,
                ms(base.total_ns()),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
    }
    table.note("paper: BORA wins every case — the coarse-grain time index works on parallel file systems too");
    vec![table]
}

/// Re-exported for tests: the Fig. 15(b) setup at arbitrary scale.
pub fn camera_info_speedup_on_pvfs(scales: &ScaleConfig, gb: f64) -> f64 {
    let env = setup_bag(Platform::pvfs(), gb, scales);
    let topic = spec('C').name;
    let base = baseline_query(&env, &[topic], 1);
    let ours = bora_query(&env, &[topic], 1);
    base.total_ns() as f64 / ours.total_ns() as f64
}
