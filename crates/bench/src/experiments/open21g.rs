//! §II anchor — "opening a 21 GB bag took more than seven seconds" on an
//! SSD. Measures the baseline full-scan open at the 21 GB class and
//! extrapolates the unscaled time, then shows BORA's open beside it.

use bora::BoraBag;
use rosbag::BagReader;
use simfs::IoCtx;

use crate::env::{setup_bag, Platform, ScaleConfig};
use crate::report::{ms, speedup, Table};

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let env = setup_bag(Platform::ext4(), 21.0, scales);

    let mut base_ctx = IoCtx::new();
    let reader = BagReader::open(&env.platform.storage, &env.bag_path, &mut base_ctx)
        .expect("baseline open");
    let chunks = reader.index().chunk_infos.len();
    let base_ns = base_ctx.elapsed_ns();

    let mut bora_ctx = IoCtx::new();
    BoraBag::open(&env.platform.storage, &env.container_root, &mut bora_ctx).expect("bora open");
    let bora_ns = bora_ctx.elapsed_ns();

    // Open cost is dominated by per-chunk seeks. An unscaled 21 GB bag
    // holds 21 GB / 768 KiB chunks; project by the chunk-count ratio.
    let unscaled_chunks = 21.0 * 1e9 / (768.0 * 1024.0);
    let projected_s = base_ns as f64 * (unscaled_chunks / chunks as f64) / 1e9;

    let mut table = Table::new(
        "open21g",
        "Baseline open of a 21 GB bag (paper §II: >7 s on SSD)",
        &["system", "chunks", "open (ms, scaled)", "projected unscaled", "speedup"],
    );
    table.row(vec![
        "rosbag open (Fig. 4a)".into(),
        chunks.to_string(),
        ms(base_ns),
        format!("{projected_s:.2} s"),
        String::new(),
    ]);
    table.row(vec![
        "BORA open (Fig. 4b)".into(),
        "-".into(),
        ms(bora_ns),
        "≈ unchanged".into(),
        speedup(base_ns, bora_ns),
    ]);
    table.note(format!(
        "run at payload scale {:.5}; chunk count (and thus open seeks) scale with bytes",
        scales.large
    ));
    vec![table]
}
