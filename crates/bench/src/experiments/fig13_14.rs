//! Figs. 13 & 14 — queries by start-end time plus topics on the
//! single-node server.
//!
//! The paper fixes the start time and grows the end time in 5-second
//! stair steps. BORA wins up to 11x on single-topic queries (camera_info,
//! Fig. 13d) and up to 3.5x on multi-topic application queries (Fig. 14),
//! staying ~2x ahead even when the window covers the whole bag.

use ros_msgs::{RosDuration, Time};
use workloads::apps::APPLICATIONS;
use workloads::tum::spec;

use crate::env::{setup_bag, BagEnv, Platform, ScaleConfig};
use crate::experiments::common::{bag_time_range, baseline_query_time, bora_query_time};
use crate::report::{ms, speedup, Table};

/// Topics of the four Fig. 13 sub-figures: depth image, RGB image, IMU,
/// and the 11x star — RGB camera_info.
pub const FIG13_TOPICS: [char; 4] = ['A', 'B', 'F', 'C'];

/// Stair-step window lengths in seconds (paper uses +5 s increments; we
/// sample the staircase geometrically out to full-bag coverage).
pub const WINDOWS_S: [f64; 6] = [5.0, 10.0, 20.0, 40.0, 80.0, f64::INFINITY];

fn window_end(start: Time, end_of_bag: Time, seconds: f64) -> (Time, &'static str) {
    if seconds.is_infinite() {
        (end_of_bag + RosDuration::from_sec_f64(1.0), "full")
    } else {
        (start + RosDuration::from_sec_f64(seconds), "")
    }
}

pub fn run_fig13(scales: &ScaleConfig) -> Vec<Table> {
    let env = setup_bag(Platform::ext4(), 21.0, scales);
    let (start, end_of_bag) = bag_time_range(&env);
    FIG13_TOPICS
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let sub = (b'a' + i as u8) as char;
            run_one_topic(&env, id, sub, start, end_of_bag)
        })
        .collect()
}

fn run_one_topic(env: &BagEnv, id: char, sub: char, start: Time, end_of_bag: Time) -> Table {
    let topic = spec(id).name;
    let mut table = Table::new(
        &format!("fig13{sub}"),
        &format!("Query by topic {topic} + start-end time, 21 GB bag (paper Fig. 13{sub})"),
        &["window (s)", "messages", "baseline (ms)", "BORA (ms)", "BORA speedup"],
    );
    for &w in &WINDOWS_S {
        let (end, tag) = window_end(start, end_of_bag, w);
        let base = baseline_query_time(env, &[topic], start, end);
        let ours = bora_query_time(env, &[topic], start, end);
        assert_eq!(base.messages, ours.messages, "window {w}s on {topic}");
        let label = if tag.is_empty() { format!("{w:.0}") } else { tag.to_owned() };
        table.row(vec![
            label,
            ours.messages.to_string(),
            ms(base.total_ns()),
            ms(ours.total_ns()),
            speedup(base.total_ns(), ours.total_ns()),
        ]);
    }
    if id == 'C' {
        table.note("paper: up to 11x on camera_info — tiny result, but the baseline still indexes the whole bag");
    } else {
        table.note("paper: up to 11x single-topic, ≥2x even at full-bag coverage");
    }
    table
}

pub fn run_fig14(scales: &ScaleConfig) -> Vec<Table> {
    let env = setup_bag(Platform::ext4(), 21.0, scales);
    let (start, end_of_bag) = bag_time_range(&env);
    let mut tables = Vec::new();
    for (i, app) in APPLICATIONS.iter().enumerate() {
        let sub = (b'a' + i as u8) as char;
        let topics = app.topics(0);
        let mut table = Table::new(
            &format!("fig14{sub}"),
            &format!("Query by topics + start-end time, {} (paper Fig. 14{sub})", app.full_name()),
            &["window (s)", "messages", "baseline (ms)", "BORA (ms)", "BORA speedup"],
        );
        for &w in &WINDOWS_S {
            let (end, tag) = window_end(start, end_of_bag, w);
            let base = baseline_query_time(&env, &topics, start, end);
            let ours = bora_query_time(&env, &topics, start, end);
            assert_eq!(base.messages, ours.messages);
            let label = if tag.is_empty() { format!("{w:.0}") } else { tag.to_owned() };
            table.row(vec![
                label,
                ours.messages.to_string(),
                ms(base.total_ns()),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
        table.note("paper: up to 3.5x for multi-topic windows");
        tables.push(table);
    }
    tables
}
