//! Figs. 11 & 12 — query time by topics for the four real-world
//! applications (HS, RS, DO, PA) on the single-node server, with small
//! (2.9 GB, Fig. 11) and large (21 GB, Fig. 12) bags.
//!
//! Paper: BORA improves query time by >70% (small) and >50% (large) on
//! average across applications.

use workloads::apps::APPLICATIONS;

use crate::env::{setup_bag, BagEnv, Platform, ScaleConfig};
use crate::experiments::common::{baseline_query, bora_query, Timing};
use crate::report::{ms, speedup, Table};

pub fn run_small(scales: &ScaleConfig) -> Vec<Table> {
    vec![run_apps(scales, 2.9, "fig11", "small bags (2.9 GB)")]
}

pub fn run_large(scales: &ScaleConfig) -> Vec<Table> {
    vec![run_apps(scales, 21.0, "fig12", "large bags (21 GB)")]
}

/// Run an application: PA executes three stages with different topic
/// picks; the others one query. Returns summed timings.
fn run_app(
    env: &BagEnv,
    app: workloads::Application,
    f: impl Fn(&BagEnv, &[&str]) -> Timing,
) -> Timing {
    let stages: Vec<Vec<&'static str>> = match app {
        workloads::Application::PreAnalysis => (0..3).map(|s| app.topics(s)).collect(),
        _ => vec![app.topics(0)],
    };
    let mut total = Timing { open_ns: 0, query_ns: 0, messages: 0 };
    for stage_topics in stages {
        let t = f(env, &stage_topics);
        total.open_ns += t.open_ns;
        total.query_ns += t.query_ns;
        total.messages += t.messages;
    }
    total
}

fn run_apps(scales: &ScaleConfig, gb: f64, id: &str, what: &str) -> Table {
    let mut table = Table::new(
        id,
        &format!("Query by topics, four applications, {what} (paper {id})"),
        &["application", "system", "open (ms)", "query (ms)", "total (ms)", "BORA speedup"],
    );
    for (fs_name, platform) in [("Ext4", Platform::ext4()), ("XFS", Platform::xfs())] {
        let env = setup_bag(platform, gb, scales);
        for app in APPLICATIONS {
            let base = run_app(&env, app, |e, t| baseline_query(e, t, 1));
            let ours = run_app(&env, app, |e, t| bora_query(e, t, 1));
            assert_eq!(base.messages, ours.messages, "result mismatch for {}", app.abbrev());
            table.row(vec![
                app.abbrev().into(),
                fs_name.into(),
                ms(base.open_ns),
                ms(base.query_ns),
                ms(base.total_ns()),
                String::new(),
            ]);
            table.row(vec![
                app.abbrev().into(),
                format!("BORA on {fs_name}"),
                ms(ours.open_ns),
                ms(ours.query_ns),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
    }
    table.note("paper: >70% avg improvement at 2.9 GB (Fig. 11), >50% at 21 GB (Fig. 12)");
    table
}
