//! `ext_crash` — crash-consistency sweep of the container commit path.
//!
//! The organizer stages a container under `<root>.staging` and commits
//! with a single rename; `bora fsck` classifies what a reboot finds and
//! repairs it from the source bag. This experiment *proves* that story
//! mechanically: it counts the mutating storage ops of one capture, then
//! re-runs the capture once per op boundary with a
//! [`simfs::PowerCutSchedule`] power cut armed there — both the clean
//! variant (the boundary op vanishes) and the torn variant (a 1-byte
//! prefix of its payload reaches the medium). For every crash point the
//! rebooted disk must classify as either *nothing persisted* or *Torn*
//! (staging debris only — never a half-committed root), and
//! `fsck::repair` must roll forward to a container whose MANIFEST-ordered
//! content digest is byte-identical to an uncrashed capture's.
//!
//! Any deviation — a crash point that opens Clean with wrong content, a
//! repair that does not converge, a digest mismatch — panics the
//! experiment, so an all-green table is a checked claim, not a printout.

use bora::fsck;
use bora::{BoraError, FsckState, Manifest, OrganizerOptions, RepairOutcome};
use ros_msgs::{md5, sensor_msgs::Imu, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{FaultyStorage, IoCtx, MemStorage, PowerCutSchedule, Storage};

use crate::env::ScaleConfig;
use crate::report::Table;

const SRC: &str = "/src.bag";
const DST: &str = "/c/crash";
const TOPICS: [&str; 3] = ["/imu", "/tf", "/odom"];

/// Build the source bag once and reuse its bytes per crash point.
fn source_bag_bytes(messages_per_topic: u32) -> Vec<u8> {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(&fs, SRC, BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..messages_per_topic {
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = Time::new(i, 0);
        for topic in TOPICS {
            w.write_ros_message(topic, Time::new(i, 0), &imu, &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    fs.read_all(SRC, &mut ctx).unwrap()
}

/// MD5 over the container's files in MANIFEST order (path + content):
/// two containers digest equal iff they are byte-identical file for file.
fn container_digest<S: Storage>(storage: &S, root: &str, ctx: &mut IoCtx) -> String {
    let manifest =
        Manifest::load(storage, root, ctx).unwrap().expect("committed container has a MANIFEST");
    let mut acc = Vec::new();
    for e in manifest.entries() {
        acc.extend_from_slice(e.path.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&storage.read_all(&format!("{root}/{}", e.path), ctx).unwrap());
    }
    md5::hex_digest(&acc)
}

/// A storage with the source bag in place, wrapped for fault injection.
fn fresh_disk(bag_bytes: &[u8]) -> FaultyStorage<MemStorage> {
    let fs = MemStorage::new();
    let mut ctx = IoCtx::new();
    fs.append(SRC, bag_bytes, &mut ctx).unwrap();
    FaultyStorage::new(fs)
}

#[derive(Default)]
struct Tally {
    positions: u64,
    torn: u64,
    unstarted: u64,
    recovered: u64,
    digest_ok: u64,
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    // The sweep re-runs the whole capture per crash point (2 per mutating
    // op), so the bag stays deliberately small; the commit protocol under
    // test does not change with volume.
    let messages_per_topic: u32 = if scales.small < 1.0 / 256.0 { 12 } else { 30 };
    let bag_bytes = source_bag_bytes(messages_per_topic);
    let opts = OrganizerOptions::default();

    // Probe: one uncrashed capture sizes the sweep and fixes the
    // reference digest every repaired container must reproduce.
    let probe = fresh_disk(&bag_bytes);
    let mut ctx = IoCtx::new();
    bora::organizer::duplicate(&probe, SRC, &probe, DST, &opts, &mut ctx).unwrap();
    let total_mutations = probe.mutations();
    let reference = container_digest(probe.inner(), DST, &mut ctx);

    let mut clean_cut = Tally::default();
    let mut torn_cut = Tally::default();
    for cut in PowerCutSchedule::sweep(total_mutations) {
        let faulty = fresh_disk(&bag_bytes);
        let mut ctx = IoCtx::new();
        faulty.arm_power_cut(cut);
        let crash = bora::organizer::duplicate(&faulty, SRC, &faulty, DST, &opts, &mut ctx);
        assert!(crash.is_err(), "an armed power cut must abort the capture");

        // "Reboot": the wrapper is dead, the medium underneath survives.
        let disk = faulty.inner();
        let tally = if cut.torn_bytes.is_some() { &mut torn_cut } else { &mut clean_cut };
        tally.positions += 1;
        match fsck::check(disk, DST, &mut ctx) {
            // The cut landed before anything reached the medium: the
            // capture simply never happened. Run it again.
            Err(BoraError::NotAContainer(_)) => {
                tally.unstarted += 1;
                bora::organizer::duplicate(disk, SRC, disk, DST, &opts, &mut ctx).unwrap();
            }
            Ok(report) => {
                assert_eq!(
                    report.state,
                    FsckState::Torn,
                    "crash at mutation {} ({:?} bytes torn) must leave staging debris, \
                     never a {:?} root",
                    cut.after_mutations,
                    cut.torn_bytes,
                    report.state,
                );
                tally.torn += 1;
                let outcome = fsck::repair(disk, DST, Some((disk, SRC)), &opts, &mut ctx).unwrap();
                assert_eq!(outcome, RepairOutcome::RolledForward);
            }
            Err(e) => panic!("fsck::check failed at mutation {}: {e}", cut.after_mutations),
        }

        let after = fsck::check(disk, DST, &mut ctx).unwrap();
        assert!(after.is_clean(), "repair did not converge at mutation {}", cut.after_mutations);
        tally.recovered += 1;
        assert_eq!(
            container_digest(disk, DST, &mut ctx),
            reference,
            "repaired container differs from the uncrashed capture at mutation {}",
            cut.after_mutations,
        );
        tally.digest_ok += 1;
    }

    let mut t = Table::new(
        "ext_crash",
        "Crash-point sweep: capture under power cuts, fsck classify + roll-forward repair",
        &[
            "crash variant",
            "positions",
            "torn (staging)",
            "nothing persisted",
            "clean after repair",
            "digest == reference",
        ],
    );
    for (name, tally) in [("clean cut", &clean_cut), ("torn tail", &torn_cut)] {
        t.row(vec![
            name.to_owned(),
            tally.positions.to_string(),
            tally.torn.to_string(),
            tally.unstarted.to_string(),
            format!("{}/{}", tally.recovered, tally.positions),
            format!("{}/{}", tally.digest_ok, tally.positions),
        ]);
    }
    t.note(format!(
        "one capture of {} topics x {messages_per_topic} msgs = {total_mutations} mutating \
         storage ops; the sweep crashes at every op boundary, clean and torn",
        TOPICS.len(),
    ));
    t.note(
        "asserted, not just reported: no crash point yields a root that opens Clean with \
         wrong or partial data, and every repair converges to a byte-identical container",
    );
    vec![t]
}
