//! `ext_cluster` — the bora-cluster serving tier: scaling, hedging, and
//! availability under node loss.
//!
//! Three claims, each asserted in-experiment:
//!
//! 1. **Scaling** — with replica-spread routing (`RoutePolicy::Spread`)
//!    a uniform read mix gains ≥ 3× virtual-time throughput going from
//!    1 to 4 nodes at R = 2: replication converted into read bandwidth.
//!    Throughput is `queries / makespan`, makespan the **max** per-node
//!    virtual busy time from each server's own `STATS` — deterministic
//!    cost-model accounting, not wall clock.
//! 2. **Hedging** — under a Zipf-skewed mix the hot container's owner
//!    queues up; hedged reads (adaptive EWMA threshold) cut wall-clock
//!    p99 versus the same config unhedged, with a nonzero hedge win
//!    rate. Wall time is made meaningful by pacing each node's storage:
//!    data reads sleep proportionally to the virtual nanoseconds the
//!    cost model charges, so queue contention is real.
//! 3. **Availability** — killing a node mid-run loses **zero** queries
//!    and corrupts **zero** results: every read completes byte-identical
//!    to its pre-kill answer via transparent failover.
//!
//! The CSV sweep covers nodes ∈ {1,2,4,8} × R ∈ {1,2,3} × hedging
//! on/off over the skewed mix, plus the uniform scaling rows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bora::BoraBag;
use bora_cluster::{
    ClusterClientConfig, ClusterTierConfig, HedgeConfig, LocalCluster, RingConfig, RoutePolicy,
};
use bora_serve::{ClientResult, MemTransport, ServerConfig, WireMessage};
use ros_msgs::Time;
use simfs::{
    ClusterConfig as SimClusterConfig, ClusterStorage, DirEntry, FsResult, IoCtx, MemStorage,
    Metadata, Storage,
};
use workloads::querymix::{self, QueryKind, QueryMixOptions};
use workloads::tum::{generate_bag, GenOptions};

use crate::env::ScaleConfig;
use crate::report::Table;

const CLIENT_THREADS: usize = 6;
/// Zipf exponent for the skewed sweep (rank-0 container ≈ 45% of traffic
/// at 8 containers).
const ZIPF_S: f64 = 1.2;
/// Wall sleep injected per paced data read, as a target for calibration.
const PACE_TARGET: Duration = Duration::from_micros(300);

type PacedCluster = LocalCluster<Arc<PacedStorage>>;
type Client = bora_cluster::ClusterClient<MemTransport<Arc<PacedStorage>>>;

/// A per-node backend that converts the cost model's virtual nanoseconds
/// into real wall time on data reads (`virt / divisor` slept per op), so
/// queueing — and therefore tail latency and hedging — is observable on
/// the wall clock. `divisor = 0` disables pacing.
struct PacedStorage {
    inner: ClusterStorage,
    divisor: u64,
    /// Extra wall-time multiplier — models one degraded node (a failing
    /// disk): its every data read takes `slowdown`× longer than the
    /// same read anywhere else.
    slowdown: u64,
}

impl PacedStorage {
    fn pace<R>(&self, ctx: &mut IoCtx, op: impl FnOnce(&mut IoCtx) -> R) -> R {
        let before = ctx.elapsed_ns();
        let out = op(ctx);
        let virt = ctx.elapsed_ns() - before;
        if let Some(ns) = (virt * self.slowdown).checked_div(self.divisor) {
            std::thread::sleep(Duration::from_nanos(ns));
        }
        out
    }
}

impl Storage for PacedStorage {
    fn create(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.create(path, ctx)
    }
    fn append(&self, path: &str, data: &[u8], ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.append(path, data, ctx)
    }
    fn write_at(&self, path: &str, offset: u64, data: &[u8], ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.write_at(path, offset, data, ctx)
    }
    fn read_at(&self, path: &str, offset: u64, len: usize, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.pace(ctx, |c| self.inner.read_at(path, offset, len, c))
    }
    fn read_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<u8>> {
        self.pace(ctx, |c| self.inner.read_all(path, c))
    }
    fn len(&self, path: &str, ctx: &mut IoCtx) -> FsResult<u64> {
        self.inner.len(path, ctx)
    }
    fn exists(&self, path: &str, ctx: &mut IoCtx) -> bool {
        self.inner.exists(path, ctx)
    }
    fn stat(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Metadata> {
        self.inner.stat(path, ctx)
    }
    fn mkdir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.mkdir_all(path, ctx)
    }
    fn read_dir(&self, path: &str, ctx: &mut IoCtx) -> FsResult<Vec<DirEntry>> {
        self.inner.read_dir(path, ctx)
    }
    fn remove_file(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_file(path, ctx)
    }
    fn remove_dir_all(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.remove_dir_all(path, ctx)
    }
    fn rename(&self, from: &str, to: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.rename(from, to, ctx)
    }
    fn flush(&self, path: &str, ctx: &mut IoCtx) -> FsResult<()> {
        self.inner.flush(path, ctx)
    }
}

fn container_root(i: usize) -> String {
    format!("/c/bag{i}")
}

struct QueryPlan {
    root: String,
    kind: QueryKind,
    topic: String,
    range: (Time, Time),
}

fn plan_queries(mix: &[querymix::Query], topics: &[String], span: (Time, Time)) -> Vec<QueryPlan> {
    let (start, end) = span;
    let span_ns = end.as_nanos() - start.as_nanos();
    mix.iter()
        .map(|q| {
            let topic = topics[q.topic_index % topics.len()].clone();
            let w_start = start.as_nanos() + (span_ns as f64 * q.window_start) as u64;
            let w_end = w_start + (span_ns as f64 * q.window_frac) as u64;
            QueryPlan {
                root: container_root(q.container),
                kind: q.kind,
                topic,
                range: (Time::from_nanos(w_start), Time::from_nanos(w_end)),
            }
        })
        .collect()
}

fn run_query(client: &Client, p: &QueryPlan) -> ClientResult<usize> {
    match p.kind {
        QueryKind::Topics => client.topics(&p.root).map(|t| t.len()),
        QueryKind::Stat => client.stat(&p.root).map(|s| s.messages as usize),
        QueryKind::ReadWindow => {
            client.read_time(&p.root, &[p.topic.as_str()], p.range.0, p.range.1).map(|m| m.len())
        }
        QueryKind::ReadFull => client.read(&p.root, &[p.topic.as_str()]).map(|m| m.len()),
    }
}

struct ConfigSpec {
    phase: &'static str,
    nodes: u32,
    replication: usize,
    policy: RoutePolicy,
    hedge: bool,
    /// `None` = uniform over containers; `Some(s)` = Zipf(s) skew.
    zipf: Option<f64>,
    containers: usize,
    queries: usize,
    paced: bool,
    /// Degrade the node owning the hottest container by this wall-time
    /// factor (the classic hedging scenario: one slow disk under a hot
    /// key). `1` = healthy cluster.
    slow_hot_owner: u64,
    /// Cumulative kind weights over `[Topics, Stat, ReadWindow, ReadFull]`.
    kinds: [f64; 4],
}

/// The standard mixed workload (metadata + reads).
const MIXED_KINDS: [f64; 4] = [0.05, 0.05, 0.4, 0.5];
/// Reads only — the hedge phase uses this so every query is hedgeable
/// (metadata ops route primary-only and would queue behind abandoned
/// hedge legs on the degraded node, measuring the queue, not the hedge).
const READ_KINDS: [f64; 4] = [0.0, 0.0, 0.4, 0.6];

struct ConfigResult {
    queries: usize,
    errors: usize,
    /// Virtual-time throughput: queries per virtual second of cluster
    /// makespan (max per-node busy time).
    virt_qps: f64,
    wall_p99: Duration,
    hedge_issued: u64,
    hedge_wins: u64,
    failovers: u64,
}

fn start_cluster(spec: &ConfigSpec, divisor: u64) -> PacedCluster {
    let ring_cfg = RingConfig { vnodes: 64, replication: spec.replication };
    let divisor = if spec.paced { divisor } else { 0 };
    // The ring is a pure function of membership, so the hot container's
    // owner is known before any node exists — degrade that one's storage.
    let slow_node = (spec.slow_hot_owner > 1)
        .then(|| bora_cluster::Ring::with_nodes(ring_cfg, spec.nodes).owner(&container_root(0)))
        .flatten();
    let slowdown = spec.slow_hot_owner.max(1);
    LocalCluster::start_with(
        ClusterTierConfig {
            nodes: spec.nodes,
            ring: ring_cfg,
            server: ServerConfig {
                workers: 2,
                queue_capacity: 512,
                cache_capacity: spec.containers,
                ..ServerConfig::default()
            },
            ..ClusterTierConfig::default()
        },
        move |id| {
            let slowdown = if Some(id) == slow_node { slowdown } else { 1 };
            Arc::new(PacedStorage {
                inner: ClusterStorage::new(SimClusterConfig::pvfs4()),
                divisor,
                slowdown,
            })
        },
    )
}

fn client_config(spec: &ConfigSpec) -> ClusterClientConfig {
    ClusterClientConfig {
        policy: spec.policy,
        // Threshold 2x the EWMA read latency: the EWMA tracks the
        // common case (healthy replicas and hedge winners), so the
        // trigger clears ordinary queueing noise but sits far below a
        // badly degraded node's service time.
        hedge: spec
            .hedge
            .then(|| HedgeConfig { min_threshold: Duration::from_micros(300), factor: 2.0 }),
        ..ClusterClientConfig::default()
    }
}

/// Run one cluster configuration and tear it down.
fn run_config<SS: Storage>(
    spec: &ConfigSpec,
    staging: &SS,
    topics: &[String],
    span: (Time, Time),
    scales: &ScaleConfig,
    divisor: u64,
) -> ConfigResult {
    let mix = querymix::generate(&QueryMixOptions {
        containers: spec.containers,
        hot_set: 2,
        hot_traffic: 0.9,
        queries: spec.queries,
        kind_weights: spec.kinds,
        seed: scales.seed ^ 0xC1057E8,
        zipf_s: Some(spec.zipf.unwrap_or(0.0)),
    });
    let plans = plan_queries(&mix, topics, span);

    let cluster = start_cluster(spec, divisor);
    let roots: Vec<String> = (0..spec.containers).map(container_root).collect();
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(staging, &root_refs).unwrap();
    let client = cluster.client(client_config(spec));

    let issued0 = bora_obs::counter("cluster.hedge.issued").get();
    let wins0 = bora_obs::counter("cluster.hedge.wins").get();
    let fails0 = bora_obs::counter("cluster.failover").get();

    let latencies = Mutex::new(Vec::with_capacity(plans.len()));
    let errors = AtomicUsize::new(0);
    let chunk = plans.len().div_ceil(CLIENT_THREADS);
    std::thread::scope(|scope| {
        for part in plans.chunks(chunk) {
            let client = client.clone();
            let latencies = &latencies;
            let errors = &errors;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(part.len());
                for p in part {
                    let t0 = Instant::now();
                    if run_query(&client, p).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    local.push(t0.elapsed());
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    // Makespan in virtual time: the busiest node's cost-model total.
    let makespan_ns = cluster
        .node_ids()
        .iter()
        .filter_map(|id| client.node_stats(*id).ok())
        .map(|snap| snap.ops.iter().map(|(_, op)| op.virt_mean_ns * op.count).sum::<u64>())
        .max()
        .unwrap_or(0);

    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let p99 = lats[(lats.len() * 99 / 100).min(lats.len() - 1)];

    cluster.shutdown();
    ConfigResult {
        queries: plans.len(),
        errors: errors.into_inner(),
        virt_qps: plans.len() as f64 / (makespan_ns as f64 / 1e9).max(1e-12),
        wall_p99: p99,
        hedge_issued: bora_obs::counter("cluster.hedge.issued").get() - issued0,
        hedge_wins: bora_obs::counter("cluster.hedge.wins").get() - wins0,
        failovers: bora_obs::counter("cluster.failover").get() - fails0,
    }
}

/// Availability phase: kill the hot container's owner mid-run; every
/// query must still complete and match its pre-kill answer exactly.
fn run_kill_phase<SS: Storage>(
    staging: &SS,
    topics: &[String],
    scales: &ScaleConfig,
    divisor: u64,
) -> Table {
    const CONTAINERS: usize = 6;
    const QUERIES: usize = 180;
    let spec = ConfigSpec {
        phase: "kill",
        nodes: 4,
        replication: 2,
        policy: RoutePolicy::Primary,
        hedge: true,
        zipf: Some(ZIPF_S),
        containers: CONTAINERS,
        queries: QUERIES,
        paced: true,
        slow_hot_owner: 1,
        kinds: [0.0, 0.0, 0.0, 1.0],
    };
    let mix = querymix::generate(&QueryMixOptions {
        containers: CONTAINERS,
        hot_set: 2,
        hot_traffic: 0.9,
        queries: QUERIES,
        kind_weights: [0.0, 0.0, 0.0, 1.0], // full reads: every result comparable
        seed: scales.seed ^ 0x4B11,
        zipf_s: Some(ZIPF_S),
    });

    let cluster = start_cluster(&spec, divisor);
    let roots: Vec<String> = (0..CONTAINERS).map(container_root).collect();
    let root_refs: Vec<&str> = roots.iter().map(String::as_str).collect();
    cluster.provision(staging, &root_refs).unwrap();
    let client = cluster.client(client_config(&spec));

    // Pre-kill ground truth, per (container, topic) pair the mix uses.
    let expected: Vec<Vec<Vec<WireMessage>>> = roots
        .iter()
        .map(|root| topics.iter().map(|t| client.read(root, &[t.as_str()]).unwrap()).collect())
        .collect();

    // The node to kill: owner of the Zipf rank-0 (hottest) container.
    let victim = client.owner(&roots[0]).unwrap();
    let fails0 = bora_obs::counter("cluster.failover").get();

    let done = AtomicUsize::new(0);
    let corrupt = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let chunk = mix.len().div_ceil(CLIENT_THREADS);
    std::thread::scope(|scope| {
        for part in mix.chunks(chunk) {
            let client = client.clone();
            let (done, corrupt, errors) = (&done, &corrupt, &errors);
            let (roots, topics, expected) = (&roots, topics, &expected);
            scope.spawn(move || {
                for q in part {
                    let ti = q.topic_index % topics.len();
                    match client.read(&roots[q.container], &[topics[ti].as_str()]) {
                        Ok(msgs) => {
                            if msgs != expected[q.container][ti] {
                                corrupt.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Pull the trigger once a quarter of the traffic is through, so
        // the death lands mid-run with in-flight queries on both sides.
        while done.load(Ordering::Relaxed) < QUERIES / 4 {
            std::thread::yield_now();
        }
        cluster.kill(victim);
    });

    let failovers = bora_obs::counter("cluster.failover").get() - fails0;
    let heal = cluster.heal().unwrap();
    let completed = QUERIES - errors.load(Ordering::Relaxed);
    let corrupt = corrupt.into_inner();

    let mut table = Table::new(
        "ext_cluster_kill",
        "Extension: bora-cluster — node killed mid-run, availability and integrity",
        &[
            "queries",
            "completed",
            "corrupt results",
            "failover hops",
            "heal copies",
            "heal batches",
        ],
    );
    table.row(vec![
        QUERIES.to_string(),
        completed.to_string(),
        corrupt.to_string(),
        failovers.to_string(),
        heal.copies.to_string(),
        heal.batches.to_string(),
    ]);
    table.note(format!(
        "4 nodes, R=2, hedged, Zipf({ZIPF_S}) full-read mix; killed node {victim} (owner of the \
         hottest container) after 25% of queries; every result compared byte-for-byte against its \
         pre-kill answer"
    ));
    cluster.shutdown();

    assert_eq!(completed, QUERIES, "{} queries failed after the node kill", QUERIES - completed);
    assert_eq!(corrupt, 0, "{corrupt} queries returned corrupt results after the node kill");
    assert!(failovers > 0, "a node died mid-run but no query failed over");
    assert!(heal.copies > 0, "the dead node held replicas; heal must re-replicate");
    table
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    // One Handheld-SLAM bag duplicated into identical containers on an
    // unpaced staging fs; every cluster config provisions from it.
    let staging = MemStorage::new();
    let mut ctx = IoCtx::new();
    let opts = GenOptions {
        count_scale: (scales.small * 0.5).min(0.015),
        payload_scale: 0.003,
        seed: scales.seed ^ 0xC105,
        ..GenOptions::default()
    };
    generate_bag(&staging, "/hs.bag", &opts, &mut ctx).unwrap();
    const MAX_CONTAINERS: usize = 16;
    for i in 0..MAX_CONTAINERS {
        bora::duplicate(
            &staging,
            "/hs.bag",
            &staging,
            &container_root(i),
            &Default::default(),
            &mut ctx,
        )
        .unwrap();
    }
    let probe = BoraBag::open(&staging, &container_root(0), &mut ctx).unwrap();
    let mut topics: Vec<String> = probe.topics().into_iter().map(str::to_owned).collect();
    topics.sort();
    let span = probe.time_range();
    drop(probe);

    // Calibrate pacing: a full single-topic read's virtual cost maps to
    // PACE_TARGET of wall sleep.
    let divisor = {
        let probe_fs = ClusterStorage::new(SimClusterConfig::pvfs4());
        let mut pctx = IoCtx::new();
        bora::organizer::copy_container(
            &staging,
            &container_root(0),
            &probe_fs,
            "/probe",
            &mut pctx,
        )
        .unwrap();
        let mut rctx = IoCtx::new();
        let bag = BoraBag::open(&probe_fs, "/probe", &mut rctx).unwrap();
        bag.read_topics(&[topics[0].as_str()], &mut rctx).unwrap();
        (rctx.elapsed_ns() / PACE_TARGET.as_nanos() as u64).max(1)
    };

    let mut table = Table::new(
        "ext_cluster",
        "Extension: bora-cluster — sharded replicated serving: scaling, hedging, failover",
        &[
            "phase",
            "nodes",
            "R",
            "policy",
            "mix",
            "hedge",
            "queries",
            "errors",
            "virt throughput (q/s)",
            "wall p99 (us)",
            "hedge wins/issued",
            "failovers",
        ],
    );

    // --- Phase 1: uniform scaling at R=2, replica-spread routing. The
    // claim is about *read* bandwidth, so the mix is reads only —
    // metadata ops route primary-first and would pin part of the load
    // to whichever nodes own the most containers. ---
    let mut uniform_qps = Vec::new();
    for nodes in [1u32, 2, 4, 8] {
        let spec = ConfigSpec {
            phase: "scale",
            nodes,
            replication: 2,
            policy: RoutePolicy::Spread,
            hedge: false,
            zipf: None,
            containers: MAX_CONTAINERS,
            queries: 320,
            paced: false,
            slow_hot_owner: 1,
            kinds: READ_KINDS,
        };
        let r = run_config(&spec, &staging, &topics, span, scales, divisor);
        uniform_qps.push((nodes, r.virt_qps));
        push_row(&mut table, &spec, &r);
    }

    // --- Phase 2: the skewed sweep, nodes × R × hedging. ---
    let mut sweep: Vec<(u32, usize, bool, ConfigResult)> = Vec::new();
    for nodes in [1u32, 2, 4, 8] {
        for replication in [1usize, 2, 3] {
            for hedge in [false, true] {
                let spec = ConfigSpec {
                    phase: "sweep",
                    nodes,
                    replication,
                    policy: RoutePolicy::Primary,
                    hedge,
                    zipf: Some(ZIPF_S),
                    containers: 8,
                    queries: 120,
                    paced: true,
                    slow_hot_owner: 1,
                    kinds: MIXED_KINDS,
                };
                let r = run_config(&spec, &staging, &topics, span, scales, divisor);
                push_row(&mut table, &spec, &r);
                sweep.push((nodes, replication, hedge, r));
            }
        }
    }

    // --- Phase 3: hedging against a degraded node. The classic tail
    // scenario: the Zipf-hot container's owner runs 50x slower (one bad
    // disk); hedged reads escape to the healthy replica. ---
    let mut hedge_results = Vec::new();
    for hedge in [false, true] {
        let spec = ConfigSpec {
            phase: "hedge",
            nodes: 4,
            replication: 2,
            policy: RoutePolicy::Primary,
            hedge,
            zipf: Some(1.5),
            containers: 8,
            queries: 240,
            paced: true,
            slow_hot_owner: 50,
            kinds: READ_KINDS,
        };
        let r = run_config(&spec, &staging, &topics, span, scales, divisor);
        push_row(&mut table, &spec, &r);
        hedge_results.push(r);
    }

    let table2 = run_kill_phase(&staging, &topics, scales, divisor);

    // --- Assertions the PR's claims ride on. ---
    let q1 = uniform_qps.iter().find(|(n, _)| *n == 1).unwrap().1;
    let q4 = uniform_qps.iter().find(|(n, _)| *n == 4).unwrap().1;
    let scaling = q4 / q1;
    table.note(format!(
        "uniform R=2 Spread scaling 1→4 nodes: {scaling:.2}x virtual-time throughput \
         (target ≥ 3x); throughput = queries / max per-node virtual busy time from STATS"
    ));
    assert!(scaling >= 3.0, "1→4 node scaling {scaling:.2}x below the 3x bar");

    let (unhedged, hedged) = (&hedge_results[0], &hedge_results[1]);
    table.note(format!(
        "hedge phase (4 nodes, R=2, Zipf(1.5), hot owner 50x degraded): wall p99 {:?} → {:?}, \
         {} wins / {} issued",
        unhedged.wall_p99, hedged.wall_p99, hedged.hedge_wins, hedged.hedge_issued
    ));
    assert!(
        hedged.hedge_wins > 0,
        "hedging enabled under skew but no hedge ever won ({} issued)",
        hedged.hedge_issued
    );
    assert!(
        hedged.wall_p99 < unhedged.wall_p99,
        "hedged p99 {:?} not below unhedged {:?}",
        hedged.wall_p99,
        unhedged.wall_p99
    );
    let total_errors: usize = sweep.iter().map(|(_, _, _, r)| r.errors).sum::<usize>()
        + hedge_results.iter().map(|r| r.errors).sum::<usize>();
    assert_eq!(total_errors, 0, "sweep queries failed on a healthy cluster");
    table.note(
        "sweep mix: Zipf-skewed over 8 containers, Primary routing, storage paced so queue \
         contention is wall-visible; scale rows unpaced (virtual accounting only)",
    );

    vec![table, table2]
}

fn push_row(table: &mut Table, spec: &ConfigSpec, r: &ConfigResult) {
    table.row(vec![
        spec.phase.into(),
        spec.nodes.to_string(),
        spec.replication.to_string(),
        format!("{:?}", spec.policy),
        match spec.zipf {
            Some(s) => format!("zipf({s})"),
            None => "uniform".into(),
        },
        if spec.hedge { "on" } else { "off" }.into(),
        r.queries.to_string(),
        r.errors.to_string(),
        format!("{:.0}", r.virt_qps),
        format!("{:.0}", r.wall_p99.as_secs_f64() * 1e6),
        format!("{}/{}", r.hedge_wins, r.hedge_issued),
        r.failovers.to_string(),
    ]);
}
