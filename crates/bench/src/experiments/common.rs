//! Shared measurement helpers: run one query both ways and report the
//! virtual-clock split between open and query.

use bora::BoraBag;
use ros_msgs::Time;
use rosbag::BagReader;
use simfs::IoCtx;

use crate::env::BagEnv;

/// Timings of one measured operation.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    pub open_ns: u64,
    pub query_ns: u64,
    pub messages: u64,
}

impl Timing {
    pub fn total_ns(&self) -> u64 {
        self.open_ns + self.query_ns
    }
}

/// Baseline: traditional `rosbag` open + `read_messages(topics)`.
pub fn baseline_query(env: &BagEnv, topics: &[&str], concurrency: u32) -> Timing {
    let storage = &env.platform.storage;
    let mut ctx = IoCtx::with_concurrency(concurrency);
    let reader = BagReader::open(storage, &env.bag_path, &mut ctx).expect("baseline open");
    let open_ns = ctx.elapsed_ns();
    let msgs = reader.read_messages(topics, &mut ctx).expect("baseline query");
    Timing { open_ns, query_ns: ctx.elapsed_ns() - open_ns, messages: msgs.len() as u64 }
}

/// BORA: tag-manager open + `read_topics`.
pub fn bora_query(env: &BagEnv, topics: &[&str], concurrency: u32) -> Timing {
    let storage = &env.platform.storage;
    let mut ctx = IoCtx::with_concurrency(concurrency);
    let bag = BoraBag::open(storage, &env.container_root, &mut ctx).expect("bora open");
    let open_ns = ctx.elapsed_ns();
    let msgs = bag.read_topics(topics, &mut ctx).expect("bora query");
    Timing { open_ns, query_ns: ctx.elapsed_ns() - open_ns, messages: msgs.len() as u64 }
}

/// Baseline time-range query (merge-sort of all topic entries, then read).
pub fn baseline_query_time(env: &BagEnv, topics: &[&str], start: Time, end: Time) -> Timing {
    let storage = &env.platform.storage;
    let mut ctx = IoCtx::new();
    let reader = BagReader::open(storage, &env.bag_path, &mut ctx).expect("baseline open");
    let open_ns = ctx.elapsed_ns();
    let msgs =
        reader.read_messages_time(topics, start, end, &mut ctx).expect("baseline time query");
    Timing { open_ns, query_ns: ctx.elapsed_ns() - open_ns, messages: msgs.len() as u64 }
}

/// BORA time-range query through the coarse-grain time index.
pub fn bora_query_time(env: &BagEnv, topics: &[&str], start: Time, end: Time) -> Timing {
    let storage = &env.platform.storage;
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(storage, &env.container_root, &mut ctx).expect("bora open");
    let open_ns = ctx.elapsed_ns();
    let msgs = bag.read_topics_time(topics, start, end, &mut ctx).expect("bora time query");
    Timing { open_ns, query_ns: ctx.elapsed_ns() - open_ns, messages: msgs.len() as u64 }
}

/// The time span actually covered by a generated bag.
pub fn bag_time_range(env: &BagEnv) -> (Time, Time) {
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&env.platform.storage, &env.container_root, &mut ctx)
        .expect("open for range");
    bag.time_range()
}
