//! Table IV — I/O middleware comparison.
//!
//! The paper's Table IV is qualitative; this reproduction grounds two of
//! its columns in *measured* behaviour of the two middleware systems we
//! actually implement (PLFS-lite and BORA): both interpose via a
//! FUSE-style layer, PLFS's layout is checkpoint-oriented while BORA's is
//! semantic, and only BORA turns a topic query into a contiguous read.

use bora::{BoraBag, OrganizerOptions};
use plfs_lite::PlfsStorage;
use rosbag::BagReader;
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};
use workloads::tum::{generate_bag, topic};

use crate::env::ScaleConfig;
use crate::report::{ms, Table};

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    // Qualitative rows, straight from the paper.
    let mut qual = Table::new(
        "table4",
        "I/O middleware comparison (paper Table IV)",
        &["system", "interposition", "usage", "app. modification"],
    );
    for row in [
        ["HDF5", "Library", "Scientific Data", "No"],
        ["ADIOS", "Library", "Checkpoint-restart", "No"],
        ["PLFS", "FUSE or Library", "Checkpoint-restart", "Yes"],
        ["ROMIO", "Library", "MPI-IO", "No"],
        ["BORA", "FUSE or Library", "Bag Enhancement", "Yes"],
    ] {
        qual.row(row.iter().map(|s| s.to_string()).collect());
    }
    qual.note("HDF5/ADIOS/ROMIO rows are the paper's qualitative claims; PLFS and BORA are implemented here");

    // Measured supplement: the same topic query through each implemented
    // middleware on the same device model.
    let mut measured = Table::new(
        "table4m",
        "Measured supplement: one topic query through each implemented layer",
        &["layer", "semantics", "query (ms)"],
    );
    let opts = scales.gen_for_gb(2.9);

    let plain = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    generate_bag(&plain, "/b.bag", &opts, &mut ctx).unwrap();
    let mut qctx = IoCtx::new();
    let r = BagReader::open(&plain, "/b.bag", &mut qctx).unwrap();
    r.read_messages(&[topic::RGB_CAMERA_INFO], &mut qctx).unwrap();
    measured.row(vec!["none (plain rosbag)".into(), "byte stream".into(), ms(qctx.elapsed_ns())]);

    let plfs = PlfsStorage::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut ctx = IoCtx::new();
    generate_bag(&plfs, "/b.bag", &opts, &mut ctx).unwrap();
    let mut qctx = IoCtx::new();
    let r = BagReader::open(&plfs, "/b.bag", &mut qctx).unwrap();
    r.read_messages(&[topic::RGB_CAMERA_INFO], &mut qctx).unwrap();
    measured.row(vec!["PLFS-lite".into(), "byte extents".into(), ms(qctx.elapsed_ns())]);

    let bora_fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    generate_bag(&bora_fs, "/b.bag", &opts, &mut ctx).unwrap();
    bora::organizer::duplicate(
        &bora_fs,
        "/b.bag",
        &bora_fs,
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    let mut qctx = IoCtx::new();
    let bag = BoraBag::open(&bora_fs, "/c", &mut qctx).unwrap();
    bag.read_topic(topic::RGB_CAMERA_INFO, &mut qctx).unwrap();
    measured.row(vec!["BORA".into(), "topics + time".into(), ms(qctx.elapsed_ns())]);
    measured.note("same workload, same device model: semantics-blind middleware adds cost, semantic middleware removes it");

    vec![qual, measured]
}
