//! `ext_pool` — the global buffer pool + compressed columnar topic
//! blocks, measured end to end (not in the paper).
//!
//! Four questions, four tables:
//!
//! * **cold vs hot scan** — the same bulk topic scan against v1 and
//!   block-framed containers, pool cold then pool warm. A warm scan of a
//!   blocked container pays neither storage reads nor decompression, so
//!   it must be ≥3× cheaper on the virtual clock than its cold run.
//! * **on-disk bytes** — LZSS block framing must at least halve the
//!   IMU-dominated topic's data file.
//! * **pool-size sweep** — hit ratio and warm-scan cost as the byte
//!   budget shrinks below the working set (clock-sweep eviction floor).
//! * **heal traffic** — re-replication copies container files verbatim,
//!   so heal wire bytes drop with the same ratio the disk does.
//!
//! Every claim is asserted in-process (CI runs this experiment with a
//! small `BORA_POOL_BYTES` as a regression gate), and the scan results
//! are compared byte-for-byte across {raw, lz} × {cold, warm}: the
//! codec and the cache must be invisible to readers.
//!
//! Scans use `read_topic_raw` (bulk bytes, no per-message FUSE delivery
//! charge), so the virtual-clock deltas isolate storage + codec + pool.

use std::sync::Arc;

use bora::organizer::copy_container;
use bora::{BlockCodec, BlockParams, BoraBag, BufferPool, OrganizerOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::Time;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};

use crate::env::ScaleConfig;
use crate::report::{ms, size, speedup, Table};

const TOPIC: &str = "/imu";
const MSGS: u32 = 16_000;

type Fs = TimedStorage<MemStorage>;

/// Build the source bag (IMU-dominated: highly structured, compressible)
/// and duplicate it into a v1 and a block-framed container.
fn stage(fs: &Fs, ctx: &mut IoCtx) {
    let mut w = BagWriter::create(fs, "/m.bag", BagWriterOptions::default(), ctx).unwrap();
    for i in 0..MSGS {
        let t = Time::from_nanos(1_000_000_000 + i as u64 * 5_000_000);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        imu.angular_velocity.x = (i % 64) as f64 * 0.01;
        imu.linear_acceleration.z = 9.81;
        w.write_ros_message(TOPIC, t, &imu, ctx).unwrap();
    }
    w.close(ctx).unwrap();
    let raw = OrganizerOptions::default();
    bora::duplicate(fs, "/m.bag", fs, "/c_raw", &raw, ctx).unwrap();
    let lz = OrganizerOptions {
        block: Some(BlockParams { codec: BlockCodec::Lzss, block_size: 64 * 1024 }),
        ..OrganizerOptions::default()
    };
    bora::duplicate(fs, "/m.bag", fs, "/c_lz", &lz, ctx).unwrap();
}

/// One full-topic scan; returns `(virtual ns, data bytes)`.
fn scan(bag: &BoraBag<&Fs>) -> (u64, Vec<u8>) {
    let mut ctx = IoCtx::new();
    let (index, data) = bag.read_topic_raw(TOPIC, &mut ctx).unwrap();
    assert_eq!(index.len(), MSGS as usize);
    (ctx.elapsed_ns(), data)
}

fn data_file_len(fs: &Fs, root: &str) -> u64 {
    let mut ctx = IoCtx::new();
    let mut total = 0u64;
    for f in ["data", "index", "tindex", "blocks"] {
        let p = format!("{root}{TOPIC}/{f}");
        if fs.exists(&p, &mut ctx) {
            total += fs.len(&p, &mut ctx).unwrap();
        }
    }
    total
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let _ = scales;
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    stage(&fs, &mut ctx);

    // ---------------------------------------------- cold vs hot scans
    let mut scans = Table::new(
        "ext_pool",
        "Extension: buffer pool + compressed blocks — cold vs hot bulk scan (not in the paper)",
        &["container", "on-disk", "cold scan (ms)", "hot scan (ms)", "hot speedup", "hit ratio"],
    );
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut lz_cold_ns = 0;
    let mut lz_hot_ns = 0;
    for (label, root) in [("v1 raw", "/c_raw"), ("lz blocks", "/c_lz")] {
        // `from_env` honors BORA_POOL_BYTES — the one knob CI turns.
        let pool = BufferPool::from_env();
        let bag = BoraBag::open(&fs, root, &mut ctx).unwrap().with_pool(Arc::clone(&pool));
        let (cold_ns, cold_data) = scan(&bag);
        let (hot_ns, hot_data) = scan(&bag);
        assert_eq!(cold_data, hot_data, "{label}: warm scan changed bytes");
        payloads.push(cold_data);
        if root == "/c_lz" {
            (lz_cold_ns, lz_hot_ns) = (cold_ns, hot_ns);
        }
        let s = pool.stats();
        scans.row(vec![
            label.into(),
            size(data_file_len(&fs, root)),
            ms(cold_ns),
            ms(hot_ns),
            speedup(cold_ns, hot_ns),
            format!("{:.0}%", s.hit_ratio() * 100.0),
        ]);
    }
    // The codec and the cache are invisible: all four scans agree.
    assert!(payloads.windows(2).all(|w| w[0] == w[1]), "raw and lz scans disagree");
    assert!(
        lz_hot_ns * 3 <= lz_cold_ns,
        "hot scan must be ≥3x cold: cold {lz_cold_ns} ns, hot {lz_hot_ns} ns"
    );
    let raw_disk = data_file_len(&fs, "/c_raw");
    let lz_disk = data_file_len(&fs, "/c_lz");
    assert!(lz_disk * 2 <= raw_disk, "blocks must halve the disk: {raw_disk} -> {lz_disk}");
    scans.note(format!(
        "decode cost is the cold-scan delta vs v1; compression ratio {:.2}x on {} of topic files",
        raw_disk as f64 / lz_disk as f64,
        size(raw_disk),
    ));

    // ---------------------------------------------- pool-size sweep
    let mut sweep = Table::new(
        "ext_pool_sweep",
        "Extension: pool byte-budget sweep over the blocked container",
        &["budget", "hit ratio", "evictions", "warm scan (ms)"],
    );
    // The pool caches *decoded* pages, so the working set is the
    // topic's logical byte length (the v1 data file), not the
    // compressed on-disk size.
    let working_set = {
        let mut wctx = IoCtx::new();
        fs.len(&format!("/c_raw{TOPIC}/data"), &mut wctx).unwrap().max(1)
    };
    let mut thrashed_ns = 0;
    let mut fits_ns = 0;
    for factor in [4u64, 2, 1] {
        // Budgets at 1/4 and 1/2 of the decoded working set, then 2x:
        // the budget is split across 8 shards, so holding the set needs
        // headroom for hash imbalance, exactly like sizing a real cache.
        let budget = if factor == 1 { working_set * 2 } else { working_set / factor };
        let pool = BufferPool::with_page_size(budget, 64 * 1024);
        let bag = BoraBag::open(&fs, "/c_lz", &mut ctx).unwrap().with_pool(Arc::clone(&pool));
        scan(&bag);
        let (warm_ns, _) = scan(&bag);
        let s = pool.stats();
        assert!(s.resident_bytes <= s.budget_bytes, "pool overran its budget");
        if factor == 4 {
            thrashed_ns = warm_ns;
        } else if factor == 1 {
            fits_ns = warm_ns;
        }
        sweep.row(vec![
            size(budget),
            format!("{:.0}%", s.hit_ratio() * 100.0),
            s.evictions.to_string(),
            ms(warm_ns),
        ]);
    }
    // A budget that holds the decoded working set turns the warm scan
    // into pure cache hits; one at a quarter of it thrashes.
    assert!(
        fits_ns * 3 <= thrashed_ns,
        "generous budget did not beat the thrashing one: {thrashed_ns} ns -> {fits_ns} ns"
    );
    sweep.note("hit ratio collapses once the budget drops below the decoded working set");

    // ---------------------------------------------- heal wire traffic
    let mut heal = Table::new(
        "ext_pool_heal",
        "Extension: heal/migration wire bytes, v1 vs block-framed container",
        &["container", "copy bytes", "vs v1"],
    );
    let dst = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut raw_copied = 0;
    for (label, root) in [("v1 raw", "/c_raw"), ("lz blocks", "/c_lz")] {
        let mut cctx = IoCtx::new();
        let copied = copy_container(&fs, root, &dst, root, &mut cctx).unwrap();
        if root == "/c_raw" {
            raw_copied = copied;
        } else {
            // Proportional: block framing saves the same bytes on the
            // wire that it saves on disk (a copy ships files verbatim).
            assert!(copied * 2 <= raw_copied, "heal traffic not reduced: {raw_copied} -> {copied}");
        }
        heal.row(vec![
            label.into(),
            size(copied),
            format!("{:.2}x", raw_copied as f64 / copied.max(1) as f64),
        ]);
    }
    heal.note("re-replication copies container files verbatim — compressed blocks ship compressed");

    vec![scans, sweep, heal]
}
