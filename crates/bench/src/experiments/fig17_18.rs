//! Figs. 17 & 18 — robotic swarm analysis on the Tianhe-1A Lustre
//! subsystem.
//!
//! One process per bag, all launched simultaneously; every process runs
//! the Robot SLAM extraction (depth image + RGB image + IMU). The paper
//! reports >10x overall improvement at 100 robots × 42 GB and up to
//! 3,113x on the open phase — the baseline's whole-bag index scan
//! multiplied by a saturated metadata path, versus BORA's directory
//! listing.
//!
//! Robot *i* analyzes materialized bag `i mod distinct_bags` (identical
//! per-process work by construction; contention is declared for the full
//! swarm — see DESIGN.md's memory note).

use bora::BoraBag;
use ros_msgs::{RosDuration, Time};
use rosbag::BagReader;
use simfs::IoCtx;
use workloads::apps::Application;
use workloads::swarm::{generate_swarm, Swarm};

use crate::env::{Platform, ScaleConfig};
use crate::report::{ms, speedup, Table};

/// Swarm sizes of the paper.
pub const SWARM_SIZES: [usize; 3] = [10, 50, 100];

struct SwarmEnv {
    platform: Platform,
    swarm: Swarm,
    /// Container root per distinct bag.
    containers: Vec<String>,
}

fn setup_swarm(scales: &ScaleConfig, robots: usize, gb: f64) -> SwarmEnv {
    let platform = Platform::tianhe();
    let mut ctx = IoCtx::new();
    let opts = scales.gen_for_gb(gb);
    let swarm = generate_swarm(
        &platform.storage,
        "/swarm",
        robots,
        scales.swarm_distinct_bags,
        &opts,
        &mut ctx,
    )
    .expect("swarm generation");

    let mut containers = Vec::new();
    for (i, bag_path) in swarm.bag_paths.iter().enumerate() {
        let root = format!("/bora/robot{i}");
        bora::organizer::duplicate(
            &platform.storage,
            bag_path,
            &platform.storage,
            &root,
            &bora::OrganizerOptions::default(),
            &mut ctx,
        )
        .expect("swarm duplicate");
        containers.push(root);
    }
    SwarmEnv { platform, swarm, containers }
}

impl SwarmEnv {
    fn container_for_robot(&self, robot: usize) -> &str {
        &self.containers[robot % self.containers.len()]
    }
}

/// Per-phase makespans of a swarm run.
struct SwarmTiming {
    open_ns: u64,
    query_ns: u64,
}

/// Execute one *representative* process per distinct bag, each declaring
/// the full swarm as its concurrency, and take the max. Per-robot work is
/// identical across robots by construction (same bag shape), so the
/// representatives' maximum equals the full swarm's makespan while costing
/// `distinct_bags` real executions instead of up to 100.
fn run_representatives(
    robots: usize,
    reps: usize,
    f: impl Fn(usize, &mut IoCtx) + Sync,
) -> (Vec<IoCtx>, u64) {
    let mut ctxs: Vec<IoCtx> =
        (0..reps.min(robots)).map(|_| IoCtx::with_concurrency(robots as u32)).collect();
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            handles.push(scope.spawn(move |_| f(i, ctx)));
        }
        for h in handles {
            h.join().expect("representative task panicked");
        }
    })
    .expect("scope");
    let makespan = ctxs.iter().map(|c| c.elapsed_ns()).max().unwrap_or(0);
    (ctxs, makespan)
}

fn swarm_baseline(env: &SwarmEnv, topics: &[&str], window: Option<(Time, Time)>) -> SwarmTiming {
    let storage = &env.platform.storage;
    let reps = env.containers.len();
    let opens = std::sync::Mutex::new(vec![0u64; reps]);
    let (_, makespan) = run_representatives(env.swarm.robots, reps, |rep, ctx| {
        let reader = BagReader::open(&*storage, env.swarm.bag_for_robot(rep), ctx)
            .expect("baseline swarm open");
        opens.lock().unwrap()[rep] = ctx.elapsed_ns();
        match window {
            None => {
                reader.read_messages(topics, ctx).expect("swarm query");
            }
            Some((s, e)) => {
                reader.read_messages_time(topics, s, e, ctx).expect("swarm query");
            }
        }
    });
    let open_ns = opens.lock().unwrap().iter().copied().max().unwrap_or(0);
    SwarmTiming { open_ns, query_ns: makespan.saturating_sub(open_ns) }
}

fn swarm_bora(env: &SwarmEnv, topics: &[&str], window: Option<(Time, Time)>) -> SwarmTiming {
    let storage = &env.platform.storage;
    let reps = env.containers.len();
    let opens = std::sync::Mutex::new(vec![0u64; reps]);
    let (_, makespan) = run_representatives(env.swarm.robots, reps, |rep, ctx| {
        let bag =
            BoraBag::open(&*storage, env.container_for_robot(rep), ctx).expect("bora swarm open");
        opens.lock().unwrap()[rep] = ctx.elapsed_ns();
        match window {
            None => {
                bag.read_topics(topics, ctx).expect("bora swarm query");
            }
            Some((s, e)) => {
                bag.read_topics_time(topics, s, e, ctx).expect("bora swarm query");
            }
        }
    });
    let open_ns = opens.lock().unwrap().iter().copied().max().unwrap_or(0);
    SwarmTiming { open_ns, query_ns: makespan.saturating_sub(open_ns) }
}

pub fn run_fig17(scales: &ScaleConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    for (sub, gb) in [('a', 21.0), ('b', 42.0)] {
        let mut table = Table::new(
            &format!("fig17{sub}"),
            &format!("Robotic swarm on Lustre, {gb:.0} GB per bag (paper Fig. 17{sub})"),
            &[
                "robots",
                "system",
                "open (ms)",
                "query (ms)",
                "total (ms)",
                "open speedup",
                "total speedup",
            ],
        );
        for &robots in &SWARM_SIZES {
            let env = setup_swarm(scales, robots, gb);
            let topics = Application::RobotSlam.topics(0);
            let base = swarm_baseline(&env, &topics, None);
            let ours = swarm_bora(&env, &topics, None);
            table.row(vec![
                robots.to_string(),
                "Lustre".into(),
                ms(base.open_ns),
                ms(base.query_ns),
                ms(base.open_ns + base.query_ns),
                String::new(),
                String::new(),
            ]);
            table.row(vec![
                robots.to_string(),
                "BORA on Lustre".into(),
                ms(ours.open_ns),
                ms(ours.query_ns),
                ms(ours.open_ns + ours.query_ns),
                speedup(base.open_ns, ours.open_ns),
                speedup(base.open_ns + base.query_ns, ours.open_ns + ours.query_ns),
            ]);
        }
        table.note("paper: >10x overall at 100 robots x 42 GB; up to 3,113x on the open phase");
        tables.push(table);
    }
    tables
}

pub fn run_fig18(scales: &ScaleConfig) -> Vec<Table> {
    let mut table = Table::new(
        "fig18",
        "Swarm query by topics + start-end time on Lustre (paper Fig. 18)",
        &["robots", "window (s)", "baseline (ms)", "BORA (ms)", "BORA speedup"],
    );
    let gb = 21.0;
    for &robots in &SWARM_SIZES {
        let env = setup_swarm(scales, robots, gb);
        // Window anchored at the swarm's common mission start.
        let mut ctx = IoCtx::new();
        let bb = BoraBag::open(&env.platform.storage, &env.containers[0], &mut ctx)
            .expect("range probe");
        let (start, _) = bb.time_range();
        drop(bb);
        let topics = Application::RobotSlam.topics(0);
        for w in [10.0, 40.0] {
            let end = start + RosDuration::from_sec_f64(w);
            let base = swarm_baseline(&env, &topics, Some((start, end)));
            let ours = swarm_bora(&env, &topics, Some((start, end)));
            table.row(vec![
                robots.to_string(),
                format!("{w:.0}"),
                ms(base.open_ns + base.query_ns),
                ms(ours.open_ns + ours.query_ns),
                speedup(base.open_ns + base.query_ns, ours.open_ns + ours.query_ns),
            ]);
        }
    }
    table.note("paper: coarse-grain time indexing cuts swarm time-range queries by up to 4x");
    vec![table]
}
