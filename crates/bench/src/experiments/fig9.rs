//! Fig. 9 — bag duplication (one-time capture) cost.
//!
//! Paper: BORA's reorganizing copy is on average 26% slower than a plain
//! copy on Ext4 and 51% on XFS; above 3.9 GB the overhead drops to
//! 10%/22%; copying BORA→BORA matches native copy speed.

use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::generate_bag;

use crate::env::ScaleConfig;
use crate::report::{ms, Table};

/// Plain file copy (read source sequentially, append to destination).
fn plain_copy<S: Storage>(storage: &S, src: &str, dst: &str, ctx: &mut IoCtx) {
    const CHUNK: usize = 4 * 1024 * 1024;
    let len = storage.len(src, ctx).unwrap();
    let mut off = 0u64;
    while off < len {
        let take = CHUNK.min((len - off) as usize);
        let bytes = storage.read_at(src, off, take, ctx).unwrap();
        storage.append(dst, &bytes, ctx).unwrap();
        off += take as u64;
    }
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let sizes = [0.5, 1.0, 2.0, 3.9];
    let mut table = Table::new(
        "fig9",
        "Write time of bags with distinct sizes (paper Fig. 9)",
        &["bag size", "path", "time (ms)", "overhead vs plain"],
    );
    for gb in sizes {
        for (fs_name, device) in
            [("Ext4", DeviceModel::nvme_ext4()), ("XFS", DeviceModel::nvme_xfs())]
        {
            let storage = TimedStorage::new(MemStorage::new(), device);
            let mut gen_ctx = IoCtx::new();
            generate_bag(&storage, "/src.bag", &scales.gen_for_gb(gb), &mut gen_ctx).unwrap();

            // Plain copy (the control: "bag is a file").
            let mut plain_ctx = IoCtx::new();
            plain_copy(&storage, "/src.bag", "/dst.bag", &mut plain_ctx);
            let plain_ns = plain_ctx.elapsed_ns();

            // BORA capture: reorganizing duplicate.
            let mut bora_ctx = IoCtx::new();
            bora::organizer::duplicate(
                &storage,
                "/src.bag",
                &storage,
                "/bora_dst",
                &bora::OrganizerOptions::default(),
                &mut bora_ctx,
            )
            .unwrap();
            let bora_ns = bora_ctx.elapsed_ns();

            // BORA → BORA: container tree copy, no reorganization.
            let mut b2b_ctx = IoCtx::new();
            bora::organizer::copy_container(
                &storage,
                "/bora_dst",
                &storage,
                "/bora_dst2",
                &mut b2b_ctx,
            )
            .unwrap();
            let b2b_ns = b2b_ctx.elapsed_ns();

            let overhead =
                |ns: u64| format!("{:+.0}%", 100.0 * (ns as f64 / plain_ns as f64 - 1.0));
            let label = format!("{gb:.1} GB");
            table.row(vec![label.clone(), fs_name.into(), ms(plain_ns), "+0%".into()]);
            table.row(vec![
                label.clone(),
                format!("BORA on {fs_name}"),
                ms(bora_ns),
                overhead(bora_ns),
            ]);
            table.row(vec![
                label,
                format!("BORA to BORA on {fs_name}"),
                ms(b2b_ns),
                overhead(b2b_ns),
            ]);
        }
    }
    table.note("paper: capture overhead avg 26% (Ext4) / 51% (XFS), shrinking with size; BORA-to-BORA ≈ native");
    vec![table]
}
