//! `ext_stream` — the streaming query pipeline: heap vs linear merge
//! scaling in k, parallel prefetch, and bounded residency.
//!
//! The old read path merged k per-topic streams with a linear scan over
//! all k cursors per output message (O(N·k) picks) and materialized the
//! whole result set. The streaming pipeline replaces that with a binary
//! heap (O(N·log k)) over bounded prefetching cursors. Because merge CPU
//! is charged on the virtual clock (`SORT_ELEMENT_NS` per comparison),
//! the scaling claim is *deterministic*: this experiment sweeps
//! k ∈ {1..64} topics and reports the measured per-message pick cost of
//! both merges — ~log₂k for the heap, ~k for the scan — plus what the
//! pipeline adds on top: makespan-charged parallel prefetch and a peak
//! resident footprint pinned to the readahead window instead of the
//! result size.

use bora::container::FUSE_DELIVERY_NS;
use bora::{merge_streams_heap, merge_streams_linear, BoraBag, StreamOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{MessageDescriptor, RosMessage, Time};
use rosbag::reader::MessageRecord;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::device::cpu;
use simfs::{DeviceModel, IoCtx, MemStorage, TimedStorage};

use crate::env::ScaleConfig;
use crate::report::{speedup, us, Table};

/// Topic counts swept; the container carries `K_SWEEP`'s maximum.
const K_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Messages recorded per topic.
const MSGS_PER_TOPIC: u32 = 256;
/// Streaming readahead window for the sweep — small enough that every
/// k forces refills, so bounded residency is exercised, not asserted
/// on a stream that fit in one fill.
const READAHEAD: usize = 16 * 1024;

type Fs = TimedStorage<MemStorage>;

/// Record a 64-topic bag (Imu payloads, interleaved chronologically) and
/// organize it into `/c`.
fn build_container(fs: &Fs, seed: u64) -> Vec<String> {
    let mut ctx = IoCtx::new();
    let topics: Vec<String> =
        (0..K_SWEEP[K_SWEEP.len() - 1]).map(|i| format!("/sensor/{i:02}")).collect();
    let mut w = BagWriter::create(
        fs,
        "/sweep.bag",
        BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    let desc = MessageDescriptor::of::<Imu>();
    let conns: Vec<u32> = topics.iter().map(|t| w.add_connection(t, &desc)).collect();
    for i in 0..MSGS_PER_TOPIC {
        for (ti, &conn) in conns.iter().enumerate() {
            let mut imu = Imu::default();
            imu.header.seq = i;
            imu.header.stamp = Time::new(i, ti as u32);
            imu.linear_acceleration.x = (seed ^ (i as u64) << 8 ^ ti as u64) as f64;
            w.write_message(conn, imu.header.stamp, &imu.to_bytes(), &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(fs, "/sweep.bag", fs, "/c", &Default::default(), &mut ctx).unwrap();
    topics
}

/// Virtual nanoseconds a closure charges.
fn virt<R>(f: impl FnOnce(&mut IoCtx) -> R) -> (u64, R) {
    let mut ctx = IoCtx::new();
    let r = f(&mut ctx);
    (ctx.elapsed_ns(), r)
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let topics = build_container(&fs, scales.seed);
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();

    let mut table = Table::new(
        "ext_stream",
        "Extension: streaming pipeline — heap vs linear k-way merge, parallel prefetch, bounded residency",
        &[
            "k topics",
            "messages",
            "linear merge / msg",
            "heap merge / msg",
            "merge speedup",
            "stream virt (end-to-end)",
            "prefetch I/O (serial)",
            "prefetch I/O (pool=4)",
            "prefetch speedup",
            "peak resident",
            "refills",
        ],
    );

    let mut heap_per_msg = Vec::new();
    let mut linear_per_msg = Vec::new();
    for &k in &K_SWEEP {
        let refs: Vec<&str> = topics[..k].iter().map(String::as_str).collect();

        // Materialized per-topic streams, merged both ways. The merge cost
        // is charged per pick on the virtual clock, so the k-scaling of
        // each algorithm is measured, not modeled.
        let per_topic: Vec<Vec<MessageRecord>> =
            refs.iter().map(|t| bag.read_topic(t, &mut ctx).unwrap()).collect();
        let total: u64 = per_topic.iter().map(|s| s.len() as u64).sum();
        let (linear_ns, _) = virt(|c| merge_streams_linear(per_topic.clone(), c));
        let (heap_ns, _) = virt(|c| merge_streams_heap(per_topic.clone(), c));
        linear_per_msg.push(linear_ns / total);
        heap_per_msg.push(heap_ns / total);

        // The full streaming pipeline, zero-copy consumption, with and
        // without the prefetch pool: the delta is the makespan-vs-sum
        // charging of per-topic I/O.
        let copied_before = bora_obs::counter("stream.bytes_copied").get();
        let run_stream = |threads: usize| {
            virt(|c| {
                let opts = StreamOptions { readahead_bytes: READAHEAD, prefetch_threads: threads };
                let mut stream = bag.stream_topics(&refs, opts, c).unwrap();
                let (mut n, mut bytes) = (0u64, 0u64);
                while let Some(m) = stream.next_msg(c).unwrap() {
                    bytes += m.payload().len() as u64; // borrow only: zero-copy
                    n += 1;
                }
                assert!(bytes > 0);
                (n, stream.stats())
            })
        };
        let (serial_ns, (n_serial, _)) = run_stream(1);
        let (pooled_ns, (n_pooled, stats)) = run_stream(4);
        assert_eq!(n_serial, total, "stream must yield every message (k={k})");
        assert_eq!(n_pooled, total);
        // End-to-end virtual time is dominated by the per-message delivery
        // charge (identical for both runs); subtract it to expose the
        // prefetch I/O the pool actually parallelizes.
        let log_k = if k > 1 { (usize::BITS - (k - 1).leading_zeros()) as u64 } else { 0 };
        let delivery_ns = total * (FUSE_DELIVERY_NS + log_k * cpu::SORT_ELEMENT_NS);
        let serial_io = serial_ns.saturating_sub(delivery_ns);
        let pooled_io = pooled_ns.saturating_sub(delivery_ns);
        if k >= 8 {
            assert!(
                pooled_io < serial_io,
                "pooled prefetch should beat serial: {pooled_io} vs {serial_io} ns (k={k})"
            );
        }
        assert_eq!(
            bora_obs::counter("stream.bytes_copied").get(),
            copied_before,
            "payload()-only consumption must copy nothing (k={k})"
        );
        let residency_bound = k * (2 * READAHEAD + 4096);
        assert!(
            stats.peak_resident_bytes <= residency_bound,
            "peak resident {} exceeds k×window bound {residency_bound} (k={k})",
            stats.peak_resident_bytes,
        );

        table.row(vec![
            k.to_string(),
            total.to_string(),
            format!("{} ns", linear_per_msg.last().unwrap()),
            format!("{} ns", heap_per_msg.last().unwrap()),
            speedup(linear_ns, heap_ns.max(1)),
            us(pooled_ns),
            us(serial_io),
            us(pooled_io),
            speedup(serial_io, pooled_io.max(1)),
            crate::report::size(stats.peak_resident_bytes as u64),
            stats.refills.to_string(),
        ]);
    }

    // The scaling claim, asserted on the measured per-message pick cost:
    // from k=4 to k=64 the linear scan grows ~16x (k) while the heap grows
    // ~3x (log₂k: 2 → 6). Generous slack keeps the assertion about the
    // growth *law*, not the constants.
    let (k4, k64) = (
        K_SWEEP.iter().position(|&k| k == 4).unwrap(),
        K_SWEEP.iter().position(|&k| k == 64).unwrap(),
    );
    let linear_growth = linear_per_msg[k64] as f64 / linear_per_msg[k4].max(1) as f64;
    let heap_growth = heap_per_msg[k64] as f64 / heap_per_msg[k4].max(1) as f64;
    assert!(
        linear_growth >= 8.0,
        "linear merge should scale ~k: 4→64 topics grew only {linear_growth:.1}x"
    );
    assert!(
        heap_growth <= 4.0,
        "heap merge should scale ~log k: 4→64 topics grew {heap_growth:.1}x"
    );

    table.note(format!(
        "container: {} topics × {MSGS_PER_TOPIC} Imu messages; merge cost is per-message \
         virtual CPU (SORT_ELEMENT_NS per comparison), so the k-scaling is deterministic",
        topics.len()
    ));
    table.note(format!(
        "measured growth k=4→64: linear {linear_growth:.1}x (~k/4=16), heap {heap_growth:.1}x \
         (~log64/log4=3); streaming peak residency stays within k×{READAHEAD}B windows \
         while the full result set is ~100x larger at k=64"
    ));
    table.note(
        "the end-to-end column runs the full pipeline (index load + prefetch + merge + \
         delivery); the prefetch I/O columns subtract the per-message delivery charge \
         (identical for both runs) — the pool=4 run charges each fill pass as per-thread \
         makespan over its topic lanes, mirroring the organizer's distributor accounting",
    );

    vec![table]
}
