//! Extension experiments beyond the paper's evaluation.
//!
//! * `ext_amr` — BORA on the warehouse-AMR family, where *structured*
//!   data dominates the byte volume (the opposite regime from Table II).
//!   The paper's conclusion §IV predicts BORA generalizes to "most robotic
//!   data analytic applications"; this tests that claim.
//! * `ext_compression` — LZSS-compressed bags through the whole pipeline:
//!   size saved vs the decompression cost added to baseline queries.

use bora::{BoraBag, OrganizerOptions};
use ros_msgs::Time;
use rosbag::{BagReader, BagWriterOptions, Compression};
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::amr::{dock_approach_topics, generate_amr_bag, AmrOptions};
use workloads::tum::generate_bag;

use crate::env::ScaleConfig;
use crate::report::{ms, size, speedup, Table};

/// A named query: topic list plus an optional time window.
type QueryCase<'a> = (&'a str, Vec<&'a str>, Option<(Time, Time)>);

pub fn run_amr(scales: &ScaleConfig) -> Vec<Table> {
    let _ = scales;
    let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
    let mut ctx = IoCtx::new();
    let opts = AmrOptions { duration_s: 120.0, ..AmrOptions::default() };
    let bag = generate_amr_bag(&fs, "/amr.bag", &opts, &mut ctx).unwrap();
    bora::organizer::duplicate(&fs, "/amr.bag", &fs, "/c", &OrganizerOptions::default(), &mut ctx)
        .unwrap();

    let mut table = Table::new(
        "ext_amr",
        "Extension: BORA on a structured-data-dominant AMR mission (not in the paper)",
        &["query", "messages", "baseline (ms)", "BORA (ms)", "BORA speedup"],
    );

    let run_pair = |topics: &[&str], window: Option<(Time, Time)>| -> (u64, u64, u64) {
        let mut bctx = IoCtx::new();
        let reader = BagReader::open(&fs, "/amr.bag", &mut bctx).unwrap();
        let base_msgs = match window {
            None => reader.read_messages(topics, &mut bctx).unwrap(),
            Some((s, e)) => reader.read_messages_time(topics, s, e, &mut bctx).unwrap(),
        };
        let mut octx = IoCtx::new();
        let bb = BoraBag::open(&fs, "/c", &mut octx).unwrap();
        let ours = match window {
            None => bb.read_topics(topics, &mut octx).unwrap(),
            Some((s, e)) => bb.read_topics_time(topics, s, e, &mut octx).unwrap(),
        };
        assert_eq!(base_msgs.len(), ours.len());
        (ours.len() as u64, bctx.elapsed_ns(), octx.elapsed_ns())
    };

    let start = Time::new(1_000, 0);
    let cases: Vec<QueryCase> = vec![
        ("all odometry", vec![workloads::amr::topic::ODOM], None),
        ("all lidar", vec![workloads::amr::topic::SCAN], None),
        ("GPS track", vec![workloads::amr::topic::GPS], None),
        ("dock approach (10 s)", dock_approach_topics(), Some(workloads::amr::dock_window(start))),
    ];
    for (name, topics, window) in cases {
        let (n, base, ours) = run_pair(&topics, window);
        table.row(vec![name.into(), n.to_string(), ms(base), ms(ours), speedup(base, ours)]);
    }
    table.note(format!(
        "mission: {} messages, {} on disk; BORA's win persists without a dominant image stream",
        bag.message_count,
        size(bag.file_len)
    ));
    vec![table]
}

/// Total bytes of every file under `root` (containers are small trees).
fn tree_bytes<S: Storage>(fs: &S, root: &str, ctx: &mut IoCtx) -> u64 {
    let mut total = 0;
    let mut stack = vec![root.to_owned()];
    while let Some(d) = stack.pop() {
        for e in fs.read_dir(&d, ctx).unwrap() {
            let p = format!("{d}/{}", e.name);
            match e.kind {
                simfs::EntryKind::Dir => stack.push(p),
                simfs::EntryKind::File => total += fs.len(&p, ctx).unwrap(),
            }
        }
    }
    total
}

pub fn run_compression(scales: &ScaleConfig) -> Vec<Table> {
    use bora::{BlockCodec, BlockParams};

    let mut table = Table::new(
        "ext_compression",
        "Extension: LZSS chunk compression through the pipeline (not in the paper)",
        &[
            "compression",
            "bag size",
            "open (ms)",
            "IMU query (ms)",
            "BORA import (ms)",
            "container size",
        ],
    );
    for compression in [Compression::None, Compression::Lzss] {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        let mut opts = scales.gen_for_gb(2.9);
        opts.writer = BagWriterOptions { compression, ..BagWriterOptions::default() };
        generate_bag(&fs, "/hs.bag", &opts, &mut ctx).unwrap();
        let bag_len = fs.len("/hs.bag", &mut ctx).unwrap();

        let mut octx = IoCtx::new();
        let reader = BagReader::open(&fs, "/hs.bag", &mut octx).unwrap();
        let open_ns = octx.elapsed_ns();
        reader.read_messages(&[workloads::tum::topic::IMU], &mut octx).unwrap();
        let query_ns = octx.elapsed_ns() - open_ns;

        // Import twice: classic v1 container and the block-framed (per
        // topic, LZSS) container generation the buffer pool pages.
        for block in [None, Some(BlockParams { codec: BlockCodec::Lzss, block_size: 64 * 1024 })] {
            let dst = format!("/c{}", if block.is_some() { "_blk" } else { "" });
            let mut dctx = IoCtx::new();
            bora::organizer::duplicate(
                &fs,
                "/hs.bag",
                &fs,
                &dst,
                &OrganizerOptions { block, ..OrganizerOptions::default() },
                &mut dctx,
            )
            .unwrap();
            table.row(vec![
                format!("{compression:?}{}", if block.is_some() { " + lzss blocks" } else { "" }),
                size(bag_len),
                ms(open_ns),
                ms(query_ns),
                ms(dctx.elapsed_ns()),
                size(tree_bytes(&fs, &dst, &mut ctx)),
            ]);
        }
    }
    table.note(
        "synthetic image payloads are PRNG bytes (incompressible), so only the structured \
         share shrinks; note the baseline IMU query *speeds up* under compression — \
         whole-chunk decompression with caching replaces per-message seeks; '+ lzss blocks' \
         rows re-frame every topic's data file into CRC'd compressed blocks at import",
    );
    vec![table]
}
