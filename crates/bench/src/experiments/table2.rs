//! Table II — composition of the 2.9 GB Handheld-SLAM bag: verify the
//! generator reproduces the paper's topic mix.

use simfs::IoCtx;
use workloads::tum::{generate_bag, TUM_TOPICS};

use crate::env::{Platform, ScaleConfig};
use crate::report::{size, Table};

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let platform = Platform::ext4();
    let opts = scales.gen_for_gb(2.9);
    let mut ctx = IoCtx::new();
    let bag = generate_bag(&platform.storage, "/hs.bag", &opts, &mut ctx).unwrap();

    let mut table = Table::new(
        "table2",
        "Generated Handheld-SLAM bag composition (paper Table II, 2.9 GB bag)",
        &[
            "id",
            "topic",
            "messages (generated)",
            "messages (paper)",
            "payload share (generated)",
            "share (paper)",
        ],
    );
    let paper_total: u64 = TUM_TOPICS.iter().map(|t| t.base_bytes).sum();

    // Measure generated per-topic payload bytes through a BORA container
    // (its metadata records exact per-topic byte counts).
    let mut dctx = IoCtx::new();
    bora::organizer::duplicate(
        &platform.storage,
        "/hs.bag",
        &platform.storage,
        "/c",
        &bora::OrganizerOptions::default(),
        &mut dctx,
    )
    .unwrap();
    let bb = bora::BoraBag::open(&platform.storage, "/c", &mut dctx).unwrap();
    let gen_total = bb.meta().data_bytes().max(1);

    for spec in &TUM_TOPICS {
        let gen_count = bag
            .per_topic_counts
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let gen_bytes = bb.meta().topic(spec.name).map(|t| t.bytes).unwrap_or(0);
        table.row(vec![
            spec.id.to_string(),
            spec.name.into(),
            gen_count.to_string(),
            spec.base_count.to_string(),
            format!("{:.2}%", 100.0 * gen_bytes as f64 / gen_total as f64),
            format!("{:.2}%", 100.0 * spec.base_bytes as f64 / paper_total as f64),
        ]);
    }
    table.note(format!(
        "generated bag file: {} real bytes at payload scale {:.5} (logical class 2.9 GB)",
        size(bag.file_len),
        opts.payload_scale
    ));
    table.note("structured topics keep real message sizes; only image payloads shrink with scale");
    vec![table]
}
