//! Fig. 10 — query time by topic, Handheld-SLAM bags of growing size, on
//! the single-node server (Ext4 and XFS, with and without BORA).
//!
//! Paper: ~50% average improvement; ~5x on the small structured topic C
//! (`/camera/rgb/camera_info`) where the baseline's open dominates.

use workloads::tum::spec;

use crate::env::{setup_bag, Platform, ScaleConfig};
use crate::experiments::common::{baseline_query, bora_query};
use crate::report::{ms, speedup, Table};

/// Table II topic ids measured by the figure.
pub const FIG10_TOPICS: [char; 5] = ['A', 'B', 'C', 'E', 'F'];

/// Bag sizes of the four sub-figures (GB).
pub const FIG10_SIZES: [f64; 4] = [2.9, 5.8, 10.8, 20.3];

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    FIG10_SIZES
        .iter()
        .enumerate()
        .map(|(i, &gb)| run_one_size(scales, gb, (b'a' + i as u8) as char))
        .collect()
}

pub fn run_one_size(scales: &ScaleConfig, gb: f64, sub: char) -> Table {
    let mut table = Table::new(
        &format!("fig10{sub}"),
        &format!("Query by topic, Handheld SLAM, {gb:.1} GB bag (paper Fig. 10{sub})"),
        &["topic", "system", "open (ms)", "query (ms)", "total (ms)", "BORA speedup"],
    );
    for (fs_name, platform) in [("Ext4", Platform::ext4()), ("XFS", Platform::xfs())] {
        let env = setup_bag(platform, gb, scales);
        for id in FIG10_TOPICS {
            let topic = spec(id).name;
            let base = baseline_query(&env, &[topic], 1);
            let ours = bora_query(&env, &[topic], 1);
            assert_eq!(base.messages, ours.messages, "result mismatch on {topic}");
            table.row(vec![
                format!("{id} {topic}"),
                fs_name.into(),
                ms(base.open_ns),
                ms(base.query_ns),
                ms(base.total_ns()),
                String::new(),
            ]);
            table.row(vec![
                format!("{id} {topic}"),
                format!("BORA on {fs_name}"),
                ms(ours.open_ns),
                ms(ours.query_ns),
                ms(ours.total_ns()),
                speedup(base.total_ns(), ours.total_ns()),
            ]);
        }
    }
    table.note("paper: ~50% avg improvement; ~5x on topic C; BORA open time negligible");
    table
}
