//! Ablations of BORA's design choices (DESIGN.md §5) — not figures from
//! the paper, but sweeps over the parameters the paper leaves to the
//! developer.

use bora::{BoraBag, OrganizerOptions};
use ros_msgs::RosDuration;
use simfs::{ClusterConfig, ClusterStorage, DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::{generate_bag, topic};

use crate::env::ScaleConfig;
use crate::report::{ms, Table};

/// §5.1 — time-window width: the paper fixes W=5 s in its example and
/// says the value is developer-configurable. Sweep it and show the
/// narrow-window query cost and the index size trade-off.
pub fn run_window(scales: &ScaleConfig) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_window",
        "Coarse time-index window width vs query cost and index size",
        &["window (s)", "tindex windows", "tindex bytes", "1 s query (ms)", "60 s query (ms)"],
    );
    for window_s in [1u64, 5, 10, 60] {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        generate_bag(&fs, "/hs.bag", &scales.gen_for_gb(2.9), &mut ctx).unwrap();
        bora::organizer::duplicate(
            &fs,
            "/hs.bag",
            &fs,
            "/c",
            &OrganizerOptions {
                window_ns: window_s * 1_000_000_000,
                ..OrganizerOptions::default()
            },
            &mut ctx,
        )
        .unwrap();
        let bag = BoraBag::open(&fs, "/c", &mut ctx).unwrap();
        let (t0, _) = bag.time_range();
        let tindex = bag.load_time_index(topic::IMU, &mut ctx).unwrap();
        let tindex_bytes = fs.len("/c/imu/tindex", &mut ctx).unwrap();

        let q = |secs: f64| {
            let mut qctx = IoCtx::new();
            bag.read_topic_time(topic::IMU, t0, t0 + RosDuration::from_sec_f64(secs), &mut qctx)
                .unwrap();
            qctx.elapsed_ns()
        };
        table.row(vec![
            window_s.to_string(),
            tindex.len().to_string(),
            tindex_bytes.to_string(),
            ms(q(1.0)),
            ms(q(60.0)),
        ]);
    }
    table.note("narrow windows tighten candidate sets for short queries at the cost of index size");
    vec![table]
}

/// §5.2 — distributor thread count ("determined by system specs").
pub fn run_threads(scales: &ScaleConfig) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_threads",
        "Data-organizer distributor thread count vs duplication cost",
        &["threads", "scan (ms)", "distribute (ms)", "total charged (ms)"],
    );
    for threads in [1usize, 2, 4, 8] {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        generate_bag(&fs, "/hs.bag", &scales.gen_for_gb(2.9), &mut ctx).unwrap();
        let mut dctx = IoCtx::new();
        let report = bora::organizer::duplicate(
            &fs,
            "/hs.bag",
            &fs,
            "/c",
            &OrganizerOptions { distributor_threads: threads, ..OrganizerOptions::default() },
            &mut dctx,
        )
        .unwrap();
        table.row(vec![
            threads.to_string(),
            ms(report.scan_ns),
            ms(report.distribute_ns),
            ms(dctx.elapsed_ns()),
        ]);
    }
    table.note("one device: threads trade per-thread time against contention; the win is overlap, not raw parallel bandwidth");
    vec![table]
}

/// §5.3 — rebuild-at-open vs hypothetical persisted tag table
/// (Table I's design justification, measured end to end).
pub fn run_tag_persist(scales: &ScaleConfig) -> Vec<Table> {
    let _ = scales;
    let mut table = Table::new(
        "ablation_tag_persist",
        "Tag table: rebuild from listing vs read persisted copy",
        &["topics", "rebuild (virtual ms)", "persisted read (virtual ms)"],
    );
    for n in [10usize, 100, 1_000, 10_000] {
        let fs = TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4());
        let mut ctx = IoCtx::new();
        fs.append("/c/.bora", b"m", &mut ctx).unwrap();
        let mut persisted = Vec::new();
        for i in 0..n {
            let t = format!("/dev/sensor_{i:06}");
            fs.mkdir_all(&format!("/c/{}", bora::layout::encode_topic(&t)), &mut ctx).unwrap();
            persisted.extend_from_slice(t.as_bytes());
            persisted.push(b'\n');
        }
        fs.append("/c/.tags", &persisted, &mut ctx).unwrap();

        let mut rctx = IoCtx::new();
        bora::TagManager::build(&fs, "/c", &mut rctx).unwrap();

        // Persisted variant: one sequential read + hash inserts.
        let mut pctx = IoCtx::new();
        let bytes = fs.read_all("/c/.tags", &mut pctx).unwrap();
        let topics: Vec<String> =
            String::from_utf8(bytes).unwrap().lines().map(str::to_owned).collect();
        pctx.charge_ns(topics.len() as u64 * simfs::device::cpu::HASH_OP_NS);
        let tm = bora::TagManager::from_topics("/c", &topics);
        assert_eq!(tm.len(), n);

        table.row(vec![n.to_string(), ms(rctx.elapsed_ns()), ms(pctx.elapsed_ns())]);
    }
    table.note("the rebuild stays cheap enough that persisting the table (and keeping it coherent) buys nothing — the paper's Table I argument");
    vec![table]
}

/// §5.4 — PVFS data-server count: where the network bottleneck bites.
pub fn run_stripe(scales: &ScaleConfig) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_stripe",
        "Cluster data-server count vs BORA topic-read time (2.9 GB bag)",
        &["servers", "baseline (ms)", "BORA (ms)", "BORA speedup"],
    );
    for servers in [1u32, 2, 4, 8] {
        let cfg = ClusterConfig { data_servers: servers, ..ClusterConfig::pvfs4() };
        let storage = ClusterStorage::new(cfg);
        let mut ctx = IoCtx::new();
        generate_bag(&storage, "/hs.bag", &scales.gen_for_gb(2.9), &mut ctx).unwrap();
        bora::organizer::duplicate(
            &storage,
            "/hs.bag",
            &storage,
            "/c",
            &OrganizerOptions::default(),
            &mut ctx,
        )
        .unwrap();

        let mut bctx = IoCtx::new();
        let reader = rosbag::BagReader::open(&storage, "/hs.bag", &mut bctx).unwrap();
        reader.read_messages(&[topic::RGB_IMAGE], &mut bctx).unwrap();

        let mut octx = IoCtx::new();
        let bag = BoraBag::open(&storage, "/c", &mut octx).unwrap();
        bag.read_topic(topic::RGB_IMAGE, &mut octx).unwrap();

        table.row(vec![
            servers.to_string(),
            ms(bctx.elapsed_ns()),
            ms(octx.elapsed_ns()),
            crate::report::speedup(bctx.elapsed_ns(), octx.elapsed_ns()),
        ]);
    }
    table.note("past a few servers the 10 GbE fabric, not the devices, bounds both systems — the paper's §IV.D observation");
    vec![table]
}
