//! `ext_serve` — the bora-serve serving layer vs per-query opens.
//!
//! The paper measures one analysis process per container. A serving
//! deployment inverts that: many queries, few containers, and the
//! container-open cost (tag table + metadata, Fig. 4b) is paid either
//! **per query** (the baseline: every query calls `BoraBag::open`) or
//! **once**, amortized by bora-serve's handle cache. This experiment
//! runs the same skewed query mix ([`workloads::querymix`]) through both
//! paths on the same cost-model backend and reports virtual per-query
//! latency (deterministic) plus served wall-clock throughput.
//!
//! Three traffic classes, measured separately because the amortization
//! they can expect differs by construction:
//!
//! * **metadata** (`TOPICS`/`STAT`) — the query itself is free once the
//!   handle is cached, so the baseline's whole open cost is saved: this
//!   is the pure open-amortization number (>=10x is the target);
//! * **windowed reads** — the window I/O is paid either way, so the
//!   saving is the open's share of open+window;
//! * **the full mix** — what a real skewed workload nets out to.

use std::sync::Arc;

use bora::BoraBag;
use bora_serve::{MemTransport, ServeClient, Server, ServerConfig, StatsSnapshot};
use ros_msgs::Time;
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::querymix::{self, QueryKind, QueryMixOptions};
use workloads::tum::{generate_bag, GenOptions};

use crate::env::ScaleConfig;
use crate::report::{speedup, us, Table};

/// Containers served; the first `HOT_SET` receive 90% of the traffic.
const CONTAINERS: usize = 6;
const HOT_SET: usize = 2;
/// Cache sized between hot set and total: hot containers stay resident,
/// cold ones churn.
const CACHE_CAPACITY: usize = 4;
const WORKERS: usize = 4;
const CLIENTS: usize = 4;

type ServeFs = Arc<TimedStorage<MemStorage>>;

fn container_root(i: usize) -> String {
    format!("/c/bag{i}")
}

struct QueryPlan {
    root: String,
    kind: QueryKind,
    topic: String,
    range: (Time, Time),
}

/// Resolve a generated mix against real containers (topic names and time
/// spans), so both measurement passes run identical work.
fn plan_queries(mix: &[querymix::Query], topics: &[String], span: (Time, Time)) -> Vec<QueryPlan> {
    let (start, end) = span;
    let span_ns = end.as_nanos() - start.as_nanos();
    mix.iter()
        .map(|q| {
            let topic = topics[q.topic_index % topics.len()].clone();
            let w_start = start.as_nanos() + (span_ns as f64 * q.window_start) as u64;
            let w_end = w_start + (span_ns as f64 * q.window_frac) as u64;
            QueryPlan {
                root: container_root(q.container),
                kind: q.kind,
                topic,
                range: (Time::from_nanos(w_start), Time::from_nanos(w_end)),
            }
        })
        .collect()
}

struct PhaseResult {
    queries: usize,
    base_mean_ns: u64,
    served_mean_ns: u64,
    snap: StatsSnapshot,
    wall_qps: f64,
}

/// Run one traffic class through both paths on a fresh server.
fn measure_phase(fs: &ServeFs, plans: &[QueryPlan]) -> PhaseResult {
    // Baseline: open per query.
    let mut base_virt_ns: u64 = 0;
    for p in plans {
        let mut qctx = IoCtx::new();
        let bag = BoraBag::open(&**fs, &p.root, &mut qctx).unwrap();
        run_query_direct(&bag, p, &mut qctx);
        base_virt_ns += qctx.elapsed_ns();
    }

    // Served: fresh server per phase keeps STATS attributable.
    let server = Server::start(
        Arc::clone(fs),
        ServerConfig {
            workers: WORKERS,
            queue_capacity: 64,
            cache_capacity: CACHE_CAPACITY,
            ..ServerConfig::default()
        },
    );
    let transport = MemTransport::new(Arc::clone(&server));

    // Warm the hot set (one OPEN each): the amortization claim is about
    // *cached-container* queries, so the cold first-touch opens are not
    // part of the measured window.
    {
        let mut warm = ServeClient::connect(&transport).unwrap();
        for i in 0..HOT_SET {
            warm.open(&container_root(i)).unwrap();
        }
    }

    let wall_start = std::time::Instant::now();
    let chunk = plans.len().div_ceil(CLIENTS);
    std::thread::scope(|scope| {
        for part in plans.chunks(chunk) {
            let transport = &transport;
            scope.spawn(move || {
                let mut client = ServeClient::connect(transport).unwrap();
                for p in part {
                    run_query_served(&mut client, p);
                }
            });
        }
    });
    let wall = wall_start.elapsed();

    let snap = ServeClient::connect(&transport).unwrap().stats().unwrap();
    server.shutdown();

    assert_eq!(
        snap.total_requests(),
        (plans.len() + HOT_SET) as u64,
        "STATS must account for every submitted request"
    );

    // Mean virtual latency over the measured queries (warmup opens
    // subtracted from both the count and the virtual-time sum).
    let mut served_virt_ns: u64 = 0;
    let mut served_count: u64 = 0;
    for (_, op) in &snap.ops {
        served_virt_ns += op.virt_mean_ns * op.count;
        served_count += op.count;
    }
    let open_mean = snap.op("open").map_or(0, |o| o.virt_mean_ns);
    served_virt_ns = served_virt_ns.saturating_sub(open_mean * HOT_SET as u64);
    served_count = served_count.saturating_sub(HOT_SET as u64);

    PhaseResult {
        queries: plans.len(),
        base_mean_ns: base_virt_ns / plans.len() as u64,
        served_mean_ns: served_virt_ns / served_count.max(1),
        snap,
        wall_qps: plans.len() as f64 / wall.as_secs_f64().max(1e-9),
    }
}

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let fs: ServeFs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut ctx = IoCtx::new();

    // One Handheld-SLAM bag, duplicated into every container: identical
    // per-container work isolates the serving-layer effect.
    let opts = GenOptions {
        count_scale: (scales.small * 0.5).min(0.02),
        payload_scale: 0.003,
        seed: scales.seed ^ 0x5e12e,
        ..GenOptions::default()
    };
    generate_bag(&*fs, "/hs.bag", &opts, &mut ctx).unwrap();
    for i in 0..CONTAINERS {
        bora::duplicate(&*fs, "/hs.bag", &*fs, &container_root(i), &Default::default(), &mut ctx)
            .unwrap();
    }

    let probe = BoraBag::open(&*fs, &container_root(0), &mut ctx).unwrap();
    let mut topics: Vec<String> = probe.topics().into_iter().map(str::to_owned).collect();
    topics.sort();
    let span = probe.time_range();
    drop(probe);

    let mix_for = |weights: [f64; 4], queries: usize, salt: u64| {
        let mix = querymix::generate(&QueryMixOptions {
            containers: CONTAINERS,
            hot_set: HOT_SET,
            hot_traffic: 0.9,
            queries,
            kind_weights: weights,
            seed: scales.seed ^ salt,
            zipf_s: None,
        });
        plan_queries(&mix, &topics, span)
    };

    let phases: Vec<(&str, Vec<QueryPlan>)> = vec![
        ("metadata (TOPICS/STAT)", mix_for([0.5, 0.5, 0.0, 0.0], 120, 0x11)),
        ("windowed READ", mix_for([0.0, 0.0, 1.0, 0.0], 80, 0x22)),
        ("full mix", mix_for([0.15, 0.15, 0.55, 0.15], 240, 0x33)),
    ];

    let mut table = Table::new(
        "ext_serve",
        "Extension: bora-serve — open-amortized concurrent queries vs per-query BoraBag::open",
        &[
            "traffic class",
            "queries",
            "open/query: mean virt latency",
            "bora-serve: mean virt latency",
            "amortization",
            "cache hits",
            "served queries/s (wall)",
        ],
    );

    let mut meta_ratio = 0.0;
    for (name, plans) in &phases {
        let r = measure_phase(&fs, plans);
        if *name == "metadata (TOPICS/STAT)" {
            meta_ratio = r.base_mean_ns as f64 / r.served_mean_ns.max(1) as f64;
        }
        table.row(vec![
            (*name).into(),
            r.queries.to_string(),
            us(r.base_mean_ns),
            us(r.served_mean_ns),
            speedup(r.base_mean_ns, r.served_mean_ns.max(1)),
            format!("{:.1}%", r.snap.cache_hit_rate() * 100.0),
            format!("{:.0}", r.wall_qps),
        ]);
    }

    table.note(format!(
        "{CONTAINERS} containers ({HOT_SET} hot, 90% of traffic), cache capacity {CACHE_CAPACITY}, \
         {WORKERS} workers, {CLIENTS} clients; latencies are cost-model (virtual) time"
    ));
    table.note(
        "metadata class = pure open amortization: a cached handle answers with zero storage I/O, \
         so the baseline's whole per-query open cost is saved",
    );
    assert!(
        meta_ratio >= 10.0,
        "open amortization for cached metadata queries should be >=10x, got {meta_ratio:.1}x"
    );

    vec![table]
}

fn run_query_direct<S: Storage>(bag: &BoraBag<S>, p: &QueryPlan, ctx: &mut IoCtx) {
    match p.kind {
        QueryKind::Topics => {
            let _ = bag.topics();
        }
        QueryKind::Stat => {
            let _ = bag.meta().message_count();
        }
        QueryKind::ReadWindow => {
            bag.read_topics_time(&[p.topic.as_str()], p.range.0, p.range.1, ctx).unwrap();
        }
        QueryKind::ReadFull => {
            bag.read_topics(&[p.topic.as_str()], ctx).unwrap();
        }
    }
}

fn run_query_served<C: bora_serve::Connection>(client: &mut ServeClient<C>, p: &QueryPlan) {
    match p.kind {
        QueryKind::Topics => {
            client.topics(&p.root).unwrap();
        }
        QueryKind::Stat => {
            client.stat(&p.root).unwrap();
        }
        QueryKind::ReadWindow => {
            client.read_time(&p.root, &[p.topic.as_str()], p.range.0, p.range.1).unwrap();
        }
        QueryKind::ReadFull => {
            client.read(&p.root, &[p.topic.as_str()]).unwrap();
        }
    }
}
