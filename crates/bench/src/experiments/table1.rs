//! Table I — cost of building the tag manager's hash table on the fly.
//!
//! Paper: 10 topics → 0.163 ms / 0.11 KB; 100,000 topics → 35.84 ms /
//! 1.5 MB. The point is that the rebuild-at-open design is essentially
//! free, so the table never needs persisting.

use std::time::Instant;

use bora::TagManager;
use simfs::{IoCtx, MemStorage, Storage};

use crate::env::ScaleConfig;
use crate::report::Table;

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    let max = if scales.swarm < 1.0 / 1024.0 { 10_000 } else { 100_000 };
    vec![run_up_to(max)]
}

pub fn run_up_to(max_topics: usize) -> Table {
    let mut table = Table::new(
        "table1",
        "Tag-manager hash table construction (paper Table I)",
        &[
            "topics",
            "table size (KB)",
            "build time real (ms)",
            "paper time (ms)",
            "paper size (KB)",
        ],
    );
    let paper: &[(usize, &str, &str)] = &[
        (10, "0.163", "0.11"),
        (100, "0.476", "1.2"),
        (1_000, "3.949", "13"),
        (10_000, "29.883", "136"),
        (100_000, "35.840", "1500"),
    ];
    for &(n, paper_ms, paper_kb) in paper.iter().filter(|(n, _, _)| *n <= max_topics) {
        // Build a container with n topic directories.
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/c/.bora", b"m", &mut ctx).unwrap();
        for i in 0..n {
            fs.mkdir_all(&format!("/c/sensors%device_{i:06}"), &mut ctx).unwrap();
        }

        let started = Instant::now();
        let tm = TagManager::build(&fs, "/c", &mut ctx).unwrap();
        let real_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tm.len(), n);

        table.row(vec![
            n.to_string(),
            format!("{:.2}", tm.approx_size_bytes() as f64 / 1024.0),
            format!("{real_ms:.3}"),
            paper_ms.into(),
            paper_kb.into(),
        ]);
    }
    table.note("build time is wall-clock of the real hash construction (paper measured the same)");
    table
}
