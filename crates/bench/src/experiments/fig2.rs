//! Fig. 2 — message insertion performance: Ext4 bag append vs database
//! engines.
//!
//! Paper: inserting 49,233 TF messages took Ext4 130 ms; Aerospike,
//! PostgreSQL, and InfluxDB were 51.8x, 93.6x, and 3,694.6x slower.

use std::sync::Arc;

use dbsim::{InsertEngine, KvStore, SqlStore, TsdbStore};
use ros_msgs::{RosMessage, Time};
use rosbag::record::{write_record, MessageDataHeader};
use simfs::{DeviceModel, IoCtx, MemStorage, Storage, TimedStorage};
use workloads::tum::fig2_tf_messages;

use crate::env::ScaleConfig;
use crate::report::{ms, speedup, Table};

/// Number of TF messages in the paper's experiment.
pub const PAPER_TF_COUNT: usize = 49_233;

/// A deferred engine run (built up-front so each engine starts from a
/// fresh store) paired with its display name.
type EngineRun<'a> = (Box<dyn FnOnce(&mut IoCtx) -> u64>, &'a str);

pub fn run(scales: &ScaleConfig) -> Vec<Table> {
    // Integration tests shrink via the swarm scale knob; the default run
    // uses the paper's exact count.
    let count = if scales.swarm < 1.0 / 1024.0 { PAPER_TF_COUNT / 10 } else { PAPER_TF_COUNT };
    vec![run_with_count(count)]
}

pub fn run_with_count(count: usize) -> Table {
    let msgs = fig2_tf_messages(count, 0xF162);

    // Filesystem baseline: `rosbag record` appends each incoming message
    // record to the bag file as it arrives — one write() per message.
    // That is the 130 ms the paper measured for 49,233 TF messages.
    let fs = Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
    let mut ctx = IoCtx::new();
    fs.create("/tf.bag", &mut ctx).unwrap();
    let t0 = ctx.elapsed_ns();
    let mut record = Vec::with_capacity(256);
    for (i, m) in msgs.iter().enumerate() {
        record.clear();
        let header = MessageDataHeader { conn_id: 0, time: m.header.stamp }.to_header();
        write_record(&mut record, &header, &m.to_bytes());
        fs.append("/tf.bag", &record, &mut ctx).unwrap();
        let _ = (i, Time::ZERO);
    }
    let ext4_ns = ctx.elapsed_ns() - t0;

    let mut table = Table::new(
        "fig2",
        &format!("Insert {count} TF messages (paper: Ext4 130 ms at 49,233)"),
        &["system", "time (ms)", "slowdown vs Ext4", "paper slowdown"],
    );
    table.row(vec!["Ext4 (bag append)".into(), ms(ext4_ns), "1.00x".into(), "1x".into()]);

    let engines: Vec<EngineRun> = vec![
        (
            Box::new({
                let msgs = msgs.clone();
                move |ctx: &mut IoCtx| {
                    let fs =
                        Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
                    let mut kv = KvStore::create(Arc::clone(&fs), "/aero", ctx).unwrap();
                    let t0 = ctx.elapsed_ns();
                    for m in &msgs {
                        kv.insert_tf(m, ctx).unwrap();
                    }
                    kv.flush(ctx).unwrap();
                    ctx.elapsed_ns() - t0
                }
            }),
            "51.8x",
        ),
        (
            Box::new({
                let msgs = msgs.clone();
                move |ctx: &mut IoCtx| {
                    let fs =
                        Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
                    let mut db = SqlStore::create(Arc::clone(&fs), "/pg", ctx).unwrap();
                    let t0 = ctx.elapsed_ns();
                    for m in &msgs {
                        db.insert_tf(m, ctx).unwrap();
                    }
                    db.flush(ctx).unwrap();
                    ctx.elapsed_ns() - t0
                }
            }),
            "93.6x",
        ),
        (
            Box::new({
                let msgs = msgs.clone();
                move |ctx: &mut IoCtx| {
                    let fs =
                        Arc::new(TimedStorage::new(MemStorage::new(), DeviceModel::nvme_ext4()));
                    let mut db = TsdbStore::create(Arc::clone(&fs), "/influx", ctx).unwrap();
                    let t0 = ctx.elapsed_ns();
                    for m in &msgs {
                        db.insert_tf(m, ctx).unwrap();
                    }
                    db.flush(ctx).unwrap();
                    ctx.elapsed_ns() - t0
                }
            }),
            "3694.6x",
        ),
    ];
    let names = ["Aerospike-like KV", "PostgreSQL-like SQL", "InfluxDB-like TSDB"];
    for ((run_engine, paper), name) in engines.into_iter().zip(names) {
        let mut ectx = IoCtx::new();
        let ns = run_engine(&mut ectx);
        table.row(vec![name.into(), ms(ns), speedup(ns, ext4_ns), paper.into()]);
    }
    table.note(
        "engines implement real parse/index/WAL work plus modeled RPC and fsync; \
         ordering and orders of magnitude are the reproduction target (see EXPERIMENTS.md)",
    );
    table
}
