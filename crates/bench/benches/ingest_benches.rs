//! Criterion micro-benchmarks for the live write path (PR: bora-ingest)
//! — real wall-clock cost of the pieces the `ext_ingest` experiment
//! measures on the virtual clock:
//!
//! * WAL frame encode + CRC32C per record size,
//! * sustained append into the store (WAL + memtable) per group-commit
//!   batch size,
//! * seal (memtable → sorted segment files + marker),
//! * MVCC snapshot read across the three-layer store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use bora_ingest::wal::{encode_record, WalRecord};
use bora_ingest::{IngestConfig, IngestStore};
use ros_msgs::Time;
use simfs::{IoCtx, MemStorage};

const ROOT: &str = "/live";
const TOPICS: [&str; 3] = ["/imu", "/cam", "/tf"];

fn bench_wal_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_encode");
    for size in [64usize, 1024, 16 * 1024] {
        let rec = WalRecord {
            seq: 42,
            topic: "/camera/rgb".into(),
            time: Time::from_nanos(1_000_000),
            data: (0..size).map(|i| (i as u8).wrapping_mul(31)).collect(),
        };
        group.bench_with_input(BenchmarkId::new("frame", size), &rec, |b, r| {
            b.iter(|| black_box(encode_record(r)))
        });
    }
    group.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_append");
    group.sample_size(20);
    const N: u64 = 2_000;
    for gc in [1u64, 16, 128] {
        group.bench_with_input(BenchmarkId::new("group_commit", gc), &gc, |b, &gc| {
            b.iter(|| {
                let fs = Arc::new(MemStorage::new());
                let mut ctx = IoCtx::new();
                let cfg = IngestConfig {
                    wal_shards: 4,
                    group_commit: gc,
                    window_ns: 1 << 30,
                    block: None,
                };
                let store = IngestStore::create(fs, ROOT, cfg, &mut ctx).unwrap();
                for i in 0..N {
                    let topic = TOPICS[(i % 3) as usize];
                    store
                        .append(topic, Time::from_nanos(i * 100), &[i as u8; 64], &mut ctx)
                        .unwrap();
                }
                store.flush_wal(&mut ctx).unwrap();
                black_box(store.stat().wal_durable_records)
            })
        });
    }
    group.finish();
}

/// A store with `n` messages still in the memtable, ready to seal.
fn loaded_store(n: u64) -> (IngestStore<Arc<MemStorage>>, IoCtx) {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let cfg = IngestConfig { wal_shards: 4, group_commit: 64, window_ns: 1 << 30, block: None };
    let store = IngestStore::create(fs, ROOT, cfg, &mut ctx).unwrap();
    for i in 0..n {
        let topic = TOPICS[(i % 3) as usize];
        store.append(topic, Time::from_nanos(i * 100), &[i as u8; 64], &mut ctx).unwrap();
    }
    (store, ctx)
}

fn bench_seal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_seal");
    group.sample_size(20);
    // The shim has no iter_batched, so the measured routine rebuilds the
    // memtable each round; "load_and_seal" names that honestly.
    for n in [512u64, 4_096] {
        group.bench_with_input(BenchmarkId::new("load_and_seal", n), &n, |b, &n| {
            b.iter(|| {
                let (store, mut ctx) = loaded_store(n);
                black_box(store.seal(&mut ctx).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_snapshot_read(c: &mut Criterion) {
    // A three-layer store: a third compacted, a third sealed, a third live.
    let (store, mut ctx) = loaded_store(1_024);
    store.seal(&mut ctx).unwrap();
    store.compact(&mut ctx).unwrap();
    for i in 1_024..2_048u64 {
        let topic = TOPICS[(i % 3) as usize];
        store.append(topic, Time::from_nanos(i * 100), &[i as u8; 64], &mut ctx).unwrap();
    }
    store.seal(&mut ctx).unwrap();
    for i in 2_048..3_072u64 {
        let topic = TOPICS[(i % 3) as usize];
        store.append(topic, Time::from_nanos(i * 100), &[i as u8; 64], &mut ctx).unwrap();
    }

    let mut group = c.benchmark_group("ingest_snapshot");
    group.sample_size(20);
    group.bench_function("read_three_layers", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            let snap = store.snapshot(&mut ctx).unwrap();
            black_box(snap.read_topics(&TOPICS, &mut ctx).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wal_encode, bench_append, bench_seal, bench_snapshot_read);
criterion_main!(benches);
