//! Micro-benchmarks for the bora-serve hot paths: the wire codec (every
//! request and response crosses it) and the handle-cache hit path (every
//! query against a warm container takes it).

use std::sync::Arc;

use bora_serve::cache::HandleCache;
use bora_serve::proto::{Request, Response, WireMessage};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ros_msgs::{sensor_msgs::Imu, Time};
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};
use std::hint::black_box;

fn read_response(messages: usize, payload: usize) -> Response {
    Response::Read(
        (0..messages)
            .map(|i| WireMessage {
                topic: "/camera/depth/image".into(),
                time: Time::new(i as u32, 0),
                data: vec![0xA5; payload],
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_codec");
    group.sample_size(40);

    let req = Request::Read {
        container: "/c/hs0".into(),
        topics: vec!["/camera/depth/image".into(), "/imu".into(), "/tf".into()],
        range: Some((Time::new(10, 0), Time::new(20, 0))),
    };
    let req_bytes = req.encode();
    group.bench_function("request_encode", |b| b.iter(|| black_box(&req).encode()));
    group.bench_function("request_decode", |b| {
        b.iter(|| Request::decode(black_box(&req_bytes)).unwrap())
    });

    for &messages in &[16usize, 256] {
        let resp = read_response(messages, 512);
        let resp_bytes = resp.encode();
        group.bench_with_input(
            BenchmarkId::new("read_response_encode", messages),
            &resp,
            |b, resp| b.iter(|| black_box(resp).encode()),
        );
        group.bench_with_input(
            BenchmarkId::new("read_response_decode", messages),
            &resp_bytes,
            |b, bytes| b.iter(|| Response::decode(black_box(bytes)).unwrap()),
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    // One small real container so hit and miss paths run actual opens.
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let mut w = BagWriter::create(&*fs, "/b.bag", BagWriterOptions::default(), &mut ctx).unwrap();
    for i in 0..200u32 {
        let mut imu = Imu::default();
        imu.header.stamp = Time::new(i, 0);
        w.write_ros_message("/imu", Time::new(i, 0), &imu, &mut ctx).unwrap();
    }
    w.close(&mut ctx).unwrap();
    for i in 0..2 {
        bora::duplicate(&*fs, "/b.bag", &*fs, &format!("/c/b{i}"), &Default::default(), &mut ctx)
            .unwrap();
    }

    let mut group = c.benchmark_group("serve_cache");
    group.sample_size(40);

    let cache: HandleCache<Arc<MemStorage>> = HandleCache::new(4);
    group.bench_function("hit", |b| {
        b.iter(|| {
            let mut qctx = IoCtx::new();
            black_box(cache.get_or_open(&fs, "/c/b0", &mut qctx).unwrap().was_hit)
        })
    });

    // Capacity 1 with two containers: every access misses, runs a real
    // open, and evicts the other entry — the worst-case churn path.
    let churn: HandleCache<Arc<MemStorage>> = HandleCache::new(1);
    let mut flip = false;
    group.bench_function("miss_open_evict", |b| {
        b.iter(|| {
            flip = !flip;
            let root = if flip { "/c/b0" } else { "/c/b1" };
            let mut qctx = IoCtx::new();
            black_box(churn.get_or_open(&fs, root, &mut qctx).unwrap().was_hit)
        })
    });
    group.finish();
}

criterion_group!(serve_benches, bench_codec, bench_cache);
criterion_main!(serve_benches);
