//! Micro-benchmarks for the query layer's hot paths.
//!
//! The load-bearing numbers:
//! * `prepare` — lex + parse + plan + optimize for a representative
//!   statement; this is per-query overhead on every wire request, so it
//!   must stay far below execution cost;
//! * `exec_scan_project` / `exec_window_agg` — the per-message executor
//!   cost over in-memory records (field extraction, filter eval,
//!   aggregate update), isolated from storage;
//! * `merge_partials` — the router's per-fragment merge cost for a
//!   distributed aggregate;
//! * `encode_rows` / `decode_rows` — the wire codec for result rows,
//!   paid once per row on every served query.

use std::collections::HashMap;
use std::hint::black_box;

use bora_query::{decode_rows, encode_rows, merge_partials, prepare, Row};
use criterion::{criterion_group, criterion_main, Criterion};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{RosMessage, Time};
use rosbag::reader::MessageRecord;

const SQL: &str = "SELECT window, count(), mean(angular_velocity.x), max(angular_velocity.x) \
                   FROM '/imu' WHERE time >= 10.0 AND time < 500.0 WINDOW 5s";

fn imu_records(n: u32) -> (Vec<MessageRecord>, HashMap<String, String>) {
    let mut recs = Vec::with_capacity(n as usize);
    for i in 0..n {
        let t = Time::from_nanos(1_000_000_000 + i as u64 * 100_000_000);
        let mut imu = Imu::default();
        imu.header.seq = i;
        imu.header.stamp = t;
        imu.angular_velocity.x = (i % 100) as f64 * 0.01;
        recs.push(MessageRecord {
            conn_id: 0,
            topic: "/imu".into(),
            time: t,
            data: imu.to_bytes(),
        });
    }
    (recs, HashMap::from([("/imu".to_owned(), Imu::DATATYPE.to_owned())]))
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(60);

    group.bench_function("prepare", |b| {
        b.iter(|| prepare(black_box(SQL)).unwrap());
    });

    let (recs, dts) = imu_records(4096);

    let run = |sql: &str, recs: &[MessageRecord], dts: &HashMap<String, String>| -> Vec<Row> {
        let p = prepare(sql).unwrap();
        let mut cur = p.cursor_records(recs.to_vec(), dts.clone(), false).unwrap();
        cur.collect_rows().unwrap()
    };

    group.bench_function("exec_scan_project", |b| {
        b.iter(|| run(black_box("SELECT time, angular_velocity.x FROM '/imu'"), &recs, &dts));
    });
    group.bench_function("exec_window_agg", |b| {
        b.iter(|| run(black_box(SQL), &recs, &dts));
    });

    // Partial merge: three fragments' worth of per-window states.
    let p = prepare(SQL).unwrap();
    let partial: Vec<Row> = {
        let mut cur = p.cursor_records(recs.clone(), dts.clone(), true).unwrap();
        cur.collect_rows().unwrap()
    };
    let partials = vec![partial.clone(), partial.clone(), partial];
    group.bench_function("merge_partials", |b| {
        b.iter(|| merge_partials(black_box(&p.plan), black_box(&partials)).unwrap());
    });

    let rows = run(SQL, &recs, &dts);
    group.bench_function("encode_rows", |b| {
        b.iter(|| encode_rows(black_box(&rows)));
    });
    let blob = encode_rows(&rows);
    group.bench_function("decode_rows", |b| {
        b.iter(|| decode_rows(black_box(&blob)).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
