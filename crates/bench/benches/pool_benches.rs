//! Micro-benchmarks for the buffer pool and the block codec hot paths.
//!
//! The load-bearing numbers:
//! * `pool_hit` — a warm `get_or_fill` (one shard lock + map probe +
//!   pin); this sits on every pooled page read, so it must stay cheap;
//! * `pool_miss_evict` — the cold path at a full budget: fill, clock
//!   sweep, insert (steady-state eviction cost);
//! * `encode_lzss` / `encode_raw_fallback` — the compaction/organizer
//!   write cost per 64 KiB block, compressible vs incompressible;
//! * `decode_lzss` / `decode_raw` — the cursor-fill cost per block (CRC
//!   verify + decompress), i.e. what a pool *miss* pays over a hit;
//! * `stream_chunk_lz_roundtrip` — one compressed wire chunk through
//!   `compress_chunk` + `decompress_chunk` (the ReadStream2 unit).

use std::hint::black_box;

use bora::block::{decode_frame, encode_frame};
use bora::{BlockCodec, BufferPool};
use bora_serve::{compress_chunk, decompress_chunk, Response, WireMessage};
use criterion::{criterion_group, criterion_main, Criterion};
use ros_msgs::Time;
use simfs::IoCtx;

const BLOCK: usize = 64 * 1024;

/// A structured, IMU-like block: long zero runs with a sprinkle of
/// counters — the shape LZSS actually earns its keep on.
fn compressible_block() -> Vec<u8> {
    let mut v = vec![0u8; BLOCK];
    for (i, b) in v.iter_mut().enumerate().step_by(61) {
        *b = (i % 251) as u8;
    }
    v
}

/// PRNG bytes LZSS cannot shrink — exercises the raw fallback.
fn incompressible_block() -> Vec<u8> {
    let mut x = 0x1234_5678u32;
    (0..BLOCK)
        .map(|_| {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (x >> 24) as u8
        })
        .collect()
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.sample_size(60);

    // Budget holds the whole keyspace: every lookup after warmup hits.
    let pool = BufferPool::with_page_size(256 * 1024 * 1024, BLOCK);
    let page = compressible_block();
    for k in 0..64u64 {
        let p = page.clone();
        pool.get_or_fill("/bench/data", k, move || Ok(p)).unwrap();
    }
    let mut k = 0u64;
    group.bench_function("pool_hit", |b| {
        b.iter(|| {
            k = (k + 1) % 64;
            let (page, hit) =
                pool.get_or_fill(black_box("/bench/data"), k, || unreachable!("warm")).unwrap();
            debug_assert!(hit);
            black_box(page.len());
        })
    });

    // Budget of 8 pages over 8 shards: every miss evicts a predecessor.
    let small = BufferPool::with_page_size((8 * BLOCK) as u64, BLOCK);
    let mut n = 0u64;
    group.bench_function("pool_miss_evict", |b| {
        b.iter(|| {
            n += 1;
            let p = page.clone();
            let (page, hit) =
                small.get_or_fill(black_box("/bench/data"), n, move || Ok(p)).unwrap();
            debug_assert!(!hit);
            black_box(page.len());
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_codec");
    group.sample_size(30);

    let zip = compressible_block();
    let raw = incompressible_block();
    group.bench_function("encode_lzss_64k", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(encode_frame(BlockCodec::Lzss, black_box(&zip), &mut ctx).len())
        })
    });
    group.bench_function("encode_raw_fallback_64k", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(encode_frame(BlockCodec::Lzss, black_box(&raw), &mut ctx).len())
        })
    });

    let mut ctx = IoCtx::new();
    let zip_frame = encode_frame(BlockCodec::Lzss, &zip, &mut ctx);
    let raw_frame = encode_frame(BlockCodec::Lzss, &raw, &mut ctx);
    group.bench_function("decode_lzss_64k", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(decode_frame(black_box(&zip_frame), "bench/data", &mut ctx).unwrap().0.len())
        })
    });
    group.bench_function("decode_raw_64k", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(decode_frame(black_box(&raw_frame), "bench/data", &mut ctx).unwrap().0.len())
        })
    });
    group.finish();
}

fn bench_stream_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_chunk");
    group.sample_size(30);

    // One server-side chunk: 32 IMU-sized structured payloads.
    let msgs: Vec<WireMessage> = (0..32u32)
        .map(|i| {
            let mut data = vec![0u8; 320];
            data[0] = i as u8;
            WireMessage { topic: "/imu".into(), time: Time::new(100 + i, 0), data }
        })
        .collect();
    group.bench_function("stream_chunk_lz_roundtrip", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            let resp = compress_chunk(black_box(&msgs), &mut ctx);
            let Response::StreamChunkLz(frame) = resp else { unreachable!() };
            black_box(decompress_chunk(&frame).unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pool, bench_codec, bench_stream_chunk);
criterion_main!(benches);
