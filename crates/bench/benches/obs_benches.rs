//! Micro-benchmarks for the observability plane's hot paths.
//!
//! The load-bearing numbers:
//! * `span_disabled` — the cost every instrumented call site pays when
//!   tracing is off (one relaxed atomic load; the PR's budget is ≤5ns);
//! * `encode_untraced` vs `encode_traced` — what the trace header adds
//!   to a wire frame (and that its absence adds nothing);
//! * `windowed_record` / `windowed_snapshot` — the SLO tracker's
//!   per-sample and per-evaluation cost;
//! * `hist_merge` — the bucket-wise fold the cluster aggregation does
//!   once per histogram per node per scrape;
//! * `metrics_scrape` — one full OP_METRICS roundtrip against a served
//!   node (the telemetry poller's unit of work).

use std::sync::Arc;

use bora_obs::{ExpHistogram, TraceContext, WindowedHistogram};
use bora_serve::{MemTransport, Request, ServeClient, Server, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simfs::MemStorage;
use std::hint::black_box;

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    group.sample_size(60);

    // The shim times each sample with an `Instant::now()` pair (~25ns),
    // which would swamp a ~1ns op — so each sample runs 1024 call sites
    // and the per-op cost is the reported time divided by 1024. The
    // ≤5ns/op budget for the disabled path means ≤5.1µs here.
    const BATCH: usize = 1024;
    bora_obs::set_enabled(false);
    group.bench_function("span_disabled_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let sp = bora_obs::span(black_box("bench.op"));
                drop(sp);
            }
        })
    });

    bora_obs::set_enabled(true);
    bora_obs::drain();
    group.bench_function("span_enabled_x1024", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let sp = bora_obs::span(black_box("bench.op"));
                drop(sp);
            }
        })
    });
    bora_obs::set_enabled(false);
    bora_obs::drain();
    group.finish();
}

fn bench_trace_header(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_wire");
    group.sample_size(60);

    let req = Request::Read {
        container: "/c/hs0".into(),
        topics: vec!["/imu".into(), "/tf".into()],
        range: None,
    };
    group.bench_function("encode_untraced", |b| b.iter(|| black_box(&req).encode_traced(None)));
    let ctx = TraceContext { trace_id: 0x1234, parent_span: 0x5678, sampled: true };
    group.bench_function("encode_traced", |b| b.iter(|| black_box(&req).encode_traced(Some(ctx))));
    let traced = req.encode_traced(Some(ctx));
    group.bench_function("decode_traced", |b| {
        b.iter(|| Request::decode_traced(black_box(&traced)).unwrap())
    });
    group.finish();
}

fn bench_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_window");
    group.sample_size(60);

    let w = WindowedHistogram::per_second_minute();
    let mut t = 0u64;
    group.bench_function("windowed_record", |b| {
        b.iter(|| {
            t = t.wrapping_add(7_919); // walk time forward, off-slot-boundary
            w.record_at(black_box(t), black_box(4096));
        })
    });
    // Populated window → snapshot folds all 60 slots.
    for i in 0..60_000u64 {
        w.record_at(i * 1_000_000, i % 8192);
    }
    group.bench_function("windowed_snapshot", |b| {
        b.iter(|| w.snapshot_at(black_box(60_000_000_000)))
    });

    let a = ExpHistogram::new();
    let bh = ExpHistogram::new();
    for i in 0..4096u64 {
        a.record(i * 37 + 1);
        bh.record(i * 91 + 5);
    }
    let (sa, sb) = (a.snapshot(), bh.snapshot());
    group.bench_function("hist_merge", |b| b.iter(|| black_box(&sa).merge(black_box(&sb))));
    group.finish();
}

fn bench_scrape(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_scrape");
    group.sample_size(30);

    let fs = Arc::new(MemStorage::new());
    let server = Server::start(Arc::clone(&fs), ServerConfig::default());
    let transport = MemTransport::new(Arc::clone(&server));
    let mut client = ServeClient::connect(&transport).unwrap();
    // Put real content in the registry so the report is representative.
    for _ in 0..256 {
        let _ = client.stats();
    }
    group.bench_function("metrics_scrape", |b| b.iter(|| client.metrics().unwrap()));
    group.finish();
    client.shutdown().unwrap();
    server.shutdown();
}

criterion_group!(benches, bench_span, bench_trace_header, bench_windowed, bench_scrape);
criterion_main!(benches);
