//! Criterion micro-benchmarks: real wall-clock time of the core data
//! structures and code paths, at laptop scale (the virtual-clock
//! experiments live in the `repro` binary).
//!
//! Includes the ablations called out in DESIGN.md §5:
//! * time-window width sweep for the coarse-grain time index,
//! * distributor thread count sweep for the data organizer,
//! * persisted vs rebuilt tag table (Table I's design question),
//! * baseline-vs-BORA open and query at equal workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bora::{BoraBag, OrganizerOptions, TagManager, TimeIndex, TopicIndexEntry};
use dbsim::{InsertEngine, KvStore, SqlStore, TsdbStore};
use ros_msgs::Time;
use rosbag::{BagReader, BagWriterOptions};
use simfs::{IoCtx, MemStorage, Storage};
use std::sync::Arc;
use workloads::tum::{fig2_tf_messages, generate_bag, topic, GenOptions};

fn small_gen_opts() -> GenOptions {
    GenOptions {
        count_scale: 0.05,
        payload_scale: 0.004,
        seed: 0xBE9C,
        writer: BagWriterOptions { chunk_size: 128 * 1024, ..Default::default() },
        ..Default::default()
    }
}

/// A generated bag + BORA container on shared in-memory storage.
fn prepared_env() -> (Arc<MemStorage>, &'static str, &'static str) {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    generate_bag(fs.as_ref(), "/hs.bag", &small_gen_opts(), &mut ctx).unwrap();
    bora::organizer::duplicate(
        fs.as_ref(),
        "/hs.bag",
        fs.as_ref(),
        "/c",
        &OrganizerOptions::default(),
        &mut ctx,
    )
    .unwrap();
    (fs, "/hs.bag", "/c")
}

fn bench_open(c: &mut Criterion) {
    let (fs, bag_path, root) = prepared_env();
    let mut group = c.benchmark_group("open");
    group.sample_size(20);
    group.bench_function("baseline_full_scan", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(BagReader::open(fs.as_ref(), bag_path, &mut ctx).unwrap());
        })
    });
    group.bench_function("bora_tag_manager", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(BoraBag::open(fs.as_ref(), root, &mut ctx).unwrap());
        })
    });
    group.finish();
}

fn bench_query_by_topic(c: &mut Criterion) {
    let (fs, bag_path, root) = prepared_env();
    let mut ctx = IoCtx::new();
    let reader = BagReader::open(fs.as_ref(), bag_path, &mut ctx).unwrap();
    let bag = BoraBag::open(fs.as_ref(), root, &mut ctx).unwrap();

    let mut group = c.benchmark_group("query_topic_imu");
    group.sample_size(20);
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(reader.read_messages(&[topic::IMU], &mut ctx).unwrap());
        })
    });
    group.bench_function("bora", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(bag.read_topic(topic::IMU, &mut ctx).unwrap());
        })
    });
    group.finish();
}

fn bench_query_time_window(c: &mut Criterion) {
    let (fs, bag_path, root) = prepared_env();
    let mut ctx = IoCtx::new();
    let reader = BagReader::open(fs.as_ref(), bag_path, &mut ctx).unwrap();
    let bag = BoraBag::open(fs.as_ref(), root, &mut ctx).unwrap();
    let (start, _) = bag.time_range();
    let end = start + ros_msgs::RosDuration::from_sec_f64(0.5);

    let mut group = c.benchmark_group("query_time_window");
    group.sample_size(20);
    group.bench_function("baseline_merge_sort", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(
                reader.read_messages_time(&[topic::IMU, topic::TF], start, end, &mut ctx).unwrap(),
            );
        })
    });
    group.bench_function("bora_coarse_index", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(
                bag.read_topics_time(&[topic::IMU, topic::TF], start, end, &mut ctx).unwrap(),
            );
        })
    });
    group.finish();
}

fn bench_tag_build(c: &mut Criterion) {
    // Table I at Criterion precision, plus the persisted-table ablation.
    let mut group = c.benchmark_group("tag_manager");
    group.sample_size(10);
    for n in [10usize, 100, 1_000, 10_000] {
        let fs = MemStorage::new();
        let mut ctx = IoCtx::new();
        fs.append("/c/.bora", b"m", &mut ctx).unwrap();
        let topics: Vec<String> = (0..n).map(|i| format!("/dev/sensor_{i:06}")).collect();
        for t in &topics {
            fs.mkdir_all(&format!("/c/{}", bora::layout::encode_topic(t)), &mut ctx).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("rebuild_from_listing", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = IoCtx::new();
                black_box(TagManager::build(&fs, "/c", &mut ctx).unwrap());
            })
        });
        group.bench_with_input(BenchmarkId::new("from_persisted_list", n), &n, |b, _| {
            b.iter(|| black_box(TagManager::from_topics("/c", &topics)))
        });
    }
    group.finish();
}

fn bench_time_index_ablation(c: &mut Criterion) {
    // Window-width sweep: build + query cost of the coarse index.
    let entries: Vec<TopicIndexEntry> = (0..100_000u64)
        .map(|i| TopicIndexEntry { time: Time::from_nanos(i * 2_000_000), offset: i * 64, len: 64 })
        .collect();
    let mut group = c.benchmark_group("time_index_window");
    group.sample_size(20);
    for window_s in [1u64, 5, 10, 60] {
        let w = window_s * 1_000_000_000;
        group.bench_with_input(BenchmarkId::new("build", window_s), &w, |b, &w| {
            b.iter(|| black_box(TimeIndex::build(&entries, w)))
        });
        let ti = TimeIndex::build(&entries, w);
        let start = Time::from_sec_f64(30.0);
        let end = Time::from_sec_f64(42.0);
        group.bench_with_input(BenchmarkId::new("lookup", window_s), &w, |b, _| {
            b.iter(|| black_box(ti.candidate_entries(start, end)))
        });
    }
    group.finish();
}

fn bench_organizer_threads(c: &mut Criterion) {
    // Distributor thread-count ablation (DESIGN.md §5.2).
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    generate_bag(fs.as_ref(), "/hs.bag", &small_gen_opts(), &mut ctx).unwrap();

    let mut group = c.benchmark_group("organizer_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let root = format!("/c_{threads}");
                let mut ctx = IoCtx::new();
                // Criterion re-enters this routine; clear the previous
                // iteration's container (also bounds memory growth).
                let _ = fs.remove_dir_all(&root, &mut ctx);
                black_box(
                    bora::organizer::duplicate(
                        fs.as_ref(),
                        "/hs.bag",
                        fs.as_ref(),
                        &root,
                        &OrganizerOptions {
                            distributor_threads: threads,
                            ..OrganizerOptions::default()
                        },
                        &mut ctx,
                    )
                    .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_db_insert(c: &mut Criterion) {
    // Fig. 2's engines at wall-clock scale: real parse/index/WAL work.
    let msgs = fig2_tf_messages(2_000, 0xD8);
    let mut group = c.benchmark_group("db_insert_2k_tf");
    group.sample_size(10);
    group.bench_function("kv", |b| {
        b.iter(|| {
            let fs = Arc::new(MemStorage::new());
            let mut ctx = IoCtx::new();
            let mut kv = KvStore::create(Arc::clone(&fs), "/kv", &mut ctx).unwrap();
            for m in &msgs {
                kv.insert_tf(m, &mut ctx).unwrap();
            }
            black_box(kv.record_count())
        })
    });
    group.bench_function("sql", |b| {
        b.iter(|| {
            let fs = Arc::new(MemStorage::new());
            let mut ctx = IoCtx::new();
            let mut db = SqlStore::create(Arc::clone(&fs), "/pg", &mut ctx).unwrap();
            for m in &msgs {
                db.insert_tf(m, &mut ctx).unwrap();
            }
            black_box(db.record_count())
        })
    });
    group.bench_function("tsdb", |b| {
        b.iter(|| {
            let fs = Arc::new(MemStorage::new());
            let mut ctx = IoCtx::new();
            let mut db = TsdbStore::create(Arc::clone(&fs), "/ts", &mut ctx).unwrap();
            for m in &msgs {
                db.insert_tf(m, &mut ctx).unwrap();
            }
            black_box(db.record_count())
        })
    });
    group.finish();
}

fn bench_md5(c: &mut Criterion) {
    let data = vec![0xABu8; 64 * 1024];
    c.bench_function("md5_64k", |b| b.iter(|| black_box(ros_msgs::md5::hex_digest(&data))));
}

criterion_group!(
    benches,
    bench_open,
    bench_query_by_topic,
    bench_query_time_window,
    bench_tag_build,
    bench_time_index_ablation,
    bench_organizer_threads,
    bench_db_insert,
    bench_md5,
);
criterion_main!(benches);
