//! Criterion micro-benchmarks for the streaming query pipeline (PR:
//! streaming zero-copy reads) — real wall-clock time of the pieces the
//! `ext_stream` experiment measures on the virtual clock:
//!
//! * slice-by-8 CRC32C vs the bitwise reference,
//! * heap vs linear k-way merge at several fan-ins,
//! * zero-copy streaming consumption (`payload()`) vs materializing
//!   (`to_record()` / `read_topics`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bora::checksum::crc32c_bitwise_reference;
use bora::{crc32c, merge_streams_heap, merge_streams_linear, BoraBag, StreamOptions};
use ros_msgs::sensor_msgs::Imu;
use ros_msgs::{MessageDescriptor, RosMessage, Time};
use rosbag::reader::MessageRecord;
use rosbag::{BagWriter, BagWriterOptions};
use simfs::{IoCtx, MemStorage};
use std::sync::Arc;

const MSGS_PER_TOPIC: u32 = 128;
const MAX_TOPICS: usize = 32;

/// A `MAX_TOPICS`-topic Imu bag organized into a container at `/c`.
fn prepared_env() -> (Arc<MemStorage>, Vec<String>) {
    let fs = Arc::new(MemStorage::new());
    let mut ctx = IoCtx::new();
    let topics: Vec<String> = (0..MAX_TOPICS).map(|i| format!("/sensor/{i:02}")).collect();
    let mut w = BagWriter::create(
        fs.as_ref(),
        "/sweep.bag",
        BagWriterOptions { chunk_size: 64 * 1024, ..Default::default() },
        &mut ctx,
    )
    .unwrap();
    let desc = MessageDescriptor::of::<Imu>();
    let conns: Vec<u32> = topics.iter().map(|t| w.add_connection(t, &desc)).collect();
    for i in 0..MSGS_PER_TOPIC {
        for (ti, &conn) in conns.iter().enumerate() {
            let mut imu = Imu::default();
            imu.header.seq = i;
            imu.header.stamp = Time::new(i, ti as u32);
            w.write_message(conn, imu.header.stamp, &imu.to_bytes(), &mut ctx).unwrap();
        }
    }
    w.close(&mut ctx).unwrap();
    bora::duplicate(fs.as_ref(), "/sweep.bag", fs.as_ref(), "/c", &Default::default(), &mut ctx)
        .unwrap();
    (fs, topics)
}

fn bench_crc32c(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32c");
    for size in [4 * 1024usize, 64 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i as u8).wrapping_mul(31)).collect();
        group.bench_with_input(BenchmarkId::new("slice_by_8", size), &data, |b, d| {
            b.iter(|| black_box(crc32c(d)))
        });
        group.bench_with_input(BenchmarkId::new("bitwise_reference", size), &data, |b, d| {
            b.iter(|| black_box(crc32c_bitwise_reference(d)))
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let (fs, topics) = prepared_env();
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(fs.as_ref(), "/c", &mut ctx).unwrap();

    let mut group = c.benchmark_group("kway_merge");
    group.sample_size(20);
    for k in [4usize, 16, 32] {
        let per_topic: Vec<Vec<MessageRecord>> =
            topics[..k].iter().map(|t| bag.read_topic(t, &mut ctx).unwrap()).collect();
        group.bench_with_input(BenchmarkId::new("linear", k), &per_topic, |b, streams| {
            b.iter(|| {
                let mut ctx = IoCtx::new();
                black_box(merge_streams_linear(streams.clone(), &mut ctx))
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", k), &per_topic, |b, streams| {
            b.iter(|| {
                let mut ctx = IoCtx::new();
                black_box(merge_streams_heap(streams.clone(), &mut ctx))
            })
        });
    }
    group.finish();
}

fn bench_streaming_vs_materializing(c: &mut Criterion) {
    let (fs, topics) = prepared_env();
    let mut ctx = IoCtx::new();
    let bag = BoraBag::open(fs.as_ref(), "/c", &mut ctx).unwrap();
    let refs: Vec<&str> = topics[..8].iter().map(String::as_str).collect();

    let mut group = c.benchmark_group("read_8_topics");
    group.sample_size(20);
    group.bench_function("materializing_read_topics", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            black_box(bag.read_topics(&refs, &mut ctx).unwrap())
        })
    });
    group.bench_function("streaming_zero_copy", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            let mut stream = bag.stream_topics(&refs, StreamOptions::default(), &mut ctx).unwrap();
            let mut bytes = 0u64;
            while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
                bytes += m.payload().len() as u64; // borrow only, no copy
            }
            black_box(bytes)
        })
    });
    group.bench_function("streaming_to_records", |b| {
        b.iter(|| {
            let mut ctx = IoCtx::new();
            let mut stream = bag.stream_topics(&refs, StreamOptions::default(), &mut ctx).unwrap();
            let mut out = Vec::new();
            while let Some(m) = stream.next_msg(&mut ctx).unwrap() {
                out.push(m.to_record()); // copies payloads out of the blocks
            }
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crc32c, bench_merge, bench_streaming_vs_materializing);
criterion_main!(benches);
